"""Fig. 9(a–f) — IMDB COMM-all: average delay and peak memory for
PDall / BUall / TDall over the KWF, l, and Rmax sweeps.

Panels (a,c,e) are the timing series (the pytest-benchmark number is
the full enumeration; ``avg_delay_ms`` in extra_info is the paper's
metric). Panels (b,d,f) are the memory series, recorded per run in
``extra_info["peak_kb"]`` via tracemalloc.

Enumeration is capped at the harness's bench cap (identically for
every algorithm); ``extra_info["communities"]`` records |O| per cell.
"""

import pytest

from repro.bench.figures import ALL_CAPS
from repro.bench.harness import measure_all

ALGS = ("pd", "bu", "td")
CAP = ALL_CAPS["bench"]
BUDGET = 10.0  # censors BU/TD combinatorial cells (marked timed_out)


def run_cell(benchmark, bundle, keywords, rmax, alg):
    def once():
        return measure_all(bundle.search, bundle.label, keywords, rmax,
                           alg, max_communities=CAP,
                           measure_memory=False,
                           budget_seconds=BUDGET)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    memory = measure_all(bundle.search, bundle.label, keywords, rmax,
                         alg, max_communities=CAP, measure_memory=True,
                         budget_seconds=BUDGET)
    benchmark.extra_info.update({
        "communities": result.communities,
        "capped": result.capped,
        "timed_out": result.timed_out,
        "avg_delay_ms": result.avg_delay_ms,
        "peak_kb": memory.peak_kb,
    })
    assert result.communities > 0 or keywords  # sanity: ran


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("kwf", (0.0003, 0.0006, 0.0009, 0.0012,
                                 0.0015))
def test_fig9ab_kwf_sweep(benchmark, imdb, kwf, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(kwf=kwf),
             params.default_rmax, alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("l", (2, 3, 4, 5, 6))
def test_fig9cd_l_sweep(benchmark, imdb, l, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(l=l), params.default_rmax,
             alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("rmax", (9.0, 10.0, 11.0, 12.0, 13.0))
def test_fig9ef_rmax_sweep(benchmark, imdb, rmax, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(), rmax, alg)
