"""Projection-cache micro-benchmarks: first call vs repeated call.

The engine caches Algorithm 6 results per ``(keyword set, Rmax)``;
this file measures the headline claim — a repeated or interactive
query skips the projection entirely, so its end-to-end latency must
drop by at least 2x on cache-friendly workloads (in practice the
projection is the dominant per-query cost, so the ratio is much
larger).

``cold`` cells bypass the cache (``use_cache=False``), ``warm`` cells
run against a pre-filled cache; ``extra_info["speedup"]`` records the
measured cold/warm ratio per dataset.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import QueryContext


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
@pytest.mark.parametrize("temperature", ("cold", "warm"))
def test_projection_cache_latency(benchmark, dataset, temperature,
                                  dblp, imdb):
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    keywords = params.query()
    rmax = params.default_rmax
    engine = bundle.engine

    if temperature == "cold":
        def once():
            engine.cache.invalidate()
            ctx = QueryContext()
            engine.project(keywords, rmax, ctx)
            return ctx
    else:
        engine.project(keywords, rmax)            # pre-fill

        def once():
            ctx = QueryContext()
            engine.project(keywords, rmax, ctx)
            return ctx

    ctx = benchmark.pedantic(once, rounds=3, iterations=1)
    if temperature == "warm":
        assert ctx.counter("projection_cache_hits") == 1
    else:
        assert ctx.counter("projection_runs") == 1


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_repeated_query_speedup_at_least_2x(dataset, dblp, imdb):
    """End-to-end: the second identical top-k query must be ≥2x faster.

    The interactive pattern the cache targets — a first-page top-k
    query repeated with the same ``(keywords, rmax)`` — pays
    Algorithm 6 + PDk on the first call and only PDk afterwards.
    Measured cold/warm ratios are ~2.8x on both bench datasets at
    k=5 (and 6-8x at k=1); full COMM-all enumeration amortizes the
    projection further, so its ratio is smaller (the latency cells
    above record it). Best-of-5 on each side to dampen noise.
    """
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    keywords = params.query()
    rmax = params.default_rmax
    k = 5
    engine = bundle.engine

    def best_of(n, fn):
        best = float("inf")
        for _ in range(n):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def cold():
        engine.cache.invalidate()
        bundle.search.top_k(keywords, k, rmax)

    def warm():
        bundle.search.top_k(keywords, k, rmax)

    cold_s = best_of(5, cold)
    engine.cache.invalidate()
    bundle.search.top_k(keywords, k, rmax)         # fill the cache
    warm_s = best_of(5, warm)
    assert warm_s * 2 <= cold_s, (
        f"expected >=2x speedup, got {cold_s / warm_s:.2f}x "
        f"(cold {cold_s:.4f}s, warm {warm_s:.4f}s)")
