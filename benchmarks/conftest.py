"""Shared benchmark fixtures: bench-scale datasets with built indexes.

Datasets are generated (and indexed) once per session; every benchmark
then runs queries against the cached bundle, mirroring the paper's
setup where index construction is a one-off cost reported separately.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import load_dataset


@pytest.fixture(scope="session")
def dblp():
    """Bench-scale DBLP bundle (graph + index + paper parameter grid)."""
    return load_dataset("dblp", "bench")


@pytest.fixture(scope="session")
def imdb():
    """Bench-scale IMDB bundle (graph + index + paper parameter grid)."""
    return load_dataset("imdb", "bench")
