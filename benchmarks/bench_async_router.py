"""Router front-end benchmark: threaded vs asyncio at shards=2.

One bench-scale DBLP snapshot is partitioned into a two-shard fleet
of real :class:`CommunityService` backends; the *same* backends are
then fronted by the threaded :class:`RouterService` and by the
event-loop :class:`AsyncRouterService` in turn. Closed-loop clients
drive an identical mixed top-k workload through each front end's
HTTP stack, so the two cells isolate exactly the transport
difference — thread-per-leg fan-out vs one event loop multiplexing
every shard leg over pooled keep-alive connections.

Both cells land in ``bench_results.json`` and sit under the 25 %
regression gate of ``tools/bench_compare.py`` like every other
serving benchmark.

Run with ``PYTHONPATH=src python -m pytest benchmarks/ -k async_router``.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.engine.engine import QueryEngine
from repro.service import CommunityService, ServiceClient
from repro.shard import RouterService, partition_snapshot
from repro.shard.aio import AsyncRouterService
from repro.snapshot import SnapshotStore

#: Closed-loop client threads per measured round.
CLIENTS = 4

#: Requests per client per measured round.
REQUESTS_PER_CLIENT = 6

#: Fleet width: both front ends run over the same two-shard fleet.
SHARDS = 2


@pytest.fixture(scope="module")
def shard_fleet(tmp_path_factory, dblp):
    """Started two-shard backends + manifest, shared by both cells."""
    store = tmp_path_factory.mktemp("aio-bench-store")
    SnapshotStore(store).publish(
        dblp.dbg, dblp.search.engine.index,
        provenance={"dataset": dblp.label, "purpose": "aio-bench"})
    tmp = tmp_path_factory.mktemp("aio-bench-fleet")
    manifest, _ = partition_snapshot(store, tmp, SHARDS)
    backends = []
    for entry in manifest.shards:
        engine = QueryEngine.from_snapshot(
            tmp / entry.store / entry.snapshot_id)
        backends.append(
            CommunityService(engine, port=0, workers=2).start())
    yield manifest, tmp, [b.url for b in backends]
    for backend in backends:
        backend.shutdown()


@pytest.fixture(params=("threaded", "async"),
                ids=("front_threaded", "front_async"))
def router(request, shard_fleet):
    """A started router of the parametrized flavor over the fleet."""
    manifest, tmp, urls = shard_fleet
    cls = RouterService if request.param == "threaded" \
        else AsyncRouterService
    service = cls(manifest, urls, root=tmp).start()
    yield request.param, service
    service.shutdown()


def _workload(params):
    """A mixed top-k request list spanning the paper's sweep axes."""
    cells = [(params.query(), params.default_rmax)]
    cells += [(params.query(l=l), params.default_rmax)
              for l in params.l_values[:2]]
    cells += [(params.query(), rmax) for rmax in params.rmax_values[:2]]
    return [{"keywords": keywords, "rmax": rmax, "k": 5}
            for keywords, rmax in cells]


def _closed_loop(url, requests, clients, requests_each):
    """``clients`` closed-loop workers; returns (latencies, seconds)."""
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(worker_id):
        client = ServiceClient(url, timeout=60.0)
        barrier.wait()
        for i in range(requests_each):
            body = requests[(worker_id + i) % len(requests)]
            start = time.perf_counter()
            response = client.request("POST", "/query", body)
            elapsed = time.perf_counter() - start
            assert response["count"] >= 0
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return latencies, time.perf_counter() - start


def test_front_end_throughput(benchmark, dblp, router):
    """Sustained routed QPS and latency percentiles per front end."""
    front_end, service = router
    requests = _workload(dblp.params)

    # Warm every backend's projection cache once per cell, so the
    # measured rounds compare serving paths rather than cold starts.
    warm = ServiceClient(service.url, timeout=60.0)
    for body in requests:
        warm.request("POST", "/query", body)

    def round_trip():
        latencies, elapsed = _closed_loop(
            service.url, requests, CLIENTS, REQUESTS_PER_CLIENT)
        return latencies, len(latencies) / elapsed

    rounds = [round_trip() for _ in range(3)]
    latencies = sorted(lat for sample, _ in rounds for lat in sample)
    qps = statistics.median(rate for _, rate in rounds)
    benchmark.pedantic(round_trip, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "front_end": front_end,
        "shards": SHARDS,
        "clients": CLIENTS,
        "requests": len(latencies),
        "qps": round(qps, 2),
        "p50_ms": round(
            latencies[len(latencies) // 2] * 1e3, 2),
        "p95_ms": round(
            latencies[int(len(latencies) * 0.95) - 1] * 1e3, 2),
    })
