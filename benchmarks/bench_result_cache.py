"""Result-cache micro-benchmarks: cold, warm repeat, tail extension.

The generation-keyed result cache stores each query's ranked top-k
prefix, so the three temperatures the PR cares about are:

``cold``
    both caches empty — the query pays projection + enumeration;
``warm``
    an exact repeat — a pure prefix lookup, no graph work at all
    (the headline claim: at least 10x faster than cold);
``extend``
    the same query at ``2k`` after a warm run at ``k`` — resumes the
    cached enumeration frontier and pays only the tail, so it must be
    strictly cheaper than a result-cache-cold run at ``2k``.

Latency cells feed ``bench_results.json``; the speedup test pins the
acceptance ratios with best-of-N timing on each side.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import QueryContext, QuerySpec

#: Prefix size for the warm/extension cells; ``extend`` grows to 2K.
K = 20


def _spec(params, k):
    return QuerySpec(tuple(params.query()), params.default_rmax,
                     mode="topk", k=k)


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
@pytest.mark.parametrize("temperature", ("cold", "warm", "extend"))
def test_result_cache_latency(benchmark, dataset, temperature,
                              dblp, imdb):
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    engine = bundle.engine

    if temperature == "cold":
        def setup():
            engine.results.invalidate()
            engine.cache.invalidate()

        def once():
            ctx = QueryContext()
            engine.top_k(_spec(params, K), ctx)
            return ctx

        ctx = benchmark.pedantic(once, setup=setup, rounds=3,
                                 iterations=1)
        assert ctx.counter("result_cache_misses") == 1
    elif temperature == "warm":
        engine.results.invalidate()
        engine.top_k(_spec(params, K))            # pre-fill

        def once():
            ctx = QueryContext()
            engine.top_k(_spec(params, K), ctx)
            return ctx

        ctx = benchmark.pedantic(once, rounds=3, iterations=1)
        assert ctx.counter("result_cache_hits") == 1
        assert ctx.counter("projection_runs") == 0
    else:
        def setup():
            engine.results.invalidate()
            engine.top_k(_spec(params, K))        # prefix cached at K

        def once():
            ctx = QueryContext()
            engine.top_k(_spec(params, 2 * K), ctx)
            return ctx

        ctx = benchmark.pedantic(once, setup=setup, rounds=3,
                                 iterations=1)
        assert ctx.counter("result_cache_extensions") == 1


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_warm_and_extension_speedups(dataset, dblp, imdb):
    """The acceptance ratios: warm repeat >= 10x faster than cold,
    and a k -> 2k tail extension strictly cheaper than a
    result-cache-cold query at 2k.

    The extension comparison keeps the projection cache warm on both
    sides so it isolates what the result cache actually saves — the
    already-enumerated head of the ranked stream. Best-of-N on each
    side to dampen shared-runner noise.
    """
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    engine = bundle.engine

    def best_of(n, fn):
        return min(fn() for _ in range(n))

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def cold():
        engine.results.invalidate()
        engine.cache.invalidate()
        return timed(lambda: engine.top_k(_spec(params, K)))

    cold_seconds = best_of(3, cold)
    engine.top_k(_spec(params, K))                # pre-fill
    warm_seconds = best_of(5, lambda: timed(
        lambda: engine.top_k(_spec(params, K))))
    assert cold_seconds >= 10 * warm_seconds, \
        f"warm repeat only {cold_seconds / warm_seconds:.1f}x faster"

    def cold_2k():
        engine.results.invalidate()
        return timed(lambda: engine.top_k(_spec(params, 2 * K)))

    def extension():
        engine.results.invalidate()
        engine.top_k(_spec(params, K))            # prefix cached at K
        return timed(lambda: engine.top_k(_spec(params, 2 * K)))

    cold_2k_seconds = best_of(3, cold_2k)
    extension_seconds = best_of(3, extension)
    assert extension_seconds < cold_2k_seconds, \
        (f"extension {extension_seconds:.4f}s not cheaper than "
         f"cold 2k {cold_2k_seconds:.4f}s")
