"""Scatter-gather serving benchmark: router QPS at shards=1 vs 2.

A bench-scale DBLP snapshot is partitioned into one- and two-shard
fleets; each fleet runs real :class:`CommunityService` backends on
ephemeral ports behind a started :class:`RouterService`. Closed-loop
clients drive a mixed top-k workload through the router's HTTP stack
and record per-request latencies, so each cell reports sustained
queries/second plus p50/p95 milliseconds.

The shards=1 cell is the routing-overhead baseline (one fan-out leg,
a trivial merge); shards=2 shows what the scatter-gather tier costs
and buys on the same workload. Both cells land in
``bench_results.json`` and sit under the 25 % regression gate of
``tools/bench_compare.py`` like every other serving benchmark.

Run with ``PYTHONPATH=src python -m pytest benchmarks/ -k shard``.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.engine.engine import QueryEngine
from repro.service import CommunityService, ServiceClient
from repro.shard import RouterService, partition_snapshot
from repro.snapshot import SnapshotStore

#: Closed-loop client threads per measured round.
CLIENTS = 4

#: Requests per client per measured round.
REQUESTS_PER_CLIENT = 6


@pytest.fixture(scope="module")
def dblp_snapshot(tmp_path_factory, dblp):
    """The bench DBLP bundle published as an immutable snapshot."""
    root = tmp_path_factory.mktemp("shard-bench-store")
    SnapshotStore(root).publish(
        dblp.dbg, dblp.search.engine.index,
        provenance={"dataset": dblp.label, "purpose": "shard-bench"})
    return root


@pytest.fixture(scope="module", params=(1, 2),
                ids=("shards_1", "shards_2"))
def fleet(request, tmp_path_factory, dblp_snapshot):
    """A started router + shard fleet at the parametrized width."""
    shards = request.param
    tmp = tmp_path_factory.mktemp(f"shard-bench-{shards}")
    manifest, _ = partition_snapshot(dblp_snapshot, tmp, shards)
    backends = []
    for entry in manifest.shards:
        engine = QueryEngine.from_snapshot(
            tmp / entry.store / entry.snapshot_id)
        backends.append(
            CommunityService(engine, port=0, workers=2).start())
    router = RouterService(manifest,
                           [b.url for b in backends],
                           root=tmp).start()
    yield shards, router
    router.shutdown()
    for backend in backends:
        backend.shutdown()


def _workload(params):
    """A mixed top-k request list spanning the paper's sweep axes."""
    cells = [(params.query(), params.default_rmax)]
    cells += [(params.query(l=l), params.default_rmax)
              for l in params.l_values[:2]]
    cells += [(params.query(), rmax) for rmax in params.rmax_values[:2]]
    return [{"keywords": keywords, "rmax": rmax, "k": 5}
            for keywords, rmax in cells]


def _closed_loop(url, requests, clients, requests_each):
    """``clients`` closed-loop workers; returns (latencies, seconds)."""
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(worker_id):
        client = ServiceClient(url, timeout=60.0)
        barrier.wait()
        for i in range(requests_each):
            body = requests[(worker_id + i) % len(requests)]
            start = time.perf_counter()
            response = client.request("POST", "/query", body)
            elapsed = time.perf_counter() - start
            assert response["count"] >= 0
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return latencies, time.perf_counter() - start


def test_router_throughput(benchmark, dblp, fleet):
    """Sustained routed QPS and latency percentiles at this width."""
    shards, router = fleet
    requests = _workload(dblp.params)

    # Warm every backend's projection cache once per cell, so the
    # measured rounds compare serving paths rather than cold starts.
    warm = ServiceClient(router.url, timeout=60.0)
    for body in requests:
        warm.request("POST", "/query", body)

    def round_trip():
        latencies, elapsed = _closed_loop(
            router.url, requests, CLIENTS, REQUESTS_PER_CLIENT)
        return latencies, len(latencies) / elapsed

    rounds = [round_trip() for _ in range(3)]
    latencies = sorted(lat for sample, _ in rounds for lat in sample)
    qps = statistics.median(rate for _, rate in rounds)
    benchmark.pedantic(round_trip, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "shards": shards,
        "clients": CLIENTS,
        "requests": len(latencies),
        "qps": round(qps, 2),
        "p50_ms": round(
            latencies[len(latencies) // 2] * 1e3, 2),
        "p95_ms": round(
            latencies[int(len(latencies) * 0.95) - 1] * 1e3, 2),
    })
