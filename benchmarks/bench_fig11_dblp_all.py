"""Fig. 11(a–f) — DBLP COMM-all: average delay and peak memory for
PDall / BUall / TDall over the KWF, l, and Rmax sweeps.

Same harness as Fig. 9 on the sparse DBLP graph, where the paper
itself reports the baselines *beating* PDall on delay (few duplicates,
mostly single-center results) while PDall keeps the lowest memory.
"""

import pytest

from repro.bench.figures import ALL_CAPS
from repro.bench.harness import measure_all

ALGS = ("pd", "bu", "td")
CAP = ALL_CAPS["bench"]
BUDGET = 10.0  # censors BU/TD combinatorial cells (marked timed_out)


def run_cell(benchmark, bundle, keywords, rmax, alg):
    def once():
        return measure_all(bundle.search, bundle.label, keywords, rmax,
                           alg, max_communities=CAP,
                           measure_memory=False,
                           budget_seconds=BUDGET)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    memory = measure_all(bundle.search, bundle.label, keywords, rmax,
                         alg, max_communities=CAP, measure_memory=True,
                         budget_seconds=BUDGET)
    benchmark.extra_info.update({
        "communities": result.communities,
        "capped": result.capped,
        "timed_out": result.timed_out,
        "avg_delay_ms": result.avg_delay_ms,
        "peak_kb": memory.peak_kb,
    })


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("kwf", (0.0003, 0.0006, 0.0009, 0.0012,
                                 0.0015))
def test_fig11ab_kwf_sweep(benchmark, dblp, kwf, alg):
    params = dblp.params
    run_cell(benchmark, dblp, params.query(kwf=kwf),
             params.default_rmax, alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("l", (2, 3, 4, 5, 6))
def test_fig11cd_l_sweep(benchmark, dblp, l, alg):
    params = dblp.params
    run_cell(benchmark, dblp, params.query(l=l), params.default_rmax,
             alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("rmax", (4.0, 5.0, 6.0, 7.0, 8.0))
def test_fig11ef_rmax_sweep(benchmark, dblp, rmax, alg):
    params = dblp.params
    run_cell(benchmark, dblp, params.query(), rmax, alg)
