"""WAL ingestion micro-benchmarks: append throughput and replay rate.

Three append cells pin the cost of each durability policy — ``always``
pays one ``fsync`` per acknowledged delta, ``batch`` amortizes it over
:data:`~repro.wal.DEFAULT_BATCH_RECORDS` appends, ``off`` only
flushes — so the OPERATIONS.md guidance ("``always`` unless ingest
latency hurts") stays an informed trade, not folklore. The replay cell
times startup recovery: a snapshot-anchored engine materializing a
backlog of logged deltas through the same ``apply_delta`` path the
serving tier uses.
"""

from __future__ import annotations

import itertools

import pytest

from repro.datasets.paper_example import FIG4_RMAX, figure4_graph
from repro.engine import QueryEngine
from repro.snapshot import SnapshotStore
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import GraphDelta
from repro.wal import WriteAheadLog, replay

#: Deltas appended per append-throughput round.
APPENDS = 200

#: Deltas in the replay backlog (each one is a full incremental
#: index-maintenance pass on the fig4 graph).
REPLAY_BACKLOG = 50

DELTA = GraphDelta(new_edges=[(0, 3, 0.25)])


@pytest.mark.parametrize("policy", ("always", "batch", "off"))
def test_wal_append_throughput(benchmark, policy, tmp_path_factory):
    root = tmp_path_factory.mktemp(f"wal-append-{policy}")
    fresh = itertools.count()

    def once():
        path = root / f"{next(fresh)}.wal"
        with WriteAheadLog(path, fsync=policy) as wal:
            for _ in range(APPENDS):
                wal.append_delta(DELTA, base="bench")
        return path

    path = benchmark.pedantic(once, rounds=3, iterations=1)
    assert path.stat().st_size > 0


def test_wal_replay_rate(benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("wal-replay")
    dbg = figure4_graph()
    index = CommunityIndex.build(dbg, FIG4_RMAX)
    snap = SnapshotStore(root / "store").publish(
        dbg, index, provenance={"dataset": "fig4"})
    with WriteAheadLog(root / "deltas.wal", fsync="off") as wal:
        for _ in range(REPLAY_BACKLOG):
            wal.append_delta(DELTA, base=snap.id)
        records = wal.records()

    def once():
        engine = QueryEngine.from_snapshot(snap.path)
        return replay(engine, records)

    applied = benchmark.pedantic(once, rounds=3, iterations=1)
    assert applied == REPLAY_BACKLOG
