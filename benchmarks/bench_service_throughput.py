"""Closed-loop service benchmarks: throughput, latency, shedding.

A real :class:`~repro.service.server.CommunityService` on an
ephemeral port, driven by closed-loop clients (each issues its next
request the moment the previous answer lands — the classic
load-generator model, so offered load tracks service capacity instead
of overrunning it):

* ``test_service_throughput`` measures sustained queries/second at a
  moderate concurrency over the bench-scale DBLP bundle, split by
  cache temperature (the warm rows show what the projection cache
  buys end-to-end *through the HTTP stack*);
* ``test_session_enlargement_throughput`` measures interactive
  ``next`` batches per second against one leased PDk stream;
* ``test_shedding_at_2x_pool`` drives 2x the worker-pool capacity of
  *simultaneous* requests at a deliberately slow backend and checks
  the excess sheds with 429/503 promptly — the acceptance property
  that saturation never builds an unbounded queue.

Run with ``PYTHONPATH=src python -m pytest benchmarks/ -k service``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.registry import AlgorithmSpec, default_registry
from repro.engine.engine import QueryEngine
from repro.service import (
    CommunityService,
    DeadlineExceeded,
    Overloaded,
    ServiceClient,
)

#: Closed-loop client threads for the throughput cells.
CLIENTS = 4

#: Requests per client per measured round.
REQUESTS_PER_CLIENT = 8


def _closed_loop(url: str, make_request, clients: int,
                 requests_each: int):
    """Run ``clients`` closed-loop workers; return (outcomes, secs)."""
    outcomes = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(worker_id: int) -> None:
        client = ServiceClient(url, timeout=60.0)
        barrier.wait()
        for i in range(requests_each):
            try:
                make_request(client, worker_id, i)
                outcome = 200
            except Overloaded:
                outcome = 429
            except DeadlineExceeded:
                outcome = 503
            with lock:
                outcomes.append(outcome)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return outcomes, time.perf_counter() - start


@pytest.fixture(scope="module")
def dblp_service(request):
    """A service over the bench-scale DBLP engine, once per module."""
    dblp = request.getfixturevalue("dblp")
    service = CommunityService(dblp.engine, port=0, workers=4,
                               queue_depth=32).start()
    yield dblp, service
    service.shutdown()


@pytest.mark.parametrize("temperature", ("cold", "warm"))
def test_service_throughput(benchmark, temperature, dblp_service):
    """Sustained top-k queries/second through the full HTTP stack."""
    dblp, service = dblp_service
    params = dblp.params
    keywords = params.query()
    rmax = params.default_rmax

    def round_trip():
        if temperature == "cold":
            service.engine.cache.invalidate()

        def one(client, worker_id, i):
            response = client.query(keywords, rmax, k=5)
            assert response["count"] >= 0

        outcomes, elapsed = _closed_loop(
            service.url, one, CLIENTS, REQUESTS_PER_CLIENT)
        assert all(code == 200 for code in outcomes)
        return len(outcomes) / elapsed

    if temperature == "warm":
        ServiceClient(service.url).query(keywords, rmax, k=5)

    qps = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    benchmark.extra_info["qps"] = round(qps, 2)
    benchmark.extra_info["clients"] = CLIENTS


def test_session_enlargement_throughput(benchmark, dblp_service):
    """Interactive ``next`` batches/second on one leased stream."""
    dblp, service = dblp_service
    params = dblp.params
    client = ServiceClient(service.url, timeout=60.0)

    def enlarge_loop():
        session = client.open_session(params.query(),
                                      params.default_rmax)
        batches = 0
        start = time.perf_counter()
        for _ in range(10):
            if session.exhausted:
                break
            session.next(5)
            batches += 1
        elapsed = time.perf_counter() - start
        project_seconds = session.last_stats["timings"].get(
            "project", 0.0)
        session.close()
        return batches / elapsed, project_seconds

    (rate, project_seconds) = benchmark.pedantic(
        enlarge_loop, rounds=3, iterations=1)
    benchmark.extra_info["batches_per_second"] = round(rate, 2)
    # Enlargement must never re-run Algorithm 6: the session's whole
    # project budget is what creation charged (one run or cache hit).
    first_create = ServiceClient(service.url).open_session(
        params.query(), params.default_rmax)
    baseline_project = first_create.last_stats["timings"].get(
        "project", 0.0)
    first_create.close()
    assert project_seconds <= baseline_project + 0.05


def test_shedding_at_2x_pool():
    """2x pool capacity of simultaneous slow queries: the overflow is
    shed with 429/503 instead of queueing (acceptance criterion)."""
    from repro.datasets.paper_example import (
        FIG4_QUERY,
        FIG4_RMAX,
        figure4_graph,
    )

    registry = default_registry()

    def slow_all(dbg, keywords, rmax, *, node_lists=None,
                 aggregate="sum", budget_seconds=None, stats=None):
        time.sleep(0.25)
        return iter([])

    def slow_top_k(dbg, keywords, k, rmax, *, node_lists=None,
                   aggregate="sum", budget_seconds=None, stats=None):
        time.sleep(0.25)
        return []

    registry.register(AlgorithmSpec("slow", slow_all, slow_top_k))
    engine = QueryEngine(figure4_graph(), registry=registry)
    engine.build_index(radius=FIG4_RMAX)
    workers, queue_depth = 2, 2
    capacity = workers + queue_depth
    with CommunityService(engine, port=0, workers=workers,
                          queue_depth=queue_depth).start() as service:

        def one(client, worker_id, i):
            client.query(list(FIG4_QUERY), FIG4_RMAX, k=1,
                         algorithm="slow", deadline_seconds=10.0)

        outcomes, elapsed = _closed_loop(
            service.url, one, clients=2 * capacity, requests_each=1)

        assert len(outcomes) == 2 * capacity
        completed = outcomes.count(200)
        shed = outcomes.count(429) + outcomes.count(503)
        assert completed >= workers
        assert shed >= 2
        assert completed + shed == 2 * capacity
        # Unbounded queueing would admit (and serialize) all 8 slow
        # jobs; admission control sheds part of the burst instantly.
        assert completed < 2 * capacity
        assert elapsed < 2.5
        stats = service.admission.stats
        assert stats.shed_queue_full + stats.shed_deadline == shed
