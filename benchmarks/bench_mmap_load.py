"""Zero-copy snapshot benchmarks: cold open, spawn latency, memory.

The mmap mode exists so every worker process opens the snapshot as
read-only views over one page-cache copy instead of parsing and
materializing its own. Three measurements back that up:

* **cold open** — ``load_snapshot`` in copy vs mmap mode. The mmap
  open maps the sections and verifies checksums but defers the
  ``nodes.json`` parse and every per-node materialization;
* **worker spawn** — ``QueryEngine.from_snapshot`` per mode, the
  exact load a pool worker (and every watchdog respawn) pays before
  it can serve. The acceptance bar is mmap ≥ 5× faster on the bench
  fixture;
* **per-worker memory** — USS/RSS of mmap-mode pool workers at 1 vs
  4 workers (Linux only, read from ``/proc/<pid>/smaps_rollup``),
  recorded in ``extra_info`` so the sharing claim is auditable.

Run with ``pytest benchmarks/bench_mmap_load.py --benchmark-json``
and merge the medians into ``bench_results.json``.
"""

from __future__ import annotations

import statistics
import sys
import time

import pytest

from repro.engine import QueryEngine
from repro.parallel.pool import WorkerPool
from repro.snapshot import load_snapshot, write_snapshot

#: The spawn-latency bar from the PR acceptance criteria.
SPAWN_SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="session")
def snapshot_path(tmp_path_factory, dblp):
    """One uncompressed (mmap-able) bench-scale snapshot."""
    root = tmp_path_factory.mktemp("mmap-bench")
    write_snapshot(root / "dblp.snapshot", dblp.dbg,
                   dblp.search.index)
    return root / "dblp.snapshot"


@pytest.mark.parametrize("mode", ("copy", "mmap"))
def test_cold_open(benchmark, mode, snapshot_path):
    snapshot = benchmark.pedantic(
        lambda: load_snapshot(snapshot_path, mode=mode),
        rounds=5, iterations=1)
    assert snapshot.mode == mode


@pytest.mark.parametrize("mode", ("copy", "mmap"))
def test_worker_spawn(benchmark, mode, snapshot_path):
    engine = benchmark.pedantic(
        lambda: QueryEngine.from_snapshot(snapshot_path, mode=mode),
        rounds=5, iterations=1)
    assert engine.snapshot_mode == mode


def test_mmap_spawn_speedup(benchmark, snapshot_path):
    """The headline ratio: per-worker snapshot open, median-of-7.

    This is the cost a respawned worker pays before it serves again,
    so the watchdog's recovery time scales with it directly.
    """
    def median_of(n, fn):
        samples = []
        for _ in range(n):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    copy_s = median_of(7, lambda: QueryEngine.from_snapshot(
        snapshot_path, mode="copy"))
    mmap_s = median_of(7, lambda: QueryEngine.from_snapshot(
        snapshot_path, mode="mmap"))
    benchmark.pedantic(
        lambda: QueryEngine.from_snapshot(snapshot_path,
                                          mode="mmap"),
        rounds=3, iterations=1)
    benchmark.extra_info["copy_seconds"] = copy_s
    benchmark.extra_info["mmap_seconds"] = mmap_s
    benchmark.extra_info["speedup"] = copy_s / mmap_s
    assert copy_s / mmap_s >= SPAWN_SPEEDUP_FLOOR, (
        f"mmap spawn ({mmap_s:.4f}s) only "
        f"{copy_s / mmap_s:.1f}x faster than copy ({copy_s:.4f}s); "
        f"the bar is {SPAWN_SPEEDUP_FLOOR:.0f}x")


def _smaps_rollup(pid):
    """``{field: kiB}`` from ``/proc/<pid>/smaps_rollup``."""
    fields = {}
    with open(f"/proc/{pid}/smaps_rollup") as handle:
        for line in handle:
            parts = line.split()
            if len(parts) >= 3 and parts[-1] == "kB":
                fields[parts[0].rstrip(":")] = int(parts[-2])
    return fields


def _worker_memory(snapshot_path, workers):
    """Mean per-worker (USS kiB, RSS kiB) of a warmed mmap pool."""
    pool = WorkerPool(snapshot_path, workers=workers,
                      snapshot_mode="mmap")
    pool.start(wait_ready=True)
    try:
        pool.stats()                      # every worker answered once
        uss, rss = [], []
        for pid in pool.pids().values():
            rollup = _smaps_rollup(pid)
            uss.append(rollup.get("Private_Clean", 0)
                       + rollup.get("Private_Dirty", 0))
            rss.append(rollup.get("Rss", 0))
        return (statistics.mean(uss), statistics.mean(rss))
    finally:
        pool.shutdown()


@pytest.mark.skipif(sys.platform != "linux",
                    reason="needs /proc/<pid>/smaps_rollup")
def test_worker_memory_sharing(benchmark, snapshot_path):
    """Per-worker USS/RSS at 1 vs 4 workers, mmap mode.

    Shared pages (the mapped sections) show up in RSS but not USS;
    the recorded numbers let operators size ``--workers`` from the
    *unique* per-worker footprint instead of naive RSS × N.
    """
    one_uss, one_rss = _worker_memory(snapshot_path, workers=1)
    four_uss, four_rss = _worker_memory(snapshot_path, workers=4)
    benchmark.pedantic(
        lambda: load_snapshot(snapshot_path, mode="mmap"),
        rounds=3, iterations=1)
    benchmark.extra_info["workers1_uss_kib"] = one_uss
    benchmark.extra_info["workers1_rss_kib"] = one_rss
    benchmark.extra_info["workers4_uss_kib"] = four_uss
    benchmark.extra_info["workers4_rss_kib"] = four_rss
    assert four_uss > 0 and four_rss >= four_uss
