"""Table I — the ranked top-5 communities of the Fig. 4 toy graph.

Regenerates the paper's Table I (cores, costs, centers, order) and
asserts exact equality while benchmarking the PDk query that produces
it.
"""

from repro.core.comm_k import top_k
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    TABLE1_RANKING,
    figure4_graph,
    node_label,
)


def test_table1_ranking(benchmark):
    dbg = figure4_graph()

    results = benchmark(
        lambda: top_k(dbg, list(FIG4_QUERY), 5, FIG4_RMAX))

    assert len(results) == 5
    for community, (core, cost, centers) in zip(results,
                                                TABLE1_RANKING):
        assert tuple(node_label(u) for u in community.core) == core
        assert community.cost == cost
        assert tuple(node_label(u) for u in community.centers) == centers
    benchmark.extra_info["table"] = [
        {
            "rank": rank,
            "core": [node_label(u) for u in c.core],
            "cost": c.cost,
            "centers": [node_label(u) for u in c.centers],
        }
        for rank, c in enumerate(results, start=1)
    ]
