"""Multi-core scaling: flat Dijkstra kernel and worker-pool QPS.

Two acceptance measurements for the parallel execution work, both on
the bench-scale DBLP bundle:

* ``test_flat_kernel_vs_heap_on_pdall_trace`` — records the *actual*
  trace of ``bounded_dijkstra`` calls a PDall sweep issues (the Fig.
  9/11 hot loop), then replays that trace under the production kernel
  (flat arrays + duplicate-search memo) and under the dict+heap
  reference. The replayed workload is identical call for call, so the
  ratio isolates the kernel. The bar is >= 1.3x; the memo is most of
  the win because ~70% of the trace are exact repeats (GetCommunity
  re-searches each knode per community);
* ``test_aggregate_qps_workers_4_vs_1`` — aggregate queries/second of
  one batch fanned over a 4-process pool vs the same batch through a
  1-process pool, both serving the same published snapshot. Asserted
  (>= 2.5x) only on machines with >= 4 cores; the numbers are always
  recorded in ``extra_info`` so a single-core CI run still documents
  itself.

Medians are taken over interleaved rounds (A, B, A, B, ...) so
machine noise hits both sides equally.
"""

from __future__ import annotations

import math
import os
import statistics
import time
from importlib import import_module

import pytest

from repro.bench.figures import ALL_CAPS
from repro.bench.harness import measure_all
from repro.engine.spec import QuerySpec
from repro.graph import dijkstra as dijkstra_module
from repro.graph.dijkstra import SearchMemo, heap_bounded_dijkstra
from repro.parallel import ParallelQueryEngine
from repro.snapshot import SnapshotStore

#: Interleaved timing rounds per side.
ROUNDS = 5

#: Enumeration cap for the trace-capture cells (the bench harness cap).
CAP = ALL_CAPS["bench"]

#: Acceptance bars.
KERNEL_SPEEDUP_FLOOR = 1.3
QPS_SPEEDUP_FLOOR = 2.5


def capture_pdall_trace(bundle, cells):
    """Record every ``bounded_dijkstra`` call of real PDall runs.

    Patches the entry point inside the three PDall hot-path modules
    (neighbor / getcommunity / projection), runs each ``(keywords,
    rmax)`` cell through the standard harness, and returns the call
    trace as ``(adjacency, seeds, radius)`` triples with seeds already
    normalized — ready to replay against either kernel.
    """
    trace = []
    real = dijkstra_module.bounded_dijkstra

    def recorder(adjacency, sources, radius=math.inf):
        seeds = tuple(dijkstra_module._normalize_seeds(sources))
        trace.append((adjacency, seeds, radius))
        return real(adjacency, seeds, radius)

    # import_module, because repro.core re-exports functions that
    # shadow these submodule names.
    patched = tuple(import_module(f"repro.core.{name}")
                    for name in ("neighbor", "getcommunity",
                                 "projection"))
    saved = [module.bounded_dijkstra for module in patched]
    try:
        for module in patched:
            module.bounded_dijkstra = recorder
        for keywords, rmax in cells:
            measure_all(bundle.search, bundle.label, keywords, rmax,
                        "pd", max_communities=CAP,
                        measure_memory=False)
    finally:
        for module, original in zip(patched, saved):
            module.bounded_dijkstra = original
    return trace


def replay_production(trace):
    """One pass of the trace through the memoized flat kernel.

    The thread-local memo is reset first, so every pass pays the same
    miss-then-hit profile a fresh worker process would.
    """
    dijkstra_module._scratch_local.memo = SearchMemo()
    run = dijkstra_module.bounded_dijkstra
    for adjacency, seeds, radius in trace:
        run(adjacency, seeds, radius)


def replay_heap(trace):
    """One pass of the trace through the dict+heap reference kernel."""
    for adjacency, seeds, radius in trace:
        heap_bounded_dijkstra(adjacency, seeds, radius)


def test_flat_kernel_vs_heap_on_pdall_trace(benchmark, dblp):
    params = dblp.params
    cells = [
        (params.query(), params.default_rmax),
        (params.query(l=5), params.default_rmax),
    ]
    trace = capture_pdall_trace(dblp, cells)
    assert trace, "PDall cells issued no Dijkstra calls"
    distinct = len({(id(adjacency), seeds, radius)
                    for adjacency, seeds, radius in trace})

    heap_times, production_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        replay_heap(trace)
        heap_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        replay_production(trace)
        production_times.append(time.perf_counter() - start)

    heap_median = statistics.median(heap_times)
    production_median = statistics.median(production_times)
    speedup = heap_median / production_median
    benchmark.pedantic(replay_production, args=(trace,), rounds=1,
                       iterations=1)
    benchmark.extra_info.update({
        "trace_calls": len(trace),
        "distinct_calls": distinct,
        "duplicate_fraction": round(1 - distinct / len(trace), 3),
        "heap_median_ms": round(heap_median * 1e3, 2),
        "production_median_ms": round(production_median * 1e3, 2),
        "kernel_speedup": round(speedup, 3),
    })
    assert speedup >= KERNEL_SPEEDUP_FLOOR, (
        f"memoized flat kernel only {speedup:.2f}x over the heap "
        f"reference on the PDall trace (floor "
        f"{KERNEL_SPEEDUP_FLOOR}x)")


@pytest.fixture(scope="module")
def dblp_snapshot(tmp_path_factory, dblp):
    """The bench DBLP bundle published as an immutable snapshot."""
    root = tmp_path_factory.mktemp("scaling-store")
    SnapshotStore(root).publish(
        dblp.dbg, dblp.search.engine.index,
        provenance={"dataset": dblp.label, "purpose": "scaling"})
    return root


def batch_specs(params):
    """A mixed COMM-all workload across the paper's sweep axes.

    16 distinct queries — a multiple of both pool sizes, so the
    round-robin dispatch assigns every worker the same slice each
    round and warm rounds stay warm (each worker's projection cache
    holds exactly its own keys).
    """
    specs = [QuerySpec.comm_all(params.query(kwf=kwf),
                                params.default_rmax)
             for kwf in params.kwf_values]
    specs += [QuerySpec.comm_all(params.query(l=l),
                                 params.default_rmax)
              for l in params.l_values]
    specs += [QuerySpec.comm_all(params.query(), rmax)
              for rmax in params.rmax_values]
    specs += [QuerySpec.comm_all(params.query(l=2),
                                 params.rmax_values[0])]
    assert len(specs) % 4 == 0
    return specs


def timed_batch(engine, specs):
    """Seconds for one ``execute_batch`` pass."""
    start = time.perf_counter()
    engine.execute_batch(specs)
    return time.perf_counter() - start


def test_aggregate_qps_workers_4_vs_1(benchmark, dblp,
                                      dblp_snapshot):
    specs = batch_specs(dblp.params)
    cores = os.cpu_count() or 1
    with ParallelQueryEngine(dblp_snapshot, workers=1) as single, \
            ParallelQueryEngine(dblp_snapshot, workers=4) as pooled:
        # First pass warms each worker's projection cache (cold
        # Algorithm 6 runs would otherwise dominate round 1 only).
        timed_batch(single, specs)
        timed_batch(pooled, specs)
        single_times, pooled_times = [], []
        for _ in range(ROUNDS):
            single_times.append(timed_batch(single, specs))
            pooled_times.append(timed_batch(pooled, specs))
        benchmark.pedantic(timed_batch, args=(pooled, specs),
                           rounds=1, iterations=1)
    single_qps = len(specs) / statistics.median(single_times)
    pooled_qps = len(specs) / statistics.median(pooled_times)
    speedup = pooled_qps / single_qps
    benchmark.extra_info.update({
        "batch_queries": len(specs),
        "cpu_cores": cores,
        "qps_workers_1": round(single_qps, 1),
        "qps_workers_4": round(pooled_qps, 1),
        "qps_speedup": round(speedup, 3),
    })
    if cores >= 4:
        assert speedup >= QPS_SPEEDUP_FLOOR, (
            f"4-worker pool only {speedup:.2f}x the 1-worker QPS on "
            f"a {cores}-core machine (floor {QPS_SPEEDUP_FLOOR}x)")
