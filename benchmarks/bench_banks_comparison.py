"""Related-work comparison: BANKS tree search vs community search.

Not a paper figure — the paper compares *models* (§I) rather than
timing trees against communities — but the natural question for a
reproduction is how the prior art's answer stream performs on the same
queries. BANKS emits one rooted tree per center; PDk emits the full
community each center belongs to.
"""

import pytest

from repro.core.banks import banks_top_k


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_banks_top_k(benchmark, dataset, dblp, imdb):
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    keywords = params.query(l=2)
    projection = bundle.search.project(keywords, params.default_rmax)

    def once():
        return banks_top_k(projection.subgraph, keywords, 25,
                           max_score=params.default_rmax,
                           node_lists=projection.node_lists)

    answers = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["answers"] = len(answers)
    for answer in answers:
        assert len(answer.edges) == len(answer.nodes) - 1


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_community_top_k_same_query(benchmark, dataset, dblp, imdb):
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    keywords = params.query(l=2)

    def once():
        return bundle.search.top_k(keywords, 25, params.default_rmax)

    results = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["answers"] = len(results)
