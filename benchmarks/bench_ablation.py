"""Ablations of the design choices DESIGN.md calls out.

* projection on/off — how much Algorithm 6 buys per query (the paper's
  motivation for Section VI);
* bounded vs unbounded Dijkstra — the Rmax early-termination that
  makes per-query work local;
* PDk streaming vs re-running PDk from scratch at k+50 — isolates the
  value of keeping the Lawler heap alive (the PD-internal version of
  Exp-3).
"""

import math

import pytest

from repro.bench.harness import measure_topk
from repro.graph.dijkstra import bounded_dijkstra


@pytest.mark.parametrize("use_projection", (True, False),
                         ids=("projected", "full-graph"))
def test_ablation_projection(benchmark, imdb, use_projection):
    params = imdb.params
    keywords = params.query()

    def once():
        return imdb.search.top_k(keywords, 25, params.default_rmax,
                                 use_projection=use_projection)

    results = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["communities"] = len(results)
    assert len(results) == 25


@pytest.mark.parametrize("bounded", (True, False),
                         ids=("bounded", "unbounded"))
def test_ablation_bounded_dijkstra(benchmark, imdb, bounded):
    params = imdb.params
    seeds = imdb.search.index.nodes(params.query()[0])
    radius = params.default_rmax if bounded else math.inf

    def once():
        return bounded_dijkstra(imdb.dbg.graph.reverse, seeds, radius)

    dmap = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["settled_nodes"] = len(dmap)
    assert len(dmap) > 0


@pytest.mark.parametrize("mode", ("stream-continue", "recompute"))
def test_ablation_pdk_stream_vs_recompute(benchmark, imdb, mode):
    params = imdb.params
    keywords = params.query()
    k = 100

    def stream_continue():
        stream = imdb.search.top_k_stream(keywords,
                                          params.default_rmax)
        stream.take(k)
        return stream.more(50)

    def recompute():
        imdb.search.top_k(keywords, k, params.default_rmax)
        return imdb.search.top_k(keywords, k + 50,
                                 params.default_rmax)[k:]

    fn = stream_continue if mode == "stream-continue" else recompute
    extra = benchmark.pedantic(fn, rounds=1, iterations=1)
    benchmark.extra_info["extra_answers"] = len(extra)
