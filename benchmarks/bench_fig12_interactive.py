"""Fig. 12(a,b) — interactive top-k on DBLP and IMDB.

The user asks for the top k, then for 50 more. PDk continues its
stream (the paper's headline interactivity claim); BUk and TDk pruned
their pools, so they must run the whole query again at k+50 — their
measured time is both runs, exactly the paper's setup.
"""

import pytest

from repro.bench.harness import measure_interactive

ALGS = ("pd", "bu", "td")
K_VALUES = (50, 100, 150, 200, 250)
BUDGET = 10.0  # per BU/TD run (each interactive cell runs them twice)


def run_cell(benchmark, bundle, k, alg):
    params = bundle.params
    keywords = params.query()

    def once():
        return measure_interactive(bundle.search, bundle.label,
                                   keywords, k, params.default_rmax,
                                   alg, extra_k=50,
                                   budget_seconds=BUDGET)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "k": k,
        "produced": result.communities,
        "timed_out": result.timed_out,
    })


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig12a_dblp_interactive(benchmark, dblp, k, alg):
    run_cell(benchmark, dblp, k, alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig12b_imdb_interactive(benchmark, imdb, k, alg):
    run_cell(benchmark, imdb, k, alg)
