"""Startup-path benchmark: legacy JSON load vs snapshot load.

A serving worker's cold start is bounded by how fast it can get a
graph + index into memory. The legacy path parses two JSON documents
and re-runs the CSR build (sort, dedup, reverse-adjacency); the
snapshot path memcpys little-endian sections straight into numpy
arrays and reconstructs adjacency without re-sorting. This file
measures both on the bench-scale datasets and records the ratio in
``extra_info["speedup"]`` — the acceptance bar is that the snapshot
load is measurably faster than the JSON load.

Run with ``pytest benchmarks/bench_snapshot_load.py --benchmark-json``
and merge the medians into ``bench_results.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.graph.io import load_database_graph, save_database_graph
from repro.snapshot import load_snapshot, write_snapshot
from repro.text.persistence import load_index, save_index


@pytest.fixture(scope="session")
def artifact_dir(tmp_path_factory, dblp, imdb):
    """Both artifact forms of both bench datasets, written once."""
    root = tmp_path_factory.mktemp("snapshot-bench")
    for name, bundle in (("dblp", dblp), ("imdb", imdb)):
        save_database_graph(bundle.dbg, root / f"{name}.graph.json")
        save_index(bundle.search.index, root / f"{name}.index.json")
        write_snapshot(root / f"{name}.snapshot", bundle.dbg,
                       bundle.search.index)
    return root


def _load_json(root, name):
    dbg = load_database_graph(root / f"{name}.graph.json")
    index = load_index(root / f"{name}.index.json", dbg)
    return dbg, index


def _load_snapshot(root, name):
    snapshot = load_snapshot(root / f"{name}.snapshot")
    return snapshot.dbg, snapshot.index


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
@pytest.mark.parametrize("form", ("json", "snapshot"))
def test_artifact_load(benchmark, dataset, form, artifact_dir):
    loader = _load_json if form == "json" else _load_snapshot
    dbg, index = benchmark.pedantic(
        lambda: loader(artifact_dir, dataset), rounds=5, iterations=1)
    assert index is not None and dbg.n > 0


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_snapshot_load_faster_than_json(dataset, artifact_dir,
                                        benchmark):
    """The headline ratio, best-of-5 per side to dampen noise."""
    def best_of(n, fn):
        best = float("inf")
        for _ in range(n):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    json_s = best_of(5, lambda: _load_json(artifact_dir, dataset))
    snap_s = best_of(5, lambda: _load_snapshot(artifact_dir, dataset))
    benchmark.pedantic(
        lambda: _load_snapshot(artifact_dir, dataset),
        rounds=3, iterations=1)
    benchmark.extra_info["json_seconds"] = json_s
    benchmark.extra_info["snapshot_seconds"] = snap_s
    benchmark.extra_info["speedup"] = json_s / snap_s
    assert snap_s < json_s, (
        f"snapshot load ({snap_s:.4f}s) not faster than JSON load "
        f"({json_s:.4f}s)")
