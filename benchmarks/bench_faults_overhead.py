"""Disarmed-failpoint overhead: the zero-cost guarantee, measured.

The robustness PR threads ``faults.hit`` / ``faults.corrupt`` sites
through the snapshot loader, the worker loop, the pool, and the
service request path. The contract is that with ``REPRO_FAILPOINTS``
unset these hooks are one module-global load and a falsy branch —
nothing a query could measure. These benchmarks pin that down:

* the raw per-call cost of a disarmed ``hit``/``corrupt`` (compared
  against a plain no-op function call baseline);
* an end-to-end query on the fig4 engine with the sites in place,
  which is the configuration every other benchmark in this directory
  already runs under.
"""

import pytest

from repro import faults
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.engine import QueryEngine, QuerySpec

#: Calls per benchmark round — hit() is nanoseconds, so single calls
#: would measure timer noise.
CALLS = 10_000


def _noop():
    """The floor: what calling any function at all costs."""


@pytest.fixture()
def disarmed():
    """Guarantee nothing is armed (the production state)."""
    faults.clear()
    assert not faults.is_armed()
    yield
    faults.clear()


def test_disarmed_hit_costs_a_function_call(benchmark, disarmed):
    def hammer():
        for _ in range(CALLS):
            faults.hit("bench.site")

    benchmark.pedantic(hammer, rounds=20, iterations=1)
    benchmark.extra_info["calls_per_round"] = CALLS


def test_disarmed_corrupt_costs_a_function_call(benchmark, disarmed):
    payload = b"x" * 4096

    def hammer():
        for _ in range(CALLS):
            faults.corrupt("bench.site", payload)

    benchmark.pedantic(hammer, rounds=20, iterations=1)
    benchmark.extra_info["calls_per_round"] = CALLS


def test_noop_call_baseline(benchmark):
    def hammer():
        for _ in range(CALLS):
            _noop()

    benchmark.pedantic(hammer, rounds=20, iterations=1)
    benchmark.extra_info["calls_per_round"] = CALLS


def test_query_with_disarmed_sites(benchmark, disarmed):
    """End-to-end COMM-k with every failpoint site on its fast path."""
    dbg = figure4_graph()
    engine = QueryEngine(dbg)
    engine.build_index(radius=FIG4_RMAX)
    spec = QuerySpec.comm_k(list(FIG4_QUERY), 3, FIG4_RMAX)

    results = benchmark(lambda: engine.execute(spec))
    assert len(results) == 3
