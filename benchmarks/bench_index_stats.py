"""Section VII index statistics: build time, index size, and the
projected-graph fraction (the paper reports max/avg ~0.4–1.8 % and
index sizes/build times for both datasets)."""

import pytest

from repro.datasets.dblp import DBLPConfig, dblp_graph
from repro.datasets.imdb import IMDBConfig, imdb_graph
from repro.text.inverted_index import CommunityIndex


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_index_build(benchmark, dataset):
    if dataset == "dblp":
        _, dbg = dblp_graph(DBLPConfig(n_authors=800))
        radius = 8.0
    else:
        _, dbg = imdb_graph(IMDBConfig(n_users=150, n_movies=100,
                                       n_ratings=3_000))
        radius = 13.0

    index = benchmark.pedantic(
        lambda: CommunityIndex.build(dbg, radius), rounds=1,
        iterations=1)

    stats = index.stats()
    benchmark.extra_info.update({
        "nodes": dbg.n,
        "edges": dbg.m,
        "index_size_bytes": stats["size_bytes"],
        "node_postings": stats["node_postings"],
        "edge_postings": stats["edge_postings"],
    })
    assert stats["node_postings"] > 0
    assert stats["edge_postings"] > 0


@pytest.mark.parametrize("dataset", ("dblp", "imdb"))
def test_projection_fraction(benchmark, dataset, dblp, imdb):
    bundle = dblp if dataset == "dblp" else imdb
    params = bundle.params
    keywords = params.query()

    # bypass the engine's projection cache: this measures Algorithm 6
    projection = benchmark.pedantic(
        lambda: bundle.engine.project(keywords, params.default_rmax,
                                      use_cache=False),
        rounds=1, iterations=1)

    fraction = projection.fraction_of(bundle.dbg)
    benchmark.extra_info.update({
        "projected_nodes": projection.n,
        "projected_edges": projection.m,
        "fraction": fraction,
    })
    # the paper's headline: projections are a small slice of G_D
    assert 0.0 < fraction < 0.5
