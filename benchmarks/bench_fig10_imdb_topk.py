"""Fig. 10(a–d) — IMDB COMM-k: total time for PDk / BUk / TDk over the
KWF, l, Rmax, and k sweeps.

This is where the polynomial-delay design pays off: PDk performs
``k`` ``Next()`` steps while BUk/TDk must expand and enumerate *every*
candidate core before they can prune to the top k.
"""

import pytest

from repro.bench.harness import measure_topk

ALGS = ("pd", "bu", "td")
BUDGET = 10.0  # censors BU/TD combinatorial cells (marked timed_out)


def run_cell(benchmark, bundle, keywords, k, rmax, alg):
    def once():
        return measure_topk(bundle.search, bundle.label, keywords, k,
                            rmax, alg, budget_seconds=BUDGET)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "k": k,
        "communities": result.communities,
        "seconds": result.seconds,
        "timed_out": result.timed_out,
    })
    assert result.communities <= k


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("kwf", (0.0003, 0.0006, 0.0009, 0.0012,
                                 0.0015))
def test_fig10a_kwf_sweep(benchmark, imdb, kwf, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(kwf=kwf), params.default_k,
             params.default_rmax, alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("l", (2, 3, 4, 5, 6))
def test_fig10b_l_sweep(benchmark, imdb, l, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(l=l), params.default_k,
             params.default_rmax, alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("rmax", (9.0, 10.0, 11.0, 12.0, 13.0))
def test_fig10c_rmax_sweep(benchmark, imdb, rmax, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(), params.default_k, rmax,
             alg)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("k", (50, 100, 150, 200, 250))
def test_fig10d_k_sweep(benchmark, imdb, k, alg):
    params = imdb.params
    run_cell(benchmark, imdb, params.query(), k, params.default_rmax,
             alg)
