"""The database: a set of tables with enforced foreign keys.

:class:`Database` owns table creation (binding foreign keys to the
referenced tables' primary keys) and row insertion with referential
integrity. Insertion order must respect references, as it would in a
real RDBMS load without deferred constraints.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from repro.exceptions import IntegrityError, SchemaError
from repro.rdb.schema import ForeignKey, TableSchema
from repro.rdb.table import Row, Table


class Database:
    """A named collection of :class:`~repro.rdb.table.Table` objects."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table, checking foreign keys against existing tables."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table != schema.name \
                    and fk.ref_table not in self._tables:
                raise SchemaError(
                    f"table {schema.name!r} references unknown table "
                    f"{fk.ref_table!r}")
            ref_schema = (schema if fk.ref_table == schema.name
                          else self._tables[fk.ref_table].schema)
            ref_column = fk.ref_column or ref_schema.primary_key[0]
            if len(ref_schema.primary_key) != 1 \
                    or ref_schema.primary_key[0] != ref_column:
                raise SchemaError(
                    f"foreign key {schema.name}.{fk.column} must target "
                    f"the single-column primary key of {fk.ref_table!r}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r} in database "
                              f"{self.name!r}") from None

    @property
    def table_names(self) -> Tuple[str, ...]:
        """Table names in creation order."""
        return tuple(self._tables)

    def tables(self) -> Iterator[Table]:
        """Iterate tables in creation order."""
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: Mapping[str, object]) -> Row:
        """Insert one row, enforcing every foreign key."""
        table = self.table(table_name)
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                if not table.schema.column(fk.column).nullable:
                    raise IntegrityError(
                        f"{table_name}.{fk.column} is a non-nullable "
                        f"foreign key but no value was supplied")
                continue
            if not self.table(fk.ref_table).contains_pk(value):
                raise IntegrityError(
                    f"{table_name}.{fk.column}={value!r} references a "
                    f"missing row in {fk.ref_table!r}")
        return table.insert(row)

    def insert_many(self, table_name: str,
                    rows: Iterator[Mapping[str, object]]) -> int:
        """Insert many rows; returns how many were inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def total_rows(self) -> int:
        """Total tuples across all tables (the paper's tuple counts)."""
        return sum(len(t) for t in self._tables.values())

    def total_references(self) -> int:
        """Total non-null foreign-key references across all tables."""
        count = 0
        for table in self._tables.values():
            fk_positions = [
                table.schema.column_index(fk.column)
                for fk in table.schema.foreign_keys]
            if not fk_positions:
                continue
            for row in table.scan():
                values = row.values_tuple
                count += sum(
                    1 for pos in fk_positions if values[pos] is not None)
        return count

    def stats(self) -> Dict[str, int]:
        """Per-table row counts plus totals."""
        result = {name: len(t) for name, t in self._tables.items()}
        result["__total_rows__"] = self.total_rows()
        result["__total_references__"] = self.total_references()
        return result

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{name}={len(t)}" for name, t in self._tables.items())
        return f"Database({self.name!r}: {counts})"


def foreign_key_pairs(db: Database) -> Iterator[Tuple[Tuple[str, object],
                                                      Tuple[str, object]]]:
    """Yield ``((table, pk), (ref_table, ref_pk))`` for every reference.

    This is the edge stream the graph builder materializes; it is also
    useful on its own for integrity audits.
    """
    for table in db.tables():
        schema = table.schema
        fk_info: List[Tuple[int, ForeignKey]] = [
            (schema.column_index(fk.column), fk)
            for fk in schema.foreign_keys]
        if not fk_info:
            continue
        pk_positions = tuple(
            schema.column_index(c) for c in schema.primary_key)
        for row in table.scan():
            values = row.values_tuple
            pk: object = tuple(values[pos] for pos in pk_positions)
            if len(pk) == 1:
                pk = pk[0]
            for pos, fk in fk_info:
                ref_value = values[pos]
                if ref_value is None:
                    continue
                yield (schema.name, pk), (fk.ref_table, ref_value)
