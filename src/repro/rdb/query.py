"""A small relational query layer over the in-memory engine.

The paper's system sits *behind* an RDBMS: users also run ordinary
selections and joins against the same tables the community search
indexes. This module provides that surface — enough relational algebra
to make :mod:`repro.rdb` a usable engine rather than a row store:

* :class:`Query` — a fluent builder over one table:
  ``select`` (projection), ``where`` (predicates), ``join`` (inner
  equi-join, hash-based), ``order_by``, ``limit``;
* predicates compose with ``&`` / ``|`` / ``~``;
* equality predicates on indexed columns use the table's secondary
  hash indexes (see :meth:`repro.rdb.table.Table.create_index`)
  instead of scanning.

Results are lists of plain dicts (column -> value); joined columns are
disambiguated as ``table.column`` when both sides share a name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import SchemaError
from repro.rdb.database import Database
from repro.rdb.table import Table

RowDict = Dict[str, Any]


class Predicate:
    """A composable row predicate.

    Build with the ``col()`` helpers (:meth:`Col.eq`, ``lt`` …) and
    combine with ``&``, ``|``, ``~``. ``column``/``value`` are exposed
    for equality predicates so the planner can use hash indexes.
    """

    def __init__(self, fn: Callable[[RowDict], bool],
                 column: Optional[str] = None,
                 value: Any = None,
                 is_equality: bool = False) -> None:
        self._fn = fn
        self.column = column
        self.value = value
        self.is_equality = is_equality

    def __call__(self, row: RowDict) -> bool:
        return self._fn(row)

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(lambda row: self(row) and other(row))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(lambda row: self(row) or other(row))

    def __invert__(self) -> "Predicate":
        return Predicate(lambda row: not self(row))


class Col:
    """Column reference used to build predicates: ``Col("Age").ge(30)``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _get(self, row: RowDict) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise SchemaError(
                f"no column {self.name!r} in row; available: "
                f"{sorted(row)}") from None

    def eq(self, value: Any) -> Predicate:
        """Equality — index-accelerated when an index exists."""
        return Predicate(lambda row: self._get(row) == value,
                         column=self.name, value=value,
                         is_equality=True)

    def ne(self, value: Any) -> Predicate:
        """Inequality."""
        return Predicate(lambda row: self._get(row) != value)

    def lt(self, value: Any) -> Predicate:
        """Strictly less than (NULLs never match)."""
        return Predicate(lambda row: self._get(row) is not None
                         and self._get(row) < value)

    def le(self, value: Any) -> Predicate:
        """Less than or equal (NULLs never match)."""
        return Predicate(lambda row: self._get(row) is not None
                         and self._get(row) <= value)

    def gt(self, value: Any) -> Predicate:
        """Strictly greater than (NULLs never match)."""
        return Predicate(lambda row: self._get(row) is not None
                         and self._get(row) > value)

    def ge(self, value: Any) -> Predicate:
        """Greater than or equal (NULLs never match)."""
        return Predicate(lambda row: self._get(row) is not None
                         and self._get(row) >= value)

    def is_null(self) -> Predicate:
        """True where the column is NULL."""
        return Predicate(lambda row: self._get(row) is None)

    def contains(self, token: str) -> Predicate:
        """Substring containment on text columns."""
        return Predicate(
            lambda row: isinstance(self._get(row), str)
            and token in self._get(row))


def col(name: str) -> Col:
    """Shorthand: ``col("Age").ge(30)``."""
    return Col(name)


@dataclass
class _Join:
    table: Table
    left_column: str
    right_column: str


class Query:
    """A fluent query over one base table (plus inner joins)."""

    def __init__(self, db: Database, table_name: str) -> None:
        self._db = db
        self._base = db.table(table_name)
        self._base_name = table_name
        self._joins: List[_Join] = []
        self._predicates: List[Predicate] = []
        self._projection: Optional[List[str]] = None
        self._order: Optional[Tuple[str, bool]] = None
        self._limit: Optional[int] = None

    # ------------------------------------------------------------------
    # builder steps
    # ------------------------------------------------------------------
    def where(self, predicate: Predicate) -> "Query":
        """Add a filter (conjunctive with previous ``where`` calls)."""
        self._predicates.append(predicate)
        return self

    def join(self, table_name: str, on: Tuple[str, str]) -> "Query":
        """Inner equi-join: ``on=(left_column, right_column)``.

        The left column refers to the rows built so far; the right
        column to the joined table.
        """
        left, right = on
        table = self._db.table(table_name)
        if right not in table.schema.column_names:
            raise SchemaError(
                f"no column {right!r} in table {table_name!r}")
        self._joins.append(_Join(table, left, right))
        return self

    def select(self, *columns: str) -> "Query":
        """Project the output to the given columns."""
        self._projection = list(columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Sort the output."""
        self._order = (column, descending)
        return self

    def limit(self, count: int) -> "Query":
        """Keep at most ``count`` rows (applied after ordering)."""
        if count < 0:
            raise SchemaError(f"limit must be >= 0, got {count}")
        self._limit = count
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> List[RowDict]:
        """Execute and materialize the result rows."""
        rows = self._scan_base()
        for join in self._joins:
            rows = self._hash_join(rows, join)
        for predicate in self._residual_predicates():
            rows = [row for row in rows if predicate(row)]
        if self._order is not None:
            column, descending = self._order
            rows.sort(key=lambda row: row.get(column),
                      reverse=descending)
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            rows = [
                {name: row[name] for name in self._projection}
                for row in rows
            ]
        return rows

    def __iter__(self) -> Iterator[RowDict]:
        return iter(self.run())

    def count(self) -> int:
        """Number of result rows (projection ignored)."""
        return len(self.run())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scan_base(self) -> List[RowDict]:
        """Base access path: use a hash index for the first equality
        predicate on an indexed base column, else scan."""
        indexed = None
        for predicate in self._predicates:
            if predicate.is_equality and predicate.column \
                    and self._base.has_index(predicate.column):
                indexed = predicate
                break
        if indexed is not None:
            rows = self._base.index_lookup(indexed.column,
                                           indexed.value)
        else:
            rows = list(self._base.scan())
        return [dict(row) for row in rows]

    def _residual_predicates(self) -> List[Predicate]:
        # The indexed predicate still runs (cheap, keeps logic simple
        # and correct when the index path was not taken).
        return self._predicates

    def _hash_join(self, rows: List[RowDict], join: _Join
                   ) -> List[RowDict]:
        build: Dict[Any, List[RowDict]] = {}
        right_name = join.table.schema.name
        for right_row in join.table.scan():
            as_dict = dict(right_row)
            build.setdefault(as_dict[join.right_column],
                             []).append(as_dict)
        result: List[RowDict] = []
        for left_row in rows:
            key = left_row.get(join.left_column)
            if key is None:
                continue
            for right_row in build.get(key, ()):
                merged = dict(left_row)
                for name, value in right_row.items():
                    if name in merged and merged[name] != value:
                        merged[f"{right_name}.{name}"] = value
                    else:
                        merged.setdefault(name, value)
                result.append(merged)
        return result


def query(db: Database, table_name: str) -> Query:
    """Start a query: ``query(db, "Paper").where(...).run()``."""
    return Query(db, table_name)
