"""Minimal in-memory relational engine.

The paper materializes a relational database as a database graph: tuples
become nodes, foreign-key references become (bi-directed) weighted
edges. This subpackage is that substrate: typed schemas with primary
and foreign keys (:mod:`repro.rdb.schema`), row storage with integrity
enforcement (:mod:`repro.rdb.table`, :mod:`repro.rdb.database`), and the
materialization step (:mod:`repro.rdb.graph_builder`).
"""

from repro.rdb.database import Database
from repro.rdb.graph_builder import build_database_graph
from repro.rdb.query import Col, Predicate, Query, col, query
from repro.rdb.schema import Column, ForeignKey, TableSchema
from repro.rdb.table import Row, Table

__all__ = [
    "Col",
    "Column",
    "Database",
    "ForeignKey",
    "Predicate",
    "Query",
    "Row",
    "Table",
    "TableSchema",
    "build_database_graph",
    "col",
    "query",
]
