"""Row storage for one relation, with a primary-key index.

Rows are stored as tuples in declaration order; :class:`Row` is a thin
named view used at the API boundary. The table maintains a hash index
on the primary key, which is what makes foreign-key checks and graph
materialization linear.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import IntegrityError, SchemaError
from repro.rdb.schema import TableSchema

PKValue = Tuple[object, ...]


class Row(Mapping[str, object]):
    """Immutable mapping view over one stored tuple."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: TableSchema, values: Tuple[object, ...]) -> None:
        self._schema = schema
        self._values = values

    def __getitem__(self, key: str) -> object:
        return self._values[self._schema.column_index(key)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.column_names)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values_tuple(self) -> Tuple[object, ...]:
        """The raw stored tuple."""
        return self._values

    def primary_key(self) -> PKValue:
        """The row's primary-key value tuple."""
        return tuple(self[c] for c in self._schema.primary_key)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={self[name]!r}" for name in self._schema.column_names)
        return f"Row({self._schema.name}: {pairs})"


class Table:
    """Rows of one relation plus a primary-key hash index."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Tuple[object, ...]] = []
        self._pk_index: Dict[PKValue, int] = {}
        self._pk_positions = tuple(
            schema.column_index(c) for c in schema.primary_key)
        # secondary hash indexes: column -> {value: [row positions]}
        self._secondary: Dict[str, Dict[object, List[int]]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, object]) -> Row:
        """Validate and store one row given as a column -> value mapping.

        Raises :class:`SchemaError` for type problems and
        :class:`IntegrityError` for duplicate primary keys. Foreign-key
        enforcement lives in :class:`repro.rdb.database.Database`, which
        can see the referenced tables.
        """
        unknown = set(row) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table "
                f"{self.schema.name!r}")
        values = tuple(
            col.validate(row.get(col.name)) for col in self.schema.columns)
        pk = tuple(values[pos] for pos in self._pk_positions)
        if pk in self._pk_index:
            raise IntegrityError(
                f"duplicate primary key {pk!r} in table "
                f"{self.schema.name!r}")
        position = len(self._rows)
        self._pk_index[pk] = position
        self._rows.append(values)
        for column, index in self._secondary.items():
            value = values[self.schema.column_index(column)]
            index.setdefault(value, []).append(position)
        return Row(self.schema, values)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, pk: object) -> Optional[Row]:
        """Row with the given primary key, or ``None``.

        A scalar is accepted for single-column keys.
        """
        key = self._normalize_pk(pk)
        pos = self._pk_index.get(key)
        if pos is None:
            return None
        return Row(self.schema, self._rows[pos])

    def contains_pk(self, pk: object) -> bool:
        """True if a row with this primary key exists."""
        return self._normalize_pk(pk) in self._pk_index

    def scan(self) -> Iterator[Row]:
        """Iterate all rows in insertion order."""
        for values in self._rows:
            yield Row(self.schema, values)

    def select(self, predicate) -> Iterator[Row]:
        """Iterate rows satisfying ``predicate(row)``."""
        for row in self.scan():
            if predicate(row):
                yield row

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name}, rows={len(self._rows)})"

    # ------------------------------------------------------------------
    # secondary indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index on one column.

        Equality lookups through :meth:`index_lookup` (and the query
        layer's ``col(...).eq(...)`` predicates) then avoid full
        scans. Maintained automatically by subsequent inserts.
        """
        position = self.schema.column_index(column)
        index: Dict[object, List[int]] = {}
        for row_position, values in enumerate(self._rows):
            index.setdefault(values[position], []).append(row_position)
        self._secondary[column] = index

    def has_index(self, column: str) -> bool:
        """True when a secondary index exists on ``column``."""
        return column in self._secondary

    def index_lookup(self, column: str, value: object) -> List[Row]:
        """Rows with ``column == value`` via the hash index."""
        if column not in self._secondary:
            raise SchemaError(
                f"no index on {self.schema.name}.{column}; call "
                f"create_index first")
        return [
            Row(self.schema, self._rows[pos])
            for pos in self._secondary[column].get(value, ())
        ]

    # ------------------------------------------------------------------
    def _normalize_pk(self, pk: object) -> PKValue:
        if isinstance(pk, tuple):
            key = pk
        else:
            key = (pk,)
        if len(key) != len(self._pk_positions):
            raise SchemaError(
                f"table {self.schema.name!r} has a "
                f"{len(self._pk_positions)}-column primary key, got "
                f"{len(key)} values")
        return key


def row_values(rows: Sequence[Row], column: str) -> List[object]:
    """Project one column out of a row sequence (test convenience)."""
    return [row[column] for row in rows]
