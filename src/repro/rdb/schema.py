"""Relational schema objects: columns, foreign keys, table schemas.

Schemas are declared once and validated eagerly, so malformed designs
fail at ``create_table`` time rather than at query time. A
:class:`TableSchema` also declares which columns carry *text* — the
columns whose tokens become the node's keywords when the database is
materialized as a graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.exceptions import SchemaError

#: Column types the engine accepts. ``str`` columns may feed the
#: full-text machinery; the others are structural.
SUPPORTED_TYPES = (int, float, str, bool)


@dataclass(frozen=True)
class Column:
    """A typed, optionally nullable column."""

    name: str
    type: type = str
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.type not in SUPPORTED_TYPES:
            raise SchemaError(
                f"unsupported column type {self.type!r} for "
                f"column {self.name!r}; supported: "
                f"{[t.__name__ for t in SUPPORTED_TYPES]}")

    def validate(self, value: object) -> object:
        """Check (and mildly coerce) a value against this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(
                    f"column {self.name!r} is not nullable")
            return None
        if isinstance(value, self.type):
            return value
        # Accept ints where floats are declared; nothing else coerces.
        if self.type is float and isinstance(value, int) \
                and not isinstance(value, bool):
            return float(value)
        raise SchemaError(
            f"column {self.name!r} expects {self.type.__name__}, "
            f"got {type(value).__name__} ({value!r})")


@dataclass(frozen=True)
class ForeignKey:
    """A reference from ``column`` to ``ref_table.ref_column``.

    ``ref_column`` defaults to the referenced table's primary key at
    bind time (see :meth:`TableSchema.bind_foreign_keys`).
    """

    column: str
    ref_table: str
    ref_column: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.column:
            raise SchemaError("foreign key needs a source column")
        if not self.ref_table:
            raise SchemaError(
                f"foreign key on {self.column!r} needs a target table")


@dataclass(frozen=True)
class TableSchema:
    """Name, columns, primary key, foreign keys, and text columns.

    ``primary_key`` may name one column or a tuple of columns (link
    tables such as DBLP's ``Write(Aid, Pid)`` use composite keys).
    ``text_columns`` lists the columns whose tokenized content becomes
    the tuple's keywords in the database graph.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...]
    foreign_keys: Tuple[ForeignKey, ...] = field(default_factory=tuple)
    text_columns: Tuple[str, ...] = field(default_factory=tuple)

    def __init__(self, name: str, columns: Sequence[Column],
                 primary_key, foreign_keys: Sequence[ForeignKey] = (),
                 text_columns: Sequence[str] = ()) -> None:
        if isinstance(primary_key, str):
            primary_key = (primary_key,)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "primary_key", tuple(primary_key))
        object.__setattr__(self, "foreign_keys", tuple(foreign_keys))
        object.__setattr__(self, "text_columns", tuple(text_columns))
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"duplicate column names in table {self.name!r}")
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        for pk_col in self.primary_key:
            if pk_col not in names:
                raise SchemaError(
                    f"primary key column {pk_col!r} not in table "
                    f"{self.name!r}")
            if self.column(pk_col).nullable:
                raise SchemaError(
                    f"primary key column {pk_col!r} cannot be nullable")
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"foreign key column {fk.column!r} not in table "
                    f"{self.name!r}")
        for text_col in self.text_columns:
            if text_col not in names:
                raise SchemaError(
                    f"text column {text_col!r} not in table {self.name!r}")
            if self.column(text_col).type is not str:
                raise SchemaError(
                    f"text column {text_col!r} must be a str column")

    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        """Positional index of a column."""
        for idx, col in enumerate(self.columns):
            if col.name == name:
                return idx
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)
