"""Materialize a relational database as a database graph ``G_D``.

Following the paper (Section II and the BANKS modeling it cites):

* every tuple becomes one node;
* every non-null foreign-key reference ``u -> v`` becomes a
  *bi-directed* pair of edges ``(u, v)`` and ``(v, u)`` — the paper's
  DBLP graph has exactly twice as many directed edges as references;
* the weight of a directed edge is
  ``w_e((u, v)) = log2(1 + N_in(v))`` where ``N_in(v)`` is the
  in-degree of the target node in the bi-directed graph (the
  BANKS-style weight the paper's experiments use);
* a node's keywords are the tokens of the tuple's declared text
  columns; its label is ``table:pk`` (or a chosen label column).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph, Provenance
from repro.rdb.database import Database, foreign_key_pairs
from repro.text.tokenizer import tokenize

NodeKey = Tuple[str, object]


def banks_weight(in_degree: int) -> float:
    """The BANKS edge-weight formula ``log2(1 + N_in(v))``."""
    return math.log2(1 + in_degree)


def build_database_graph(
    db: Database,
    tokenizer: Callable[[str], Set[str]] = tokenize,
    label_columns: Optional[Mapping[str, str]] = None,
    bidirected: bool = True,
) -> DatabaseGraph:
    """Build the database graph for ``db``.

    ``label_columns`` optionally maps a table name to the column whose
    value should label its nodes (e.g. ``{"Author": "Name"}``); other
    tables label nodes as ``table:pk``. Set ``bidirected=False`` for a
    reference-direction-only graph (the paper's approach "can be easily
    applied" to either; experiments use bi-directed).
    """
    label_columns = dict(label_columns or {})

    # --- assign dense node ids in (table creation, row insertion) order
    node_of: Dict[NodeKey, int] = {}
    labels: List[str] = []
    keywords: List[Set[str]] = []
    provenance: List[Optional[Provenance]] = []
    for table in db.tables():
        schema = table.schema
        text_positions = [
            schema.column_index(c) for c in schema.text_columns]
        label_position = (
            schema.column_index(label_columns[schema.name])
            if schema.name in label_columns else None)
        pk_positions = tuple(
            schema.column_index(c) for c in schema.primary_key)
        for row in table.scan():
            values = row.values_tuple
            pk: object = tuple(values[pos] for pos in pk_positions)
            if len(pk) == 1:
                pk = pk[0]
            node_of[(schema.name, pk)] = len(labels)
            if label_position is not None \
                    and values[label_position] is not None:
                labels.append(str(values[label_position]))
            else:
                labels.append(f"{schema.name}:{pk}")
            kws: Set[str] = set()
            for pos in text_positions:
                text = values[pos]
                if text:
                    kws |= tokenizer(text)
            keywords.append(kws)
            provenance.append((schema.name, pk))

    # --- collect directed edges from references
    pairs: List[Tuple[int, int]] = []
    for src_key, dst_key in foreign_key_pairs(db):
        u = node_of[src_key]
        v = node_of[dst_key]
        pairs.append((u, v))
        if bidirected:
            pairs.append((v, u))

    # --- in-degrees on the (bi-)directed edge set, then BANKS weights
    in_degree = [0] * len(labels)
    for _, v in pairs:
        in_degree[v] += 1
    edges = [(u, v, banks_weight(in_degree[v])) for u, v in pairs]

    graph = CompiledGraph.from_edges(len(labels), edges)
    return DatabaseGraph(graph, keywords, labels, provenance)


def node_lookup(db: Database, dbg: DatabaseGraph) -> Dict[NodeKey, int]:
    """Rebuild the ``(table, pk) -> node id`` mapping for a graph built
    by :func:`build_database_graph` (ids are assigned in scan order)."""
    mapping: Dict[NodeKey, int] = {}
    for node in range(dbg.n):
        prov = dbg.provenance_of(node)
        if prov is not None:
            mapping[prov] = node
    return mapping
