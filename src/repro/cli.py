"""Command-line query tool: ``python -m repro``.

Workflows:

* build a demo graph+index and save them::

      python -m repro build --dataset dblp --out-graph g.json.gz \
          --out-index idx.json.gz --radius 8

* query saved artifacts (or a built-in dataset directly)::

      python -m repro query --graph g.json.gz --index idx.json.gz \
          --keywords kw0009a,kw0009b --rmax 6 --k 10

      python -m repro query --dataset imdb \
          --keywords kw0009a,kw0009b,kw0009c --rmax 11 --all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Tuple

from repro.core.search import CommunitySearch
from repro.engine.context import QueryContext
from repro.engine.spec import QuerySpec
from repro.exceptions import ReproError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.io import load_database_graph, save_database_graph
from repro.text.persistence import load_index, save_index


def _load_dataset(name: str) -> DatabaseGraph:
    if name == "dblp":
        from repro.datasets.dblp import DBLPConfig, dblp_graph
        return dblp_graph(DBLPConfig(n_authors=1_500))[1]
    if name == "imdb":
        from repro.datasets.imdb import IMDBConfig, imdb_graph
        return imdb_graph(IMDBConfig(n_users=300, n_movies=200,
                                     n_ratings=8_000))[1]
    if name == "fig4":
        from repro.datasets.paper_example import figure4_graph
        return figure4_graph()
    raise ReproError(f"unknown dataset {name!r} (dblp, imdb, fig4)")


def _resolve_search(args) -> Tuple[DatabaseGraph, CommunitySearch]:
    if args.graph:
        dbg = load_database_graph(args.graph)
    elif args.dataset:
        dbg = _load_dataset(args.dataset)
    else:
        raise ReproError("pass --graph FILE or --dataset NAME")
    search = CommunitySearch(dbg)
    if getattr(args, "index", None):
        search.index = load_index(args.index, dbg)
    return dbg, search


def cmd_build(args) -> int:
    """``build``: generate a dataset; save graph and/or index."""
    dbg = _load_dataset(args.dataset)
    print(f"{args.dataset}: {dbg.n} nodes, {dbg.m} edges")
    if args.out_graph:
        save_database_graph(dbg, args.out_graph)
        print(f"graph -> {args.out_graph}")
    if args.out_index:
        search = CommunitySearch(dbg)
        start = time.perf_counter()
        index = search.build_index(radius=args.radius)
        print(f"index built in {time.perf_counter() - start:.1f}s "
              f"(R={args.radius:g}, {index.size_bytes() / 1e6:.1f} MB)")
        save_index(index, args.out_index)
        print(f"index -> {args.out_index}")
    return 0


def cmd_query(args) -> int:
    """``query``: run a community query and print the answers.

    Queries are normalized into a :class:`~repro.engine.QuerySpec`
    and executed by the facade's engine; ``--stats`` prints the
    engine's per-stage instrumentation (resolve/project/enumerate/
    translate timings, projection-cache traffic) afterwards.
    """
    dbg, search = _resolve_search(args)
    keywords = [kw.strip() for kw in args.keywords.split(",")
                if kw.strip()]
    if search.index is None:
        print(f"no index given; building one at R={args.rmax:g} ...",
              file=sys.stderr)
        search.build_index(radius=args.rmax)

    if args.all:
        spec = QuerySpec.comm_all(keywords, args.rmax,
                                  algorithm=args.algorithm,
                                  aggregate=args.aggregate)
    else:
        spec = QuerySpec.comm_k(keywords, args.k, args.rmax,
                                algorithm=args.algorithm,
                                aggregate=args.aggregate)
    context = QueryContext()
    start = time.perf_counter()
    results = search.engine.execute(spec, context)
    elapsed = time.perf_counter() - start

    for rank, community in enumerate(results, start=1):
        print(f"#{rank}")
        print(community.describe(dbg))
        print()
    mode = "all" if args.all else f"top-{args.k}"
    print(f"{len(results)} communities ({mode}, Rmax={args.rmax:g}, "
          f"{args.algorithm}) in {elapsed:.2f}s")
    if args.stats:
        print(f"stages: {context.render()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Keyword community search over relational "
                    "database graphs (Qin et al., ICDE 2009).")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="generate and save a demo "
                                         "graph and/or index")
    build.add_argument("--dataset", required=True,
                       choices=("dblp", "imdb", "fig4"))
    build.add_argument("--out-graph", help="write the graph here "
                                           "(.json or .json.gz)")
    build.add_argument("--out-index", help="write the index here")
    build.add_argument("--radius", type=float, default=8.0,
                       help="index radius R (max Rmax; default 8)")
    build.set_defaults(func=cmd_build)

    query = sub.add_parser("query", help="run a community query")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="a saved graph file")
    source.add_argument("--dataset", choices=("dblp", "imdb", "fig4"),
                        help="generate a built-in dataset instead")
    query.add_argument("--index", help="a saved index file")
    query.add_argument("--keywords", required=True,
                       help="comma-separated query keywords")
    query.add_argument("--rmax", type=float, required=True,
                       help="community radius Rmax")
    query.add_argument("--k", type=int, default=10,
                       help="top-k (default 10)")
    query.add_argument("--all", action="store_true",
                       help="enumerate all communities instead of "
                            "top-k")
    query.add_argument("--algorithm", default="pd",
                       choices=("pd", "bu", "td", "naive"))
    query.add_argument("--aggregate", default="sum",
                       choices=("sum", "max"))
    query.add_argument("--stats", action="store_true",
                       help="print per-stage engine instrumentation "
                            "(timings, cache traffic) after the "
                            "answers")
    query.set_defaults(func=cmd_query)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
