"""Command-line query tool: ``python -m repro``.

Workflows:

* build a demo graph+index and save them::

      python -m repro build --dataset dblp --out-graph g.json.gz \
          --out-index idx.json.gz --radius 8

* query saved artifacts (or a built-in dataset directly)::

      python -m repro query --graph g.json.gz --index idx.json.gz \
          --keywords kw0009a,kw0009b --rmax 6 --k 10

      python -m repro query --dataset imdb \
          --keywords kw0009a,kw0009b,kw0009c --rmax 11 --all

* serve queries over HTTP (see :mod:`repro.service`)::

      python -m repro serve --dataset dblp --radius 8 --port 8420

* snapshot lifecycle (see :mod:`repro.snapshot`) — build once,
  publish atomically, serve and hot-reload from the store::

      python -m repro snapshot build --dataset fig4 --store ./snaps
      python -m repro snapshot verify ./snaps
      python -m repro serve --snapshot ./snaps --port 8420
      # after publishing a newer snapshot:
      curl -X POST http://127.0.0.1:8420/admin/reload
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from typing import Tuple

from repro.core.search import CommunitySearch
from repro.engine.context import QueryContext
from repro.engine.spec import QuerySpec
from repro.exceptions import ReproError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.io import load_database_graph, save_database_graph
from repro.text.persistence import load_index, save_index


def _load_dataset(name: str) -> DatabaseGraph:
    if name == "dblp":
        from repro.datasets.dblp import DBLPConfig, dblp_graph
        return dblp_graph(DBLPConfig(n_authors=1_500))[1]
    if name == "imdb":
        from repro.datasets.imdb import IMDBConfig, imdb_graph
        return imdb_graph(IMDBConfig(n_users=300, n_movies=200,
                                     n_ratings=8_000))[1]
    if name == "fig4":
        from repro.datasets.paper_example import figure4_graph
        return figure4_graph()
    raise ReproError(f"unknown dataset {name!r} (dblp, imdb, fig4)")


def _resolve_search(args) -> Tuple[DatabaseGraph, CommunitySearch]:
    if args.graph:
        dbg = load_database_graph(args.graph)
    elif args.dataset:
        dbg = _load_dataset(args.dataset)
    else:
        raise ReproError("pass --graph FILE or --dataset NAME")
    search = CommunitySearch(dbg)
    if getattr(args, "index", None):
        search.index = load_index(args.index, dbg)
    return dbg, search


def cmd_build(args) -> int:
    """``build``: generate a dataset; save graph and/or index."""
    dbg = _load_dataset(args.dataset)
    print(f"{args.dataset}: {dbg.n} nodes, {dbg.m} edges")
    if args.out_graph:
        save_database_graph(dbg, args.out_graph)
        print(f"graph -> {args.out_graph}")
    if args.out_index:
        search = CommunitySearch(dbg)
        start = time.perf_counter()
        index = search.build_index(radius=args.radius)
        print(f"index built in {time.perf_counter() - start:.1f}s "
              f"(R={args.radius:g}, {index.size_bytes() / 1e6:.1f} MB)")
        save_index(index, args.out_index)
        print(f"index -> {args.out_index}")
    return 0


def cmd_query(args) -> int:
    """``query``: run a community query and print the answers.

    Queries are normalized into a :class:`~repro.engine.QuerySpec`
    and executed by the facade's engine; ``--stats`` prints the
    engine's per-stage instrumentation (resolve/project/enumerate/
    translate timings, projection-cache traffic) afterwards.
    ``--json`` swaps the human rendering for the machine-readable
    envelope of :mod:`repro.service.serialize` — byte-compatible with
    what ``POST /query`` on the HTTP service returns.
    """
    dbg, search = _resolve_search(args)
    keywords = [kw.strip() for kw in args.keywords.split(",")
                if kw.strip()]
    if search.index is None:
        print(f"no index given; building one at R={args.rmax:g} ...",
              file=sys.stderr)
        search.build_index(radius=args.rmax)

    if args.all:
        spec = QuerySpec.comm_all(keywords, args.rmax,
                                  algorithm=args.algorithm,
                                  aggregate=args.aggregate)
    else:
        spec = QuerySpec.comm_k(keywords, args.k, args.rmax,
                                algorithm=args.algorithm,
                                aggregate=args.aggregate)
    context = QueryContext()
    start = time.perf_counter()
    results = search.engine.execute(spec, context)
    elapsed = time.perf_counter() - start

    if args.json:
        from repro.service.serialize import dumps, results_to_dict
        print(dumps(results_to_dict(results, dbg=dbg, context=context,
                                    spec=spec,
                                    elapsed_seconds=elapsed),
                    indent=2))
        return 0

    for rank, community in enumerate(results, start=1):
        print(f"#{rank}")
        print(community.describe(dbg))
        print()
    mode = "all" if args.all else f"top-{args.k}"
    print(f"{len(results)} communities ({mode}, Rmax={args.rmax:g}, "
          f"{args.algorithm}) in {elapsed:.2f}s")
    if args.stats:
        print(f"stages: {context.render()}")
    return 0


def _raise_sigterm(signum, frame):
    """Turn SIGTERM into a normal exit so cleanup handlers run."""
    raise SystemExit(0)


def cmd_serve(args) -> int:
    """``serve``: put the engine behind the HTTP/JSON service.

    Binds ``--host:--port`` (port 0 picks an ephemeral one), builds an
    index at ``--radius`` when none was loaded, and serves until
    interrupted. With ``--snapshot`` the engine loads a published
    snapshot (checksum-verified) instead of building anything, and
    ``POST /admin/reload`` hot-swaps to whatever that source's newest
    snapshot is; combined with ``--workers N`` (N > 1) queries execute
    on N worker *processes* sharing that snapshot, so COMM-all
    throughput scales with cores instead of saturating one. A reload
    fans out to every worker behind its in-flight work.
    ``--port-file`` writes ``host port`` after binding so scripts
    (CI smoke tests) can discover an ephemeral port.
    """
    from repro.service import CommunityService

    engine_close = None
    snapshot_mode = getattr(args, "snapshot_mode", "auto")
    result_cache_bytes = int(
        getattr(args, "result_cache_mb", 64) * 1024 * 1024)
    wal = None
    if getattr(args, "wal", None):
        if not getattr(args, "snapshot", None):
            raise ReproError(
                "--wal needs --snapshot: WAL replay folds deltas "
                "onto a published snapshot, not an in-process build")
        from repro.wal import WriteAheadLog

        wal = WriteAheadLog(args.wal, fsync=args.wal_fsync)
        print(f"WAL {wal.path} open (fsync={wal.fsync_policy}, "
              f"lsn={wal.lsn}, {wal.pending_count} pending deltas)",
              file=sys.stderr)
    if getattr(args, "snapshot", None):
        from repro.snapshot.store import locate_snapshot

        path = locate_snapshot(args.snapshot)
        if args.workers > 1:
            # Process tier: N workers, each its own engine over the
            # same snapshot — true multi-core query execution. The
            # admission pool keeps `workers` threads, each blocking
            # on one pool response at a time.
            from repro.parallel import ParallelQueryEngine

            engine = ParallelQueryEngine(
                path, workers=args.workers,
                lease_seconds=args.worker_lease,
                snapshot_mode=snapshot_mode,
                result_cache_bytes=result_cache_bytes,
                wal_path=wal).start()
            engine_close = engine.close
            print(f"started {args.workers} worker processes",
                  file=sys.stderr)
        else:
            from repro.engine.engine import QueryEngine

            engine = QueryEngine.from_snapshot(
                path, mode=snapshot_mode,
                result_cache_bytes=result_cache_bytes,
                wal_path=wal)
        if wal is not None and engine.deltas_applied:
            print(f"replayed {engine.deltas_applied} pending "
                  f"delta(s) through LSN {engine.applied_lsn}",
                  file=sys.stderr)
        dbg = engine.dbg
        resolved = engine.snapshot_mode or "copy"
        loaded_id = (engine.snapshot_id
                     or getattr(engine, "base_snapshot_id", None))
        print(f"loaded snapshot {loaded_id} from {path} "
              f"({resolved} mode)", file=sys.stderr)
        if snapshot_mode != "copy" and resolved == "copy":
            print("warning: snapshot has gzip-compressed sections; "
                  "falling back to copy mode (workers cannot share "
                  "pages). Rebuild without --compress to enable "
                  "mmap.", file=sys.stderr)
    else:
        dbg, search = _resolve_search(args)
        if search.index is None:
            print(f"building index at R={args.radius:g} ...",
                  file=sys.stderr)
            search.build_index(radius=args.radius)
        engine = search.engine
        from repro.engine.results import ResultCache

        engine.results = ResultCache(result_cache_bytes)
    service = CommunityService(
        engine, host=args.host, port=args.port,
        workers=args.workers, queue_depth=args.queue_depth,
        session_ttl=args.session_ttl, max_sessions=args.max_sessions,
        default_deadline=args.deadline,
        snapshot_source=getattr(args, "snapshot", None),
        drain_seconds=args.drain_seconds,
        snapshot_mode=snapshot_mode,
        warm_top=getattr(args, "warm_top", 8),
        wal=wal)
    compactor = None
    if wal is not None and getattr(args, "compact_interval", 0) > 0:
        from repro.service.http import snapshot_store_of
        from repro.snapshot.store import SnapshotStore
        from repro.wal import Compactor

        store_root = snapshot_store_of(args.snapshot)
        if store_root is None:
            raise ReproError(
                "--compact-interval needs --snapshot to point at a "
                "snapshot *store* (compaction publishes new "
                "snapshots into it)")
        compactor = Compactor(
            wal, SnapshotStore(store_root), engine=engine,
            lock=service.ingest_lock,
            interval=args.compact_interval,
            min_deltas=args.compact_min_deltas).start()
        service.compactor = compactor
        print(f"compactor running every "
              f"{args.compact_interval:g}s "
              f"(min {args.compact_min_deltas} deltas)",
              file=sys.stderr)
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(f"{service.host} {service.port}\n")
    print(f"serving {dbg.n} nodes / {dbg.m} edges on {service.url} "
          f"({args.workers} workers, queue {args.queue_depth})")
    # SIGTERM (``kill``, process supervisors) must unwind through the
    # finally block, or a --workers pool would leave orphaned worker
    # processes behind.
    signal.signal(signal.SIGTERM, _raise_sigterm)
    try:
        service.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        print("shutting down", file=sys.stderr)
    finally:
        if compactor is not None:
            compactor.stop()
        service.shutdown()
        if engine_close is not None:
            engine_close()
        if wal is not None:
            wal.close()
    return 0


def cmd_serve_router(args) -> int:
    """``serve-router``: front a shard fleet with the scatter-gather
    router.

    Loads the routing manifest from ``--manifest`` (a partition root
    or the ``routing.json`` file) and fans queries out to the
    ``--shard-url`` backends — one flag per shard, in shard order,
    each value a single URL or a comma-separated replica set
    (``http://a:8420,http://b:8420``) of siblings serving that
    shard's snapshot; each backend is an ordinary ``serve
    --snapshot`` server. ``--async`` serves the event-loop front end
    instead of the thread-per-request one — identical answers,
    different concurrency model. The router itself is stateless:
    run as many replicas as needed over the same manifest.
    """
    from repro.shard import RoutingManifest, RouterService, \
        parse_shard_urls
    from repro.shard.aio import AsyncRouterService

    from pathlib import Path

    manifest = RoutingManifest.load(args.manifest)
    groups = parse_shard_urls(list(args.shard_url))
    if len(groups) != len(manifest.shards):
        print(f"error: the routing manifest names "
              f"{len(manifest.shards)} shards but {len(groups)} "
              f"--shard-url values were supplied; pass exactly one "
              f"--shard-url per shard, in shard order "
              f"(comma-separate replica URLs within one flag)",
              file=sys.stderr)
        return 2
    root = Path(args.manifest)
    if root.is_file():
        root = root.parent
    front_end = (AsyncRouterService if args.use_async
                 else RouterService)
    router = front_end(
        manifest, list(args.shard_url), root=root,
        host=args.host, port=args.port,
        shard_timeout=args.shard_timeout,
        shard_retries=args.retries)
    if args.use_async:
        # The asyncio front end binds inside its own loop; start it
        # on the background thread so the port is known, then block.
        router.start()
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(f"{router.host} {router.port}\n")
    replicas = sum(len(urls) for urls in groups)
    print(f"routing {len(manifest.shards)} shards / {replicas} "
          f"replicas ({manifest.total_nodes} nodes, generation "
          f"{manifest.generation}) on {router.url} "
          f"[{'async' if args.use_async else 'threaded'}]")
    signal.signal(signal.SIGTERM, _raise_sigterm)
    try:
        if args.use_async:
            signal.pause()
        else:
            router.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        print("shutting down", file=sys.stderr)
    finally:
        router.shutdown()
    return 0


def cmd_warm(args) -> int:
    """``warm``: mine a live service's query log, replay the head.

    Fetches ``GET /admin/querylog``, runs the offline miner
    (:func:`repro.analysis.hot_keys.hot_keys`) over it, and replays
    the ``--top`` hottest specs as ordinary ``POST /query`` calls —
    each one either hits the result cache (already warm; free) or
    computes the answer into it. Run it after a deploy or reload to
    pre-pay the workload's head before clients arrive; the service
    also does this itself after ``/admin/reload`` (``--warm-top``),
    so this command is for external orchestration (cron, deploy
    hooks) and for warming beyond the server's own default.
    """
    import json as _json

    from repro.analysis.hot_keys import hot_keys
    from repro.service.client import ServiceClient

    with ServiceClient(args.url, timeout=args.timeout) as client:
        log = client.request("GET", "/admin/querylog", None)
        rows = hot_keys(log, top=args.top)
        report = []
        for row in rows:
            response = client.request("POST", "/query", row["query"])
            report.append({
                "key": row["key"],
                "count": row["count"],
                "cached": bool(response.get("cached")),
                "answers": response.get("count", 0),
            })
    warmed = sum(1 for row in report if not row["cached"])
    if args.json:
        print(_json.dumps({"replayed": len(report),
                           "computed": warmed,
                           "already_warm": len(report) - warmed,
                           "queries": report},
                          indent=2, sort_keys=True))
    else:
        for row in report:
            state = "warm" if row["cached"] else "computed"
            print(f"{state:9s} x{row['count']:<5d} {row['key']}")
        print(f"replayed {len(report)} hot specs "
              f"({warmed} computed, {len(report) - warmed} already "
              f"warm)")
    return 0


def cmd_compact(args) -> int:
    """``compact``: fold a WAL's pending deltas into a snapshot.

    The offline form of the background compactor: load the WAL's base
    snapshot from the store, apply the pending deltas in LSN order,
    publish the folded artifact (staged + atomic), verify it, append
    a ``checkpoint`` record, and truncate the folded prefix. Run it
    while the service is stopped, or against a copy — the serving
    path runs the same machinery in-process via
    ``serve --compact-interval``.
    """
    from repro.snapshot.store import SnapshotStore
    from repro.wal import Compactor, WriteAheadLog

    wal = WriteAheadLog(args.wal, fsync="always")
    try:
        pending = wal.pending_count
        if pending < args.min_deltas:
            print(f"{pending} pending delta(s), below "
                  f"--min-deltas {args.min_deltas}; nothing to do")
            return 0
        start = time.perf_counter()
        compactor = Compactor(wal, SnapshotStore(args.store),
                              min_deltas=args.min_deltas)
        snapshot_id = compactor.compact_once()
        elapsed = time.perf_counter() - start
        print(f"folded {compactor.folded} delta(s) into "
              f"{snapshot_id} ({elapsed:.1f}s); WAL now at "
              f"lsn={wal.lsn} with {wal.pending_count} pending")
    finally:
        wal.close()
    return 0


def cmd_snapshot_build(args) -> int:
    """``snapshot build``: build a dataset's index and publish it.

    Generation and index construction go through the same
    :func:`repro.bench.workloads.load_dataset` path the benchmark
    harness uses, so a published artifact is exactly what the
    benchmarks measure. ``fig4`` (the paper's running example) is
    built directly — it has no scale knob.
    """
    from repro.snapshot.store import SnapshotStore

    start = time.perf_counter()
    if args.dataset == "fig4":
        from repro.datasets.paper_example import figure4_graph
        from repro.text.inverted_index import CommunityIndex

        dbg = figure4_graph()
        index = CommunityIndex.build(dbg, args.radius)
        snapshot = SnapshotStore(args.store).publish(
            dbg, index,
            provenance={"dataset": "fig4",
                        "index_radius": args.radius,
                        "builder": "repro.cli"},
            compress=args.compress)
    else:
        from repro.bench.workloads import load_dataset, \
            publish_snapshot

        bundle = load_dataset(args.dataset, args.scale)
        snapshot = publish_snapshot(args.store, bundle,
                                    compress=args.compress)
    elapsed = time.perf_counter() - start
    counts = snapshot.counts
    print(f"published {snapshot.id} -> {snapshot.path}")
    print(f"  {counts['nodes']} nodes, {counts['edges']} edges, "
          f"{counts['node_postings']} node postings, "
          f"{counts['edge_postings']} edge postings "
          f"({elapsed:.1f}s)")
    return 0


def cmd_snapshot_partition(args) -> int:
    """``snapshot partition``: split a snapshot into a shard fleet.

    Reads the source snapshot (a snapshot directory or a store root),
    partitions it into ``--shards`` owned regions plus halos, publishes
    each shard snapshot under ``<out>/shards/NN`` and writes the
    routing manifest ``<out>/routing.json`` (see :mod:`repro.shard`).
    """
    from repro.shard import partition_snapshot

    start = time.perf_counter()
    manifest, path = partition_snapshot(
        args.snapshot, args.out, args.shards,
        halo_radius=args.halo_radius, compress=args.compress)
    elapsed = time.perf_counter() - start
    print(f"partitioned {manifest.source_snapshot} into "
          f"{len(manifest.shards)} shards "
          f"(generation {manifest.generation}, {elapsed:.1f}s)")
    print(f"routing manifest -> {path}")
    for entry in manifest.shards:
        counts = entry.counts
        print(f"  shard {entry.shard_id:02d}: {entry.snapshot_id}  "
              f"{entry.owned_nodes} owned / "
              f"{len(entry.node_map)} total nodes, "
              f"{counts.get('vocab', 0)} keywords -> {entry.store}")
    return 0


def _inspect_routing(path, as_json: bool) -> int:
    """Render a routing manifest (the shard table) for ``snapshot
    inspect`` pointed at a partition root."""
    import json as _json

    from repro.shard import RoutingManifest

    manifest = RoutingManifest.load(path)
    if as_json:
        print(_json.dumps(manifest.to_dict(), indent=2,
                          sort_keys=True))
        return 0
    print(f"routing    {manifest.generation} "
          f"({len(manifest.shards)} shards)")
    print(f"created    {manifest.created_at or '-'}")
    print(f"source     {manifest.source_snapshot or '-'}")
    print(f"radius     R={manifest.index_radius:g}, "
          f"halo={manifest.halo_radius:g}")
    print(f"nodes      {manifest.total_nodes} global")
    for entry in manifest.shards:
        counts = entry.counts
        mmap = "mmap" if entry.mappable else "copy"
        print(f"shard {entry.shard_id:02d}   {entry.snapshot_id}  "
              f"{entry.owned_nodes} owned / "
              f"{len(entry.node_map)} nodes, "
              f"{counts.get('vocab', 0)} keywords, {mmap}  "
              f"-> {entry.store}")
    return 0


def cmd_snapshot_inspect(args) -> int:
    """``snapshot inspect``: print a snapshot's manifest summary.

    Pointed at a partition root (or ``routing.json`` itself), prints
    the shard table instead of a single snapshot's sections.
    """
    import json as _json

    from repro.shard import is_routing_root
    from repro.snapshot.snapshot import (read_manifest,
                                         snapshot_is_mappable)
    from repro.snapshot.store import locate_snapshot

    if is_routing_root(args.path):
        return _inspect_routing(args.path, args.json)
    manifest = read_manifest(locate_snapshot(args.path))
    if args.json:
        payload = dict(manifest)
        payload["mmap"] = snapshot_is_mappable(manifest)
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    counts = manifest["counts"]
    print(f"snapshot   {manifest['id']}")
    print(f"created    {manifest['created_at']}")
    print(f"provenance {manifest.get('provenance') or '-'}")
    print(f"counts     {counts['nodes']} nodes, {counts['edges']} "
          f"edges, {counts['vocab']} keywords, "
          f"{counts['node_postings']}/{counts['edge_postings']} "
          f"node/edge postings")
    total = 0
    for name in sorted(manifest["sections"]):
        section = manifest["sections"][name]
        total += section["bytes"]
        gz = " (gzip)" if section.get("gzip") else ""
        print(f"section    {name}: {section['file']} "
              f"{section['bytes']} bytes "
              f"sha256={section['sha256'][:12]}...{gz}")
    if snapshot_is_mappable(manifest):
        print(f"mmap       yes ({total} bytes shareable across "
              f"workers)")
    else:
        print("mmap       no (gzip-compressed sections; rebuild "
              "without --compress to serve with --snapshot-mode "
              "mmap)")
    return 0


def cmd_snapshot_verify(args) -> int:
    """``snapshot verify``: checksum + decode every section."""
    from repro.snapshot.snapshot import verify_snapshot
    from repro.snapshot.store import locate_snapshot

    path = locate_snapshot(args.path)
    manifest = verify_snapshot(path)
    print(f"ok: {manifest['id']} at {path} verified "
          f"({len(manifest['sections'])} sections)")
    return 0


def cmd_snapshot_list(args) -> int:
    """``snapshot list``: published snapshots, newest first."""
    from repro.snapshot.store import SnapshotStore

    manifests = SnapshotStore(args.store).list()
    if not manifests:
        print("(empty store)")
        return 0
    for manifest in manifests:
        marker = "*" if manifest["latest"] else " "
        counts = manifest["counts"]
        dataset = manifest.get("provenance", {}).get("dataset", "-")
        print(f"{marker} {manifest['id']}  {manifest['created_at']}  "
              f"{dataset:>6}  {counts['nodes']} nodes / "
              f"{counts['edges']} edges")
    return 0


def cmd_snapshot_prune(args) -> int:
    """``snapshot prune``: drop all but the newest snapshots."""
    from repro.snapshot.store import SnapshotStore

    removed = SnapshotStore(args.store).prune(
        keep=args.keep, wal=getattr(args, "wal", None))
    for snapshot_id in removed:
        print(f"removed {snapshot_id}")
    print(f"{len(removed)} snapshot(s) pruned")
    return 0


def cmd_snapshot_push(args) -> int:
    """``snapshot push``: ship a snapshot to a remote box over HTTP.

    Drives the cross-box transfer protocol (begin → checksum-verified
    section PUTs → atomic commit) against a service started with a
    snapshot store; re-pushing content the remote already holds is
    detected by the content-addressed id and costs one round trip.
    With ``--reload`` the remote service is then swapped onto the
    pushed snapshot by id — deploy to a box that shares no
    filesystem with the build host.
    """
    from repro.service.client import ServiceClient
    from repro.service.http import push_snapshot
    from repro.snapshot.store import locate_snapshot

    snapshot_dir = locate_snapshot(args.snapshot)
    with ServiceClient(args.url, timeout=args.timeout) as client:
        reply = push_snapshot(client, snapshot_dir)
        snapshot_id = reply["snapshot"]
        if reply.get("complete"):
            print(f"{snapshot_id} already on {args.url} "
                  f"(content match; nothing sent)")
        else:
            print(f"pushed {snapshot_id} -> {args.url}")
        if args.reload_after:
            adopted = client.admin_reload(snapshot=snapshot_id)
            print(f"reloaded {args.url} onto "
                  f"{adopted.get('snapshot')} "
                  f"(generation {adopted.get('generation')})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Keyword community search over relational "
                    "database graphs (Qin et al., ICDE 2009).")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="generate and save a demo "
                                         "graph and/or index")
    build.add_argument("--dataset", required=True,
                       choices=("dblp", "imdb", "fig4"))
    build.add_argument("--out-graph", help="write the graph here "
                                           "(.json or .json.gz)")
    build.add_argument("--out-index", help="write the index here")
    build.add_argument("--radius", type=float, default=8.0,
                       help="index radius R (max Rmax; default 8)")
    build.set_defaults(func=cmd_build)

    query = sub.add_parser("query", help="run a community query")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="a saved graph file")
    source.add_argument("--dataset", choices=("dblp", "imdb", "fig4"),
                        help="generate a built-in dataset instead")
    query.add_argument("--index", help="a saved index file")
    query.add_argument("--keywords", required=True,
                       help="comma-separated query keywords")
    query.add_argument("--rmax", type=float, required=True,
                       help="community radius Rmax")
    query.add_argument("--k", type=int, default=10,
                       help="top-k (default 10)")
    query.add_argument("--all", action="store_true",
                       help="enumerate all communities instead of "
                            "top-k")
    query.add_argument("--algorithm", default="pd",
                       choices=("pd", "bu", "td", "naive"))
    query.add_argument("--aggregate", default="sum",
                       choices=("sum", "max"))
    query.add_argument("--stats", action="store_true",
                       help="print per-stage engine instrumentation "
                            "(timings, cache traffic) after the "
                            "answers")
    query.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON (same shape "
                            "as the HTTP service's POST /query)")
    query.set_defaults(func=cmd_query)

    serve = sub.add_parser("serve", help="serve queries over HTTP "
                                         "(JSON API + /metrics)")
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="a saved graph file")
    source.add_argument("--dataset", choices=("dblp", "imdb", "fig4"),
                        help="generate a built-in dataset instead")
    source.add_argument("--snapshot",
                        help="serve a published snapshot (a snapshot "
                             "directory or a store root, whose "
                             "'latest' is used); enables POST "
                             "/admin/reload")
    serve.add_argument("--snapshot-mode", dest="snapshot_mode",
                       choices=("auto", "mmap", "copy"),
                       default="auto",
                       help="how to materialize the snapshot: 'mmap' "
                            "maps the uncompressed sections as "
                            "read-only views shared by all workers "
                            "through the page cache, 'copy' "
                            "deserializes private objects, 'auto' "
                            "(default) maps when the artifact allows "
                            "it and warns on fallback")
    serve.add_argument("--index", help="a saved index file")
    serve.add_argument("--radius", type=float, default=8.0,
                       help="index radius R when building in-process "
                            "(default 8)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8420,
                       help="port to bind (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=4,
                       help="concurrent query executions (default 4); "
                            "with --snapshot and N > 1, N worker "
                            "*processes* are started so queries use "
                            "N cores (otherwise threads in-process)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       dest="queue_depth",
                       help="admitted-but-waiting requests before "
                            "shedding with 429 (default 16)")
    serve.add_argument("--session-ttl", type=float, default=300.0,
                       dest="session_ttl",
                       help="idle seconds before a session lease "
                            "expires (default 300)")
    serve.add_argument("--max-sessions", type=int, default=64,
                       dest="max_sessions",
                       help="concurrent session leases (default 64)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds "
                            "(none by default)")
    serve.add_argument("--port-file", default=None,
                       help="write 'host port' here after binding "
                            "(for scripts using an ephemeral port)")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       dest="drain_seconds",
                       help="graceful-shutdown budget: how long "
                            "SIGTERM/SIGINT lets in-flight requests "
                            "finish before hard teardown (default 5)")
    serve.add_argument("--worker-lease", type=float, default=120.0,
                       dest="worker_lease",
                       help="per-request watchdog lease for pool "
                            "workers in seconds; a worker silent "
                            "past this is killed and respawned "
                            "(default 120)")
    serve.add_argument("--result-cache-mb", type=float, default=64.0,
                       dest="result_cache_mb",
                       help="result-cache budget in MiB per engine "
                            "(LRU by serialized bytes; 0 disables "
                            "the cache; default 64)")
    serve.add_argument("--warm-top", type=int, default=8,
                       dest="warm_top",
                       help="after POST /admin/reload adopts a new "
                            "generation, replay this many of the "
                            "query log's hottest specs into the "
                            "fresh result cache (0 disables; "
                            "default 8)")
    serve.add_argument("--wal", default=None,
                       help="durable delta write-ahead log file "
                            "(requires --snapshot): POST /admin/delta "
                            "appends here before applying, and "
                            "startup replays pending deltas so a "
                            "crash loses at most the unacknowledged "
                            "tail")
    serve.add_argument("--wal-fsync", dest="wal_fsync",
                       choices=("always", "batch", "off"),
                       default="always",
                       help="WAL durability policy: 'always' fsyncs "
                            "per delta (power-loss safe), 'batch' "
                            "fsyncs every few appends, 'off' only "
                            "flushes (still survives kill -9, not "
                            "power loss); default always")
    serve.add_argument("--compact-interval", type=float, default=0.0,
                       dest="compact_interval",
                       help="seconds between background WAL "
                            "compactions into the snapshot store "
                            "(0 disables, the default; needs --wal "
                            "and a store root --snapshot)")
    serve.add_argument("--compact-min-deltas", type=int, default=1,
                       dest="compact_min_deltas",
                       help="skip a compaction cycle when fewer "
                            "deltas are pending (default 1)")
    serve.set_defaults(func=cmd_serve)

    compact = sub.add_parser(
        "compact",
        help="fold a delta WAL's pending records into a freshly "
             "published snapshot (offline compaction)")
    compact.add_argument("--wal", required=True,
                         help="the delta WAL file to fold")
    compact.add_argument("--store", required=True,
                         help="snapshot store holding the WAL's base "
                              "snapshot; the folded snapshot is "
                              "published here")
    compact.add_argument("--min-deltas", type=int, default=1,
                         dest="min_deltas",
                         help="do nothing when fewer deltas are "
                              "pending (default 1)")
    compact.set_defaults(func=cmd_compact)

    warm = sub.add_parser(
        "warm",
        help="mine a running service's query log and replay the "
             "hottest specs to warm its result cache")
    warm.add_argument("--url", required=True,
                      help="base URL of the service to warm")
    warm.add_argument("--top", type=int, default=8,
                      help="how many of the hottest specs to replay "
                           "(default 8)")
    warm.add_argument("--timeout", type=float, default=30.0,
                      help="per-request timeout in seconds "
                           "(default 30)")
    warm.add_argument("--json", action="store_true",
                      help="emit a machine-readable warming report")
    warm.set_defaults(func=cmd_warm)

    router = sub.add_parser(
        "serve-router",
        help="front a partitioned shard fleet with the stateless "
             "scatter-gather router")
    router.add_argument("--manifest", required=True,
                        help="partition root (or routing.json) "
                             "written by 'snapshot partition'")
    router.add_argument("--shard-url", action="append", required=True,
                        dest="shard_url",
                        help="one value per shard, in shard order "
                             "(repeat the flag); each value is a "
                             "backend URL or a comma-separated "
                             "replica set of sibling URLs serving "
                             "the same shard snapshot, e.g. "
                             "http://a:8420,http://b:8420")
    router.add_argument("--async", action="store_true",
                        dest="use_async",
                        help="serve the asyncio event-loop front "
                             "end instead of the threaded one "
                             "(identical answers)")
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8421,
                        help="port to bind (0 = ephemeral; "
                             "default 8421)")
    router.add_argument("--port-file", default=None,
                        help="write 'host port' here after binding")
    router.add_argument("--shard-timeout", type=float, default=10.0,
                        dest="shard_timeout",
                        help="per-shard fan-out socket timeout in "
                             "seconds (default 10); a slower shard "
                             "degrades the answer to partial")
    router.add_argument("--retries", type=int, default=2,
                        help="idempotent retry budget per shard leg "
                             "(default 2)")
    router.set_defaults(func=cmd_serve_router)

    snapshot = sub.add_parser(
        "snapshot", help="build / inspect / verify / list / prune "
                         "immutable snapshot artifacts")
    snapshot_sub = snapshot.add_subparsers(dest="snapshot_command",
                                           required=True)

    snap_build = snapshot_sub.add_parser(
        "build", help="build a dataset's graph + index and publish "
                      "them into a snapshot store")
    snap_build.add_argument("--dataset", required=True,
                            choices=("dblp", "imdb", "fig4"))
    snap_build.add_argument("--scale", default="bench",
                            choices=("tiny", "bench", "paper"),
                            help="dataset scale (ignored for fig4; "
                                 "default bench)")
    snap_build.add_argument("--store", required=True,
                            help="snapshot store directory (created "
                                 "if missing)")
    snap_build.add_argument("--radius", type=float, default=10.0,
                            help="index radius R for fig4 (dblp/imdb "
                                 "use their paper radius)")
    snap_build.add_argument("--compress", action="store_true",
                            help="gzip the section payloads")
    snap_build.set_defaults(func=cmd_snapshot_build)

    snap_partition = snapshot_sub.add_parser(
        "partition", help="split a published snapshot into K shard "
                          "snapshots + a routing manifest")
    snap_partition.add_argument("--snapshot", required=True,
                                help="source snapshot directory or "
                                     "store root")
    snap_partition.add_argument("--out", required=True,
                                help="partition root to write "
                                     "(shards/NN stores + "
                                     "routing.json)")
    snap_partition.add_argument("--shards", type=int, required=True,
                                help="number of shards K")
    snap_partition.add_argument("--halo-radius", type=float,
                                default=None, dest="halo_radius",
                                help="undirected halo distance "
                                     "(default 3R, the proven exact "
                                     "bound; smaller risks wrong "
                                     "answers)")
    snap_partition.add_argument("--compress", action="store_true",
                                help="gzip the shard section "
                                     "payloads")
    snap_partition.set_defaults(func=cmd_snapshot_partition)

    snap_inspect = snapshot_sub.add_parser(
        "inspect", help="print a snapshot's manifest (or, pointed at "
                        "a partition root, the shard routing table)")
    snap_inspect.add_argument("path", help="snapshot directory or "
                                           "store root")
    snap_inspect.add_argument("--json", action="store_true",
                              help="print the raw manifest JSON")
    snap_inspect.set_defaults(func=cmd_snapshot_inspect)

    snap_verify = snapshot_sub.add_parser(
        "verify", help="recompute every section checksum and decode "
                       "the snapshot")
    snap_verify.add_argument("path", help="snapshot directory or "
                                          "store root")
    snap_verify.set_defaults(func=cmd_snapshot_verify)

    snap_list = snapshot_sub.add_parser(
        "list", help="list a store's published snapshots")
    snap_list.add_argument("store", help="snapshot store directory")
    snap_list.set_defaults(func=cmd_snapshot_list)

    snap_prune = snapshot_sub.add_parser(
        "prune", help="delete all but the newest snapshots")
    snap_prune.add_argument("store", help="snapshot store directory")
    snap_prune.add_argument("--keep", type=int, default=2,
                            help="snapshots to retain (default 2)")
    snap_prune.add_argument("--wal", default=None,
                            help="delta WAL whose base snapshot (and "
                                 "pending-delta bases) must never be "
                                 "pruned, whatever --keep says")
    snap_prune.set_defaults(func=cmd_snapshot_prune)

    snap_push = snapshot_sub.add_parser(
        "push", help="ship a local snapshot to a remote service's "
                     "store over HTTP (no shared filesystem)")
    snap_push.add_argument("--snapshot", required=True,
                           help="local snapshot directory or store "
                                "root (LATEST is pushed)")
    snap_push.add_argument("--url", required=True,
                           help="base URL of the receiving service "
                                "(serve --snapshot <store>)")
    snap_push.add_argument("--reload", action="store_true",
                           dest="reload_after",
                           help="after the push commits, reload the "
                                "service onto the pushed snapshot")
    snap_push.add_argument("--timeout", type=float, default=60.0,
                           help="per-request socket timeout in "
                                "seconds (default 60)")
    snap_push.set_defaults(func=cmd_snapshot_push)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
