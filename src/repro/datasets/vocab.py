"""Benchmark vocabulary with exact keyword frequencies (KWF).

The paper's Exp-1/Exp-2 sweep *keyword frequency* — the fraction of
tuples containing a query keyword — over {.0003, .0006, .0009, .0012,
.0015}, using hand-picked real words (Tables III and V). A synthetic
dataset can do better: we *plant* keywords at exactly the target
frequency, so the KWF axis of every figure is controlled precisely.

Planted keywords are named ``kw<band><letter>`` (e.g. ``kw0009c``);
each band carries enough keywords to draw an ``l``-keyword query with
``l`` up to 6, mirroring the paper's lists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError

#: The paper's KWF sweep values (both datasets use the same bands).
KWF_VALUES: Tuple[float, ...] = (0.0003, 0.0006, 0.0009, 0.0012, 0.0015)

#: The paper's default band (Tables II and IV).
DEFAULT_KWF: float = 0.0009

#: Keywords per band; 6 supports the paper's l sweep up to 6.
KEYWORDS_PER_BAND: int = 6


@dataclass(frozen=True)
class KeywordBand:
    """One KWF level and its planted keyword names."""

    kwf: float
    keywords: Tuple[str, ...]


def band_name(kwf: float) -> str:
    """Stable name fragment for a KWF value: 0.0009 -> ``"0009"``."""
    return f"{round(kwf * 10000):04d}"


def make_bands(kwf_values: Sequence[float] = KWF_VALUES,
               per_band: int = KEYWORDS_PER_BAND) -> List[KeywordBand]:
    """The benchmark bands: ``kw0003a..f``, ``kw0006a..f``, …"""
    bands = []
    for kwf in kwf_values:
        keywords = tuple(
            f"kw{band_name(kwf)}{chr(ord('a') + i)}" for i in range(per_band))
        bands.append(KeywordBand(kwf, keywords))
    return bands


#: The library-wide benchmark bands.
BENCH_BANDS: List[KeywordBand] = make_bands()


def band_for(kwf: float,
             bands: Sequence[KeywordBand] = None) -> KeywordBand:
    """The band with the given KWF value."""
    for band in (bands if bands is not None else BENCH_BANDS):
        if abs(band.kwf - kwf) < 1e-12:
            return band
    raise QueryError(f"no keyword band with KWF={kwf}")


def query_keywords(kwf: float, l: int,
                   bands: Sequence[KeywordBand] = None) -> List[str]:
    """An ``l``-keyword query drawn from one band (paper workload)."""
    band = band_for(kwf, bands)
    if l < 1 or l > len(band.keywords):
        raise QueryError(
            f"l={l} out of range for band KWF={kwf} with "
            f"{len(band.keywords)} keywords")
    return list(band.keywords[:l])


def plan_plants(rng: random.Random, total_tuples: int, slots: int,
                bands: Sequence[KeywordBand] = None
                ) -> Dict[str, List[int]]:
    """Assign each planted keyword to slot indices.

    ``slots`` is the number of tuples eligible to carry text (e.g.
    paper titles); ``total_tuples`` is the whole database size the KWF
    is measured against. Each keyword lands on
    ``round(kwf * total_tuples)`` distinct slots.
    """
    if slots <= 0 or total_tuples <= 0:
        raise QueryError("plant targets need positive sizes")
    plan: Dict[str, List[int]] = {}
    for band in (bands if bands is not None else BENCH_BANDS):
        occurrences = max(1, round(band.kwf * total_tuples))
        if occurrences > slots:
            raise QueryError(
                f"cannot plant {occurrences} occurrences of a "
                f"KWF={band.kwf} keyword into {slots} slots; increase "
                f"the dataset scale")
        for keyword in band.keywords:
            plan[keyword] = sorted(rng.sample(range(slots), occurrences))
    return plan


def plan_plants_clustered(rng: random.Random, total_tuples: int,
                          slots: int,
                          bands: Sequence[KeywordBand] = None,
                          cluster_size: int = 6,
                          spread: float = None,
                          center_grid: Optional[int] = None
                          ) -> Dict[str, List[int]]:
    """Clustered planting: keywords of a band share cluster centers.

    Real query keywords are common words that co-occur in *topically
    related* tuples — related papers share authors and citations, so
    keyword-bearing tuples sit close in the database graph. Uniform
    planting destroys that (no centers ever reach ``l`` keyword nodes
    within ``Rmax``), so the benchmark datasets plant each band's
    keywords around shared cluster centers in slot-id space, which the
    generators keep correlated with graph locality.

    Each keyword still lands on exactly ``round(kwf * total_tuples)``
    distinct slots, so KWF stays exact.

    ``center_grid`` optionally snaps cluster centers to multiples of a
    stride — generators pass the stride of their structural hubs
    (e.g. prolific authors) so every keyword cluster is anchored at a
    hub, the way topics anchor at research groups.
    """
    if slots <= 0 or total_tuples <= 0:
        raise QueryError("plant targets need positive sizes")
    if spread is None:
        spread = max(3.0, slots * 0.0015)
    plan: Dict[str, List[int]] = {}
    for band in (bands if bands is not None else BENCH_BANDS):
        occurrences = max(1, round(band.kwf * total_tuples))
        if occurrences > slots:
            raise QueryError(
                f"cannot plant {occurrences} occurrences of a "
                f"KWF={band.kwf} keyword into {slots} slots; increase "
                f"the dataset scale")
        n_clusters = max(1, occurrences // cluster_size)
        if center_grid and center_grid < slots:
            centers = [
                rng.randrange(slots // center_grid) * center_grid
                for _ in range(n_clusters)]
        else:
            centers = [rng.randrange(slots) for _ in range(n_clusters)]
        band_used: set = set()
        for keyword in band.keywords:
            chosen: set = set()
            attempts = 0
            while len(chosen) < occurrences and attempts < 400 * occurrences:
                attempts += 1
                center = centers[rng.randrange(n_clusters)]
                slot = int(round(center + rng.gauss(0.0, spread)))
                # Prefer slots no sibling keyword occupies: query
                # keywords co-occur in *neighborhoods*, rarely in the
                # same title (otherwise every best core is one node
                # with cost 0). Allow collisions only as a last resort.
                if 0 <= slot < slots and slot not in chosen \
                        and (slot not in band_used
                             or attempts > 200 * occurrences):
                    chosen.add(slot)
            while len(chosen) < occurrences:  # degenerate fallback
                chosen.add(rng.randrange(slots))
            band_used |= chosen
            plan[keyword] = sorted(chosen)
    return plan


#: Filler vocabulary for generated titles — common data-ish words so
#: the text looks like titles, none colliding with planted keywords.
FILLER_WORDS: Tuple[str, ...] = (
    "analysis", "approach", "data", "design", "efficient", "evaluation",
    "framework", "improved", "learning", "method", "model", "novel",
    "performance", "processing", "results", "search", "study", "system",
    "theory", "toward", "using",
)


def filler_title(rng: random.Random, words: int = 4) -> str:
    """A short filler title."""
    return " ".join(rng.choice(FILLER_WORDS) for _ in range(words))
