"""Synthetic IMDB/MovieLens dataset (paper Exp-1 substrate).

Schema follows the paper's IMDB (the MovieLens 1M dump it links):

* ``Users(UserID, Gender, Age, Occupation, ZipCode)``,
  ``Movies(MovieID, Title, Genres)``,
  ``Ratings(UserID, MovieID, Rating, Timestamp)``;
* the defining property the paper leans on is *density*: each user
  rates ~165 movies and each movie is rated by ~257 users — two orders
  denser than DBLP — which is why IMDB needs ``Rmax = 11`` by default
  and why multi-center communities are common there. The generator
  keeps the ratings table dominating the tuple count and both
  per-entity averages high (scaled to laptop size; DESIGN.md §3);
* benchmark keywords are planted into movie titles at exact KWF.

Popularity is preferentially attached: blockbuster movies collect a
large share of ratings, matching MovieLens' skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets import vocab
from repro.graph.database_graph import DatabaseGraph
from repro.rdb.database import Database
from repro.rdb.graph_builder import build_database_graph
from repro.rdb.schema import Column, ForeignKey, TableSchema

GENRES = ("action", "comedy", "drama", "horror", "romance", "scifi",
          "thriller", "western")
OCCUPATIONS = ("academic", "artist", "clerical", "engineer", "farmer",
               "lawyer", "programmer", "retired", "sales", "scientist")


@dataclass(frozen=True)
class IMDBConfig:
    """Scale knobs; ratings dominate, as in MovieLens."""

    n_users: int = 600
    n_movies: int = 400
    n_ratings: int = 24_000
    seed: int = 1997
    title_words: int = 3

    @property
    def total_tuples_estimate(self) -> int:
        """Approximate total tuples across the three tables."""
        return self.n_users + self.n_movies + self.n_ratings

    @property
    def ratings_per_user(self) -> float:
        """Density knob: average ratings per user."""
        return self.n_ratings / self.n_users

    @property
    def ratings_per_movie(self) -> float:
        """Density knob: average ratings per movie."""
        return self.n_ratings / self.n_movies

    @classmethod
    def tiny(cls, seed: int = 1997) -> "IMDBConfig":
        """A few hundred tuples — for tests."""
        return cls(n_users=30, n_movies=20, n_ratings=400, seed=seed)


def imdb_schema(db: Database) -> None:
    """Create the three IMDB tables in ``db``."""
    db.create_table(TableSchema(
        "Users",
        [Column("UserID", int), Column("Gender", str), Column("Age", int),
         Column("Occupation", str), Column("ZipCode", str)],
        "UserID",
        text_columns=["Occupation"],
    ))
    db.create_table(TableSchema(
        "Movies",
        [Column("MovieID", int), Column("Title", str),
         Column("Genres", str)],
        "MovieID",
        text_columns=["Title", "Genres"],
    ))
    db.create_table(TableSchema(
        "Ratings",
        [Column("UserID", int), Column("MovieID", int),
         Column("Rating", int), Column("Timestamp", int)],
        ("UserID", "MovieID"),
        [ForeignKey("UserID", "Users"), ForeignKey("MovieID", "Movies")],
    ))


def generate_imdb(config: IMDBConfig = IMDBConfig()) -> Database:
    """Build the synthetic IMDB database."""
    rng = random.Random(config.seed)
    db = Database("imdb")
    imdb_schema(db)

    total = config.total_tuples_estimate
    # Clustered planting + taste locality below: keyword movies share
    # audiences, as genre words in real titles do.
    plan = vocab.plan_plants_clustered(rng, total, config.n_movies)
    planted: Dict[int, List[str]] = {}
    for keyword, slots in plan.items():
        for slot in slots:
            planted.setdefault(slot, []).append(keyword)

    for uid in range(config.n_users):
        db.insert("Users", {
            "UserID": uid,
            "Gender": rng.choice("MF"),
            "Age": rng.choice((18, 25, 35, 45, 56)),
            "Occupation": rng.choice(OCCUPATIONS),
            "ZipCode": f"{rng.randrange(10000, 99999)}",
        })

    for mid in range(config.n_movies):
        title = vocab.filler_title(rng, config.title_words)
        extras = planted.get(mid)
        if extras:
            title = f"{title} {' '.join(extras)}"
        db.insert("Movies", {
            "MovieID": mid,
            "Title": title,
            "Genres": " ".join(
                rng.sample(GENRES, rng.randrange(1, 3))),
        })

    # Ratings. Each user rates mostly around a taste center in movie-id
    # space (genre locality — what connects same-keyword movies through
    # shared audiences) plus a blockbuster tail: 25% of ratings go to
    # globally popular movies (min of two uniforms skews low ids), the
    # preferential skew MovieLens shows. (UserID, MovieID) unique.
    n_users, n_movies = config.n_users, config.n_movies
    taste_spread = max(2.0, n_movies * 0.02)
    seen: set = set()
    inserted = 0
    attempts = 0
    while inserted < config.n_ratings \
            and attempts < 40 * config.n_ratings:
        attempts += 1
        uid = rng.randrange(n_users)
        if rng.random() < 0.25:
            mid = min(rng.randrange(n_movies), rng.randrange(n_movies))
        else:
            taste = uid * n_movies // n_users
            mid = int(round(taste + rng.gauss(0.0, taste_spread)))
            if not 0 <= mid < n_movies:
                continue
        if (uid, mid) in seen:
            continue
        seen.add((uid, mid))
        db.insert("Ratings", {
            "UserID": uid,
            "MovieID": mid,
            "Rating": rng.randrange(1, 6),
            "Timestamp": 960_000_000 + inserted,
        })
        inserted += 1
    return db


def imdb_graph(config: IMDBConfig = IMDBConfig()
               ) -> Tuple[Database, DatabaseGraph]:
    """Generate IMDB and materialize its database graph."""
    db = generate_imdb(config)
    dbg = build_database_graph(db, label_columns={"Movies": "Title"})
    return db, dbg
