"""Synthetic DBLP dataset (paper Exp-2 substrate).

Schema and shape follow the paper exactly:

* ``Author(Aid, Name)``, ``Paper(Pid, Title, Other)``,
  ``Write(Aid, Pid, Remark)``, ``Cite(Pid1, Pid2)``;
* table-size ratios match DBLP 2008 (597K / 986K / 2426K / 112K), so
  every author writes ~4.06 papers and every paper has ~2.46 authors —
  the two averages the paper quotes to explain why DBLP needs only
  ``Rmax = 6``;
* authorship uses preferential attachment, giving the skewed
  productivity distribution of real bibliographies;
* benchmark keywords are *planted* into paper titles at exact KWF
  (see :mod:`repro.datasets.vocab`); the rest of each title is filler.

The real dump (4.12M tuples) is far beyond what pure-Python Dijkstra
can sweep in benchmark time, so the default scale is ~40K tuples with
identical topology statistics — DESIGN.md §3 records the substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets import vocab
from repro.graph.database_graph import DatabaseGraph
from repro.rdb.database import Database
from repro.rdb.graph_builder import build_database_graph
from repro.rdb.schema import Column, ForeignKey, TableSchema

#: DBLP 2008 ratios from the paper: papers, writes, cites per author.
PAPERS_PER_AUTHOR = 986_000 / 597_000
WRITES_PER_PAPER = 2_426_000 / 986_000
CITES_PER_PAPER = 112_000 / 986_000


@dataclass(frozen=True)
class DBLPConfig:
    """Scale knobs; defaults keep the paper's table-size ratios."""

    n_authors: int = 6_000
    seed: int = 2009
    title_words: int = 4

    @property
    def n_papers(self) -> int:
        """Paper count at the paper's papers-per-author ratio."""
        return round(self.n_authors * PAPERS_PER_AUTHOR)

    @property
    def n_writes_target(self) -> int:
        """Target Write rows (2.46 authors per paper)."""
        return round(self.n_papers * WRITES_PER_PAPER)

    @property
    def n_cites_target(self) -> int:
        """Target Cite rows (DBLP 2008 citation density)."""
        return round(self.n_papers * CITES_PER_PAPER)

    @property
    def total_tuples_estimate(self) -> int:
        """Approximate total tuples across the four tables."""
        return (self.n_authors + self.n_papers
                + self.n_writes_target + self.n_cites_target)

    @classmethod
    def tiny(cls, seed: int = 2009) -> "DBLPConfig":
        """A few hundred tuples — for tests."""
        return cls(n_authors=60, seed=seed)


def dblp_schema(db: Database) -> None:
    """Create the four DBLP tables in ``db``."""
    db.create_table(TableSchema(
        "Author",
        [Column("Aid", int), Column("Name", str)],
        "Aid",
        text_columns=["Name"],
    ))
    db.create_table(TableSchema(
        "Paper",
        [Column("Pid", int), Column("Title", str),
         Column("Other", str, nullable=True)],
        "Pid",
        text_columns=["Title"],
    ))
    db.create_table(TableSchema(
        "Write",
        [Column("Aid", int), Column("Pid", int),
         Column("Remark", str, nullable=True)],
        ("Aid", "Pid"),
        [ForeignKey("Aid", "Author"), ForeignKey("Pid", "Paper")],
    ))
    db.create_table(TableSchema(
        "Cite",
        [Column("Pid1", int), Column("Pid2", int)],
        ("Pid1", "Pid2"),
        [ForeignKey("Pid1", "Paper"), ForeignKey("Pid2", "Paper")],
    ))


def _author_names(rng: random.Random, count: int) -> List[str]:
    first = ("alice", "bob", "carol", "david", "erin", "frank", "grace",
             "henry", "irene", "jack", "karen", "leo", "mona", "nolan")
    last = ("anders", "brown", "chen", "davis", "evans", "fischer",
            "garcia", "hoffman", "ivanov", "jones", "kumar", "lopez",
            "miller", "nguyen")
    return [
        f"{rng.choice(first)} {rng.choice(last)} a{i}"
        for i in range(count)
    ]


def generate_dblp(config: DBLPConfig = DBLPConfig()) -> Database:
    """Build the synthetic DBLP database."""
    rng = random.Random(config.seed)
    db = Database("dblp")
    dblp_schema(db)

    n_authors = config.n_authors
    n_papers = config.n_papers

    # Plant benchmark keywords into paper titles at exact KWF relative
    # to the final tuple count (estimate is exact up to write/cite
    # collision dedup, which removes well under 1% of rows). Planting
    # is clustered and paper ids are topically local (authorship below
    # draws authors from a window around the paper id), so keyword
    # papers are coauthor-connected the way real common words are.
    total = config.total_tuples_estimate
    # Cluster centers snap to the prolific-author grid (stride 50 in
    # author-id space = 50 / authors-per-paper-slot in paper-id space),
    # anchoring every keyword topic at a research group.
    grid = max(1, round(50 * n_papers / max(n_authors, 1)))
    plan = vocab.plan_plants_clustered(rng, total, n_papers,
                                       center_grid=grid)
    planted: Dict[int, List[str]] = {}
    for keyword, slots in plan.items():
        for slot in slots:
            planted.setdefault(slot, []).append(keyword)

    for aid, name in enumerate(_author_names(rng, n_authors)):
        db.insert("Author", {"Aid": aid, "Name": name})

    for pid in range(n_papers):
        title = vocab.filler_title(rng, config.title_words)
        extras = planted.get(pid)
        if extras:
            title = f"{title} {' '.join(extras)}"
        db.insert("Paper", {"Pid": pid, "Title": title, "Other": None})

    # Authorship. Papers draw ~2.46 authors each (the paper's DBLP
    # average; support 1..6 like real bibliographies). Authors come
    # from a window around the paper's position in id space — the
    # topical locality that makes related (and same-keyword) papers
    # share authors, as real research communities do. A small uniform
    # tail models cross-area collaboration.
    coauthor_counts = (1, 2, 3, 4, 5, 6)
    coauthor_weights = (0.30, 0.28, 0.20, 0.12, 0.06, 0.04)
    author_spread = max(2.0, n_authors * 0.004)
    # Real bibliographies have prolific "group leader" authors with
    # tens of papers; they are the multi-paper centers that make
    # high-l queries answerable. One author in every stretch of 50
    # plays that role and joins ~a quarter of the papers in its window.
    leader_stride = 50
    writes: set = set()
    for pid in range(n_papers):
        n_coauthors = rng.choices(coauthor_counts,
                                  weights=coauthor_weights)[0]
        base = pid * n_authors // n_papers
        chosen: set = set()
        if rng.random() < 0.25 and n_authors > leader_stride:
            leader = min(round(base / leader_stride) * leader_stride,
                         n_authors - 1)
            chosen.add(leader)
        attempts = 0
        while len(chosen) < min(n_coauthors, n_authors) and attempts < 60:
            attempts += 1
            if rng.random() < 0.08:
                aid = rng.randrange(n_authors)
            else:
                aid = int(round(base + rng.gauss(0.0, author_spread)))
            if 0 <= aid < n_authors:
                chosen.add(aid)
        for aid in chosen:
            if (aid, pid) not in writes:
                writes.add((aid, pid))
                db.insert("Write", {"Aid": aid, "Pid": pid,
                                    "Remark": None})

    # Citations: overwhelmingly within the topical neighborhood, with
    # a uniform tail for cross-area citations.
    cite_spread = max(2.0, n_papers * 0.01)
    cites: set = set()
    attempts = 0
    target = config.n_cites_target
    while len(cites) < target and attempts < 40 * target:
        attempts += 1
        citing = rng.randrange(n_papers)
        if rng.random() < 0.1:
            cited = rng.randrange(n_papers)
        else:
            cited = int(round(citing + rng.gauss(0.0, cite_spread)))
        if not 0 <= cited < n_papers:
            continue
        if citing == cited or (citing, cited) in cites:
            continue
        cites.add((citing, cited))
        db.insert("Cite", {"Pid1": citing, "Pid2": cited})
    return db


def dblp_graph(config: DBLPConfig = DBLPConfig()
               ) -> Tuple[Database, DatabaseGraph]:
    """Generate DBLP and materialize its database graph."""
    db = generate_dblp(config)
    dbg = build_database_graph(db, label_columns={"Author": "Name"})
    return db, dbg
