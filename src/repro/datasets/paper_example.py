"""The paper's running examples: Fig. 1 and Fig. 4.

The paper prints Fig. 4 as a picture without an edge table, but states
enough derived quantities to pin a consistent reconstruction down:

* keyword placement (a: v4, v13; b: v2, v8; c: v3, v6, v9, v11),
* ``w((v1, v2)) = 5``,
* Table I — the five communities with their knodes, centers and costs,
* every neighbor set in the Section IV walk-through: ``N_1``, ``N_2``,
  ``N_3`` for the full keyword sets, the pinned sets
  ``Neighbor({v4})``, ``Neighbor({v8})``, ``Neighbor({v6})``, the
  restricted sets ``Neighbor({v3, v9, v11})`` and ``Neighbor({v2})``,
  and the center intersection ``{v1, v4, v5, v7, v9, v11, v12}``,
* the cost arithmetic for R5 (``11 = (2+3) + 0 + (3+3)`` at v11,
  ``14 = (3+2+3) + 3 + 3`` at v12) and its pnode set ``{v10}``.

The edge list below satisfies *all* of those simultaneously; the
integration tests assert each one, so the reconstruction is verified
mechanically rather than by eyeballing the figure.

Node ids are 0-based: node ``i`` is the paper's ``v(i+1)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph

#: Directed edges of Fig. 4, in paper labels: (tail, head, weight).
FIG4_EDGES: List[Tuple[str, str, float]] = [
    ("v1", "v2", 5.0),
    ("v1", "v3", 3.0),
    ("v1", "v4", 6.0),
    ("v2", "v3", 6.0),
    ("v4", "v6", 4.0),
    ("v4", "v8", 3.0),
    ("v5", "v2", 4.0),
    ("v5", "v4", 6.0),
    ("v5", "v9", 5.0),
    ("v7", "v4", 1.0),
    ("v7", "v8", 4.0),
    ("v8", "v13", 8.0),
    ("v9", "v8", 4.0),
    ("v9", "v13", 6.0),
    ("v10", "v8", 3.0),
    ("v11", "v10", 2.0),
    ("v11", "v12", 3.0),
    ("v12", "v11", 3.0),
    ("v12", "v13", 3.0),
]

#: Keyword placement of Fig. 4.
FIG4_KEYWORDS: Dict[str, Tuple[str, ...]] = {
    "a": ("v4", "v13"),
    "b": ("v2", "v8"),
    "c": ("v3", "v6", "v9", "v11"),
}

#: The paper's default query on this graph.
FIG4_QUERY: Tuple[str, ...] = ("a", "b", "c")
FIG4_RMAX: float = 8.0

#: Table I: (core in keyword order (a, b, c), cost, centers), ranked.
TABLE1_RANKING: List[Tuple[Tuple[str, str, str], float, Tuple[str, ...]]] = [
    (("v4", "v8", "v6"), 7.0, ("v4", "v7")),
    (("v13", "v8", "v9"), 10.0, ("v9",)),
    (("v13", "v8", "v11"), 11.0, ("v11", "v12")),
    (("v4", "v2", "v3"), 14.0, ("v1",)),
    (("v4", "v2", "v9"), 15.0, ("v5",)),
]


def node_id(label: str) -> int:
    """0-based node id of a paper label like ``"v7"``."""
    return int(label[1:]) - 1


def node_label(node: int) -> str:
    """Paper label of a 0-based node id."""
    return f"v{node + 1}"


def figure4_graph() -> DatabaseGraph:
    """Build the Fig. 4 database graph (13 nodes, 19 directed edges)."""
    builder = DiGraph(13)
    for tail, head, weight in FIG4_EDGES:
        builder.add_edge(node_id(tail), node_id(head), weight)
    keywords: List[set] = [set() for _ in range(13)]
    for keyword, labels in FIG4_KEYWORDS.items():
        for label in labels:
            keywords[node_id(label)].add(keyword)
    labels = [node_label(u) for u in range(13)]
    return DatabaseGraph(builder.compile(), keywords, labels)


# ----------------------------------------------------------------------
# Fig. 1: the co-authorship motivation example
# ----------------------------------------------------------------------

#: Fig. 1 nodes in id order.
FIG1_LABELS: Tuple[str, ...] = (
    "John Smith", "Jim Smith", "Kate Green", "paper1", "paper2")

#: Fig. 1 edges: papers point at their authors, weighted by author
#: order; paper1 cites paper2 with weight 4.
FIG1_EDGES: List[Tuple[str, str, float]] = [
    ("paper1", "John Smith", 1.0),
    ("paper1", "Kate Green", 2.0),
    ("paper2", "Kate Green", 1.0),
    ("paper2", "John Smith", 2.0),
    ("paper2", "Jim Smith", 3.0),
    ("paper1", "paper2", 4.0),
]

FIG1_QUERY: Tuple[str, ...] = ("kate", "smith")
FIG1_RMAX: float = 6.0


def figure1_graph() -> DatabaseGraph:
    """Build the Fig. 1 co-authorship graph (5 nodes, 6 edges).

    Node keywords are the lower-cased name tokens, so the paper's
    2-keyword query ``{Kate, Smith}`` works as printed. With
    ``Rmax = 6`` the query has the two multi-center communities of
    Fig. 3 (paper1 and paper2 are both centers of the first one).
    """
    index = {label: i for i, label in enumerate(FIG1_LABELS)}
    builder = DiGraph(len(FIG1_LABELS))
    for tail, head, weight in FIG1_EDGES:
        builder.add_edge(index[tail], index[head], weight)
    keywords = [set(label.lower().split()) for label in FIG1_LABELS]
    return DatabaseGraph(builder.compile(), keywords, list(FIG1_LABELS))
