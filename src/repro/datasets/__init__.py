"""Datasets: the paper's two evaluation substrates plus its examples.

* :mod:`repro.datasets.dblp` — synthetic DBLP 2008 (Exp-2);
* :mod:`repro.datasets.imdb` — synthetic IMDB/MovieLens (Exp-1);
* :mod:`repro.datasets.vocab` — the KWF-banded benchmark vocabulary
  (Tables III / V analogue, with exact planted frequencies);
* :mod:`repro.datasets.paper_example` — the Fig. 1 and Fig. 4 toy
  graphs, reconstructed to match every quantity the paper states.
"""

from repro.datasets.dblp import DBLPConfig, dblp_graph, generate_dblp
from repro.datasets.imdb import IMDBConfig, generate_imdb, imdb_graph
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    TABLE1_RANKING,
    figure1_graph,
    figure4_graph,
)
from repro.datasets.vocab import (
    BENCH_BANDS,
    DEFAULT_KWF,
    KWF_VALUES,
    KeywordBand,
    query_keywords,
)

__all__ = [
    "BENCH_BANDS",
    "DBLPConfig",
    "DEFAULT_KWF",
    "FIG4_QUERY",
    "FIG4_RMAX",
    "IMDBConfig",
    "KWF_VALUES",
    "KeywordBand",
    "TABLE1_RANKING",
    "dblp_graph",
    "figure1_graph",
    "figure4_graph",
    "generate_dblp",
    "generate_imdb",
    "imdb_graph",
    "query_keywords",
]
