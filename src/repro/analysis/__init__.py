"""Analysis utilities: dataset statistics, result statistics, exports.

* :mod:`repro.analysis.graph_stats` — the dataset characterization the
  paper's §VII text quotes (tuple counts, reference counts, degree
  averages, weight distribution);
* :mod:`repro.analysis.result_stats` — community result profiling
  (multi-center rates, size/cost distributions, node overlap);
* :mod:`repro.analysis.dot` — Graphviz DOT export for communities and
  tree answers (renders the paper's Fig. 3/5/7-style drawings);
* :mod:`repro.analysis.delay_profile` — per-answer delay measurement
  (the distribution behind the paper's "polynomial delay" claim);
* :mod:`repro.analysis.stage_report` — rendering the execution
  engine's per-stage instrumentation (where a query's time goes,
  projection-cache effectiveness);
* :mod:`repro.analysis.hot_keys` — offline mining of the service's
  query log into a result-cache warm list (``python -m repro warm``).
"""

from repro.analysis.delay_profile import DelayProfile, profile_delays
from repro.analysis.stage_report import (
    cache_effectiveness,
    stage_breakdown,
    stage_table,
)
from repro.analysis.dot import community_to_dot, tree_to_dot
from repro.analysis.hot_keys import hot_keys, warm_payloads
from repro.analysis.graph_stats import (
    DatasetProfile,
    degree_statistics,
    profile_database,
    profile_graph,
)
from repro.analysis.result_stats import ResultProfile, profile_results

__all__ = [
    "DatasetProfile",
    "DelayProfile",
    "ResultProfile",
    "cache_effectiveness",
    "community_to_dot",
    "degree_statistics",
    "hot_keys",
    "profile_database",
    "profile_delays",
    "profile_graph",
    "profile_results",
    "stage_breakdown",
    "stage_table",
    "tree_to_dot",
    "warm_payloads",
]
