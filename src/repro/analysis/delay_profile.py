"""Per-answer delay profiling — measuring the paper's core claim.

"Polynomial delay" is a statement about the *gap between consecutive
answers*: for PDall it is bounded by a polynomial in the input alone,
while the expanding baselines' dedup work grows with the number of
answers already produced. Average delay (total/|O|, what the paper's
figures report) can hide that difference; this profiler records every
inter-answer gap so the distribution itself can be inspected.

``profile_delays`` drives any community iterator and returns a
:class:`DelayProfile` with the max/percentile gaps and a simple
first-half vs second-half drift ratio (≈1 for delay that does not grow
with the answer index).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass
class DelayProfile:
    """Inter-answer delay statistics for one enumeration run."""

    answers: int
    total_seconds: float
    delays_ms: List[float]

    @property
    def average_ms(self) -> float:
        """The paper's metric: total time / answers."""
        if not self.answers:
            return float("nan")
        return 1000.0 * self.total_seconds / self.answers

    @property
    def max_ms(self) -> float:
        """Worst single gap — what 'polynomial delay' bounds."""
        return max(self.delays_ms, default=float("nan"))

    def percentile_ms(self, q: float) -> float:
        """The q-th percentile gap (0 <= q <= 100)."""
        if not self.delays_ms:
            return float("nan")
        ordered = sorted(self.delays_ms)
        index = min(len(ordered) - 1,
                    max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    @property
    def drift_ratio(self) -> float:
        """Mean gap of the second half over the first half.

        ≈ 1 for enumeration whose delay does not depend on how many
        answers were already produced (the polynomial-delay property);
        > 1 when later answers get slower (the incremental-polynomial
        signature of the pool-based baselines).
        """
        if len(self.delays_ms) < 4:
            return float("nan")
        half = len(self.delays_ms) // 2
        first = sum(self.delays_ms[:half]) / half
        second = sum(self.delays_ms[half:]) / (len(self.delays_ms)
                                               - half)
        if first <= 0:
            return float("nan")
        return second / first

    def render(self) -> str:
        """One-line summary."""
        return (f"{self.answers} answers in "
                f"{self.total_seconds:.2f}s; delay avg "
                f"{self.average_ms:.2f}ms p50 "
                f"{self.percentile_ms(50):.2f}ms p95 "
                f"{self.percentile_ms(95):.2f}ms max {self.max_ms:.2f}"
                f"ms; drift x{self.drift_ratio:.2f}")


def profile_delays(iterator: Iterable, max_answers: Optional[int] = None
                   ) -> DelayProfile:
    """Consume a community iterator, timing each inter-answer gap."""
    delays: List[float] = []
    start = time.perf_counter()
    last = start
    count = 0
    for _ in iterator:
        now = time.perf_counter()
        delays.append(1000.0 * (now - last))
        last = now
        count += 1
        if max_answers is not None and count >= max_answers:
            break
    return DelayProfile(count, time.perf_counter() - start, delays)
