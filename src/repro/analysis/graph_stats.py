"""Dataset characterization — the numbers the paper's §VII text quotes.

For DBLP the paper reports 4,121,120 tuples / 5,076,826 references /
10,153,652 directed edges and "each author writes 4.06 papers on
average while each paper is written by 2.46 authors"; for IMDB the
analogous density numbers. :func:`profile_database` computes the same
characterization for any database + graph pair, and the benchmark
harness prints it as the dataset table of the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.database_graph import DatabaseGraph
from repro.rdb.database import Database


@dataclass
class DatasetProfile:
    """Sizes, density, and degree/weight statistics of one dataset."""

    name: str
    table_rows: Dict[str, int]
    total_tuples: int
    total_references: int
    directed_edges: int
    avg_out_degree: float
    max_in_degree: int
    avg_edge_weight: float
    max_edge_weight: float
    link_ratios: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Multi-line report, dataset-table style."""
        lines = [f"{self.name}:"]
        for table, rows in self.table_rows.items():
            lines.append(f"  {table:<10} {rows:>10} rows")
        lines.append(f"  tuples     {self.total_tuples:>10}")
        lines.append(f"  references {self.total_references:>10}")
        lines.append(f"  edges      {self.directed_edges:>10} "
                     f"(bi-directed)")
        lines.append(f"  avg out-degree {self.avg_out_degree:.2f}, "
                     f"max in-degree {self.max_in_degree}")
        lines.append(f"  edge weight avg {self.avg_edge_weight:.2f}, "
                     f"max {self.max_edge_weight:.2f}")
        for label, value in self.link_ratios.items():
            lines.append(f"  {label}: {value:.2f}")
        return "\n".join(lines)


def degree_statistics(dbg: DatabaseGraph) -> Dict[str, float]:
    """Degree and weight summary of a database graph."""
    graph = dbg.graph
    n = max(graph.n, 1)
    weights = graph.forward.weights
    return {
        "nodes": float(graph.n),
        "edges": float(graph.m),
        "avg_out_degree": graph.m / n,
        "max_in_degree": float(
            max((graph.in_degree(u) for u in range(graph.n)),
                default=0)),
        "avg_edge_weight": (float(sum(weights)) / len(weights))
        if len(weights) else 0.0,
        "max_edge_weight": float(max(weights, default=0.0)),
    }


def _link_ratios(db: Database) -> Dict[str, float]:
    """Per-link-table density ratios, e.g. DBLP's papers/author.

    For every table with exactly two foreign keys (a link table), the
    average link count per referenced row on each side — the numbers
    behind "4.06 papers per author / 2.46 authors per paper".
    """
    ratios: Dict[str, float] = {}
    for table in db.tables():
        fks = table.schema.foreign_keys
        if len(fks) != 2 or len(table) == 0:
            continue
        for fk in fks:
            referenced = db.table(fk.ref_table)
            if len(referenced) > 0:
                ratios[f"{table.schema.name} per {fk.ref_table}"] = \
                    len(table) / len(referenced)
    return ratios


def profile_database(name: str, db: Database, dbg: DatabaseGraph
                     ) -> DatasetProfile:
    """Full characterization of a database and its graph."""
    stats = degree_statistics(dbg)
    return DatasetProfile(
        name=name,
        table_rows={t.schema.name: len(t) for t in db.tables()},
        total_tuples=db.total_rows(),
        total_references=db.total_references(),
        directed_edges=dbg.m,
        avg_out_degree=stats["avg_out_degree"],
        max_in_degree=int(stats["max_in_degree"]),
        avg_edge_weight=stats["avg_edge_weight"],
        max_edge_weight=stats["max_edge_weight"],
        link_ratios=_link_ratios(db),
    )


def profile_graph(name: str, dbg: DatabaseGraph) -> DatasetProfile:
    """Characterization when only the graph is available."""
    stats = degree_statistics(dbg)
    return DatasetProfile(
        name=name,
        table_rows={},
        total_tuples=dbg.n,
        total_references=dbg.m // 2,
        directed_edges=dbg.m,
        avg_out_degree=stats["avg_out_degree"],
        max_in_degree=int(stats["max_in_degree"]),
        avg_edge_weight=stats["avg_edge_weight"],
        max_edge_weight=stats["max_edge_weight"],
    )


def in_degree_histogram(dbg: DatabaseGraph, buckets: Optional[List[int]]
                        = None) -> List[Tuple[str, int]]:
    """In-degree distribution in log-ish buckets — shows the skew the
    BANKS weights respond to."""
    if buckets is None:
        buckets = [0, 1, 2, 4, 8, 16, 32, 64, 128]
    counts = [0] * (len(buckets) + 1)
    for u in range(dbg.n):
        degree = dbg.graph.in_degree(u)
        for idx, bound in enumerate(buckets):
            if degree <= bound:
                counts[idx] += 1
                break
        else:
            counts[-1] += 1
    labels = []
    previous = None
    for bound in buckets:
        labels.append(
            f"<= {bound}" if previous is None or bound - previous <= 1
            else f"{previous + 1}-{bound}")
        previous = bound
    labels.append(f"> {buckets[-1]}")
    return list(zip(labels, counts))


def keyword_frequency_table(dbg: DatabaseGraph, keywords: List[str]
                            ) -> List[Tuple[str, int, float]]:
    """(keyword, node count, KWF) rows — the Tables III/V analogue."""
    rows = []
    n = max(dbg.n, 1)
    for keyword in keywords:
        count = len(dbg.nodes_with_keyword(keyword))
        rows.append((keyword, count, count / n))
    return rows


def entropy_of_in_degrees(dbg: DatabaseGraph) -> float:
    """Shannon entropy of the in-degree distribution (skew summary)."""
    counts: Dict[int, int] = {}
    for u in range(dbg.n):
        degree = dbg.graph.in_degree(u)
        counts[degree] = counts.get(degree, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy
