"""Offline hot-keyword mining over the service's query log.

The service keeps a ring buffer of every admitted ``/query``/``/batch``
spec, aggregated under the same canonical cache key the result cache
uses (``GET /admin/querylog``). This module turns that ledger into a
warm list: the top-N specs worth replaying into a freshly adopted
generation's (empty) result cache.

Used by ``python -m repro warm`` against a live service, and usable
directly against saved querylog JSON for capacity planning::

    rows = hot_keys(json.load(open("querylog.json")), top=20)
    for row in rows:
        print(row["count"], row["key"])

The functions are tolerant about input shape: the full
``/admin/querylog`` response, its ``top`` list, or a bare list of
``{"key", "count", "query"}`` rows all work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

LogLike = Union[Dict[str, Any], Sequence[Dict[str, Any]]]


def _rows_of(log: LogLike) -> List[Dict[str, Any]]:
    """Normalize any accepted input shape to a list of count rows."""
    if isinstance(log, dict):
        rows = log.get("top", [])
    else:
        rows = list(log)
    out = []
    for row in rows:
        if not isinstance(row, dict) or "query" not in row:
            continue
        out.append({
            "key": str(row.get("key", "")),
            "count": int(row.get("count", 0)),
            "query": dict(row["query"]),
        })
    return out


def hot_keys(log: LogLike,
             top: Optional[int] = None,
             min_count: int = 1) -> List[Dict[str, Any]]:
    """The hottest distinct specs, most-frequent first.

    Rows sharing a canonical key are merged (their counts summed),
    rows below ``min_count`` dropped, and the remainder sorted by
    descending count (key as the tiebreak, for stable output). Each
    returned row's ``query`` is a replayable ``/query`` body.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for row in _rows_of(log):
        kept = merged.get(row["key"])
        if kept is None:
            merged[row["key"]] = dict(row)
        else:
            kept["count"] += row["count"]
    rows = [row for row in merged.values()
            if row["count"] >= min_count]
    rows.sort(key=lambda row: (-row["count"], row["key"]))
    if top is not None:
        rows = rows[:max(0, int(top))]
    return rows


def warm_payloads(log: LogLike,
                  top: Optional[int] = None) -> List[Dict[str, Any]]:
    """Just the replayable ``/query`` bodies, hottest first."""
    return [row["query"] for row in hot_keys(log, top=top)]
