"""Graphviz DOT export for communities and tree answers.

Renders the paper's figure style: knodes as doubled circles, centers
shaded, pnodes plain; edge labels carry weights. Output is plain DOT
text — pipe it to ``dot -Tsvg`` to draw Fig. 3/5/7-style pictures.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.community import Community
from repro.core.trees import TreeAnswer
from repro.graph.database_graph import DatabaseGraph


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def community_to_dot(community: Community,
                     dbg: Optional[DatabaseGraph] = None,
                     name: str = "community") -> str:
    """DOT for one community (knodes doubled, centers shaded)."""
    def label(node: int) -> str:
        return _escape(dbg.label_of(node)) if dbg is not None \
            else f"v{node}"

    knodes = set(community.core)
    centers = set(community.centers)
    lines: List[str] = [f'digraph "{_escape(name)}" {{',
                        "  rankdir=LR;",
                        '  node [shape=ellipse, fontsize=11];']
    for node in community.nodes:
        attrs = [f'label="{label(node)}"']
        if node in knodes:
            attrs.append("peripheries=2")
        if node in centers:
            attrs.append('style=filled')
            attrs.append('fillcolor="#dddddd"')
        lines.append(f'  n{node} [{", ".join(attrs)}];')
    for u, v, w in community.edges:
        lines.append(f'  n{u} -> n{v} [label="{w:g}", fontsize=9];')
    lines.append("}")
    return "\n".join(lines)


def tree_to_dot(tree: TreeAnswer, dbg: Optional[DatabaseGraph] = None,
                name: str = "tree") -> str:
    """DOT for one tree answer (root shaded, knodes doubled)."""
    def label(node: int) -> str:
        return _escape(dbg.label_of(node)) if dbg is not None \
            else f"v{node}"

    knodes = set(tree.core)
    lines: List[str] = [f'digraph "{_escape(name)}" {{',
                        '  node [shape=ellipse, fontsize=11];']
    for node in tree.nodes:
        attrs = [f'label="{label(node)}"']
        if node in knodes:
            attrs.append("peripheries=2")
        if node == tree.root:
            attrs.append("style=filled")
            attrs.append('fillcolor="#dddddd"')
        lines.append(f'  n{node} [{", ".join(attrs)}];')
    for u, v, w in tree.edges:
        lines.append(f'  n{u} -> n{v} [label="{w:g}", fontsize=9];')
    lines.append("}")
    return "\n".join(lines)
