"""Result-set profiling: what the answers of a query look like.

The paper explains several of its measurements through result
*structure* — DBLP answers are mostly single-center, IMDB answers are
multi-center; result counts drive baseline memory. This module turns a
result list into those statistics so the observations can be made (and
tested) quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.community import Community


@dataclass
class ResultProfile:
    """Aggregate statistics over one query's community list."""

    count: int
    multi_center: int
    avg_centers: float
    avg_size: float
    max_size: int
    min_cost: float
    max_cost: float
    avg_cost: float
    distinct_nodes: int

    @property
    def multi_center_rate(self) -> float:
        """Fraction of answers with more than one center."""
        return self.multi_center / self.count if self.count else 0.0

    def render(self) -> str:
        """One-paragraph text summary."""
        if self.count == 0:
            return "no communities"
        return (
            f"{self.count} communities; "
            f"{self.multi_center} multi-center "
            f"({self.multi_center_rate:.0%}); "
            f"centers/answer {self.avg_centers:.2f}; "
            f"size avg {self.avg_size:.1f} max {self.max_size}; "
            f"cost [{self.min_cost:g}, {self.max_cost:g}] "
            f"avg {self.avg_cost:.2f}; "
            f"{self.distinct_nodes} distinct nodes covered")


def profile_results(communities: Sequence[Community]) -> ResultProfile:
    """Profile a community result list."""
    if not communities:
        return ResultProfile(0, 0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0)
    covered = set()
    for community in communities:
        covered.update(community.nodes)
    costs = [c.cost for c in communities]
    return ResultProfile(
        count=len(communities),
        multi_center=sum(
            1 for c in communities if c.is_multi_center()),
        avg_centers=sum(
            len(c.centers) for c in communities) / len(communities),
        avg_size=sum(c.size for c in communities) / len(communities),
        max_size=max(c.size for c in communities),
        min_cost=min(costs),
        max_cost=max(costs),
        avg_cost=sum(costs) / len(costs),
        distinct_nodes=len(covered),
    )


def cost_histogram(communities: Sequence[Community], bins: int = 8
                   ) -> List[Tuple[str, int]]:
    """Equal-width cost histogram (for terminal reports)."""
    if not communities:
        return []
    costs = sorted(c.cost for c in communities)
    lo, hi = costs[0], costs[-1]
    if hi <= lo:
        return [(f"{lo:g}", len(costs))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for cost in costs:
        idx = min(int((cost - lo) / width), bins - 1)
        counts[idx] += 1
    return [
        (f"[{lo + i * width:.1f}, {lo + (i + 1) * width:.1f})", count)
        for i, count in enumerate(counts)
    ]


def overlap_matrix(communities: Sequence[Community], top: int = 5
                   ) -> List[List[float]]:
    """Jaccard node-overlap between the first ``top`` answers.

    High off-diagonal overlap is the redundancy story: many tree-style
    answers would repeat the same neighborhood; communities expose the
    overlap explicitly.
    """
    chosen = list(communities[:top])
    matrix: List[List[float]] = []
    for a in chosen:
        row = []
        set_a = set(a.nodes)
        for b in chosen:
            set_b = set(b.nodes)
            union = set_a | set_b
            row.append(len(set_a & set_b) / len(union) if union
                       else 0.0)
        matrix.append(row)
    return matrix


def keyword_node_usage(communities: Sequence[Community]
                       ) -> Dict[int, int]:
    """How many answers each knode participates in (hub detection)."""
    usage: Dict[int, int] = {}
    for community in communities:
        for node in set(community.core):
            usage[node] = usage.get(node, 0) + 1
    return usage
