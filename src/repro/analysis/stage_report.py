"""Rendering engine instrumentation: where a query's time goes.

The execution engine reports every query through one
:class:`~repro.engine.context.QueryContext` — stage wall-clock
(resolve → project → enumerate → translate), projection-cache traffic
and the baseline pool counters. This module turns contexts into the
same plain-text tables the rest of :mod:`repro.analysis` produces, so
"why was this query slow" and "is the cache earning its memory" are
answerable from a terminal:

>>> ctx = QueryContext()
>>> search.all_communities(["kate", "smith"], 6.0, context=ctx)
>>> print(stage_table(ctx))
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.engine.context import STAGES, QueryContext


def stage_breakdown(context: QueryContext) -> List[Tuple[str, float, float]]:
    """``(stage, seconds, share)`` rows, canonical stages first.

    ``share`` is the stage's fraction of the context's total recorded
    time (0.0 when nothing was recorded).
    """
    total = context.total_seconds
    names = [name for name in STAGES if name in context.timings]
    names += [name for name in sorted(context.timings)
              if name not in STAGES]
    return [
        (name, context.timings[name],
         context.timings[name] / total if total else 0.0)
        for name in names
    ]


def stage_table(context: QueryContext) -> str:
    """A two-section text report: stage timings, then counters."""
    lines = ["stage        seconds      share",
             "-----        -------      -----"]
    rows = stage_breakdown(context)
    if not rows:
        lines.append("(no stages recorded)")
    for name, seconds, share in rows:
        lines.append(f"{name:<12} {seconds:>10.6f}  {share:>8.1%}")
    if context.counters:
        lines.append("")
        lines.append("counter                       value")
        lines.append("-------                       -----")
        for name in sorted(context.counters):
            lines.append(f"{name:<28} {context.counters[name]:>6}")
    return "\n".join(lines)


def cache_effectiveness(contexts: Sequence[QueryContext]
                        ) -> Dict[str, float]:
    """Aggregate projection-cache behaviour over a workload.

    Returns hit/miss/run totals, the hit rate, and the total seconds
    spent inside Algorithm 6 — the number the cache exists to shrink.
    """
    hits = sum(c.counter("projection_cache_hits") for c in contexts)
    misses = sum(c.counter("projection_cache_misses") for c in contexts)
    runs = sum(c.counter("projection_runs") for c in contexts)
    project_seconds = sum(c.seconds("project") for c in contexts)
    lookups = hits + misses
    return {
        "queries": float(len(contexts)),
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "projection_runs": float(runs),
        "hit_rate": hits / lookups if lookups else 0.0,
        "project_seconds": project_seconds,
    }
