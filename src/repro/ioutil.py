"""Internal IO helpers shared by every on-disk artifact format.

Historically :mod:`repro.graph.io` and :mod:`repro.text.persistence`
each carried their own copy of the gzip-aware ``open`` helper and the
``format``/``version`` header check. The snapshot subsystem
(:mod:`repro.snapshot`) is a third writer of versioned artifacts, so
the shared pattern lives here once:

* :func:`open_artifact` — text-mode open that is transparently
  gzip-compressed for ``.gz`` paths;
* :func:`dump_versioned_json` / :func:`load_versioned_json` — one JSON
  document per file, stamped with and checked against a
  ``{"format": ..., "version": ...}`` header, raising the *caller's*
  error type so each subsystem keeps its own taxonomy.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Dict, Type, Union

from repro.exceptions import ReproError

PathLike = Union[str, Path]


def open_artifact(path: PathLike, mode: str):
    """Open ``path`` in text mode; ``.gz`` suffixes gzip transparently.

    ``mode`` is ``"r"`` or ``"w"``; encoding is always UTF-8.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def dump_versioned_json(payload: Dict[str, Any], path: PathLike,
                        format_name: str, version: int) -> None:
    """Write ``payload`` as one JSON document with a format header.

    The ``format`` and ``version`` keys are stamped onto the payload
    (overwriting any present), so every artifact written through this
    helper is self-identifying for :func:`load_versioned_json`.
    """
    document = dict(payload)
    document["format"] = format_name
    document["version"] = version
    with open_artifact(path, "w") as handle:
        json.dump(document, handle)


def load_versioned_json(path: PathLike, format_name: str, version: int,
                        error: Type[ReproError]) -> Dict[str, Any]:
    """Read one JSON document and enforce its format header.

    Raises ``error`` (the caller's subsystem exception type) when the
    file is not JSON, does not carry the expected ``format`` name, or
    carries an unsupported ``version``.
    """
    path = Path(path)
    try:
        with open_artifact(path, "r") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise error(f"cannot read {path}: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("format") != format_name:
        raise error(f"{path} is not a {format_name} file")
    if payload.get("version") != version:
        raise error(
            f"unsupported {format_name} version "
            f"{payload.get('version')!r} (expected {version})")
    return payload
