"""The execution engine: specs, registry, projection cache, contexts.

This subsystem is the seam between the inverted indexes and the
paper's algorithms, introduced so every query path — facade, CLI,
benchmarks — shares one plan/execute/instrument pipeline:

* :mod:`repro.engine.spec` — :class:`QuerySpec`, the validated
  immutable description of one COMM-all/COMM-k query;
* :mod:`repro.engine.context` — :class:`QueryContext`, per-stage
  wall-clock and counters flowing through one channel;
* :mod:`repro.engine.registry` — :class:`AlgorithmRegistry` with the
  uniform backend contract (``pd``/``bu``/``td``/``naive`` built in);
* :mod:`repro.engine.cache` — :class:`ProjectionCache`, LRU over
  Algorithm 6 results with generation-based invalidation;
* :mod:`repro.engine.results` — :class:`ResultCache`, the
  generation-keyed answer cache with ranked-prefix reuse (exact
  repeats are lookups, larger k resumes the cached frontier);
* :mod:`repro.engine.engine` — :class:`QueryEngine`, tying the above
  together (and :func:`translate_community`);
* :mod:`repro.engine.stream` — :class:`ProjectedTopKStream` for
  interactive PDk over a projection.
"""

from repro.engine.cache import CacheStats, ProjectionCache
from repro.engine.context import QueryContext, ensure_context
from repro.engine.engine import QueryEngine, translate_community
from repro.engine.registry import (
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    default_registry,
)
from repro.engine.results import (
    DEFAULT_RESULT_CACHE_BYTES,
    CachedStream,
    ResultCache,
    ResultCacheStats,
    ResultEntry,
    community_nbytes,
    result_key,
)
from repro.engine.spec import QuerySpec
from repro.engine.stream import ProjectedTopKStream

__all__ = [
    "DEFAULT_RESULT_CACHE_BYTES",
    "REGISTRY",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "CacheStats",
    "CachedStream",
    "ProjectedTopKStream",
    "ProjectionCache",
    "QueryContext",
    "QueryEngine",
    "QuerySpec",
    "ResultCache",
    "ResultCacheStats",
    "ResultEntry",
    "community_nbytes",
    "default_registry",
    "ensure_context",
    "result_key",
    "translate_community",
]
