"""The execution engine: specs, registry, projection cache, contexts.

This subsystem is the seam between the inverted indexes and the
paper's algorithms, introduced so every query path — facade, CLI,
benchmarks — shares one plan/execute/instrument pipeline:

* :mod:`repro.engine.spec` — :class:`QuerySpec`, the validated
  immutable description of one COMM-all/COMM-k query;
* :mod:`repro.engine.context` — :class:`QueryContext`, per-stage
  wall-clock and counters flowing through one channel;
* :mod:`repro.engine.registry` — :class:`AlgorithmRegistry` with the
  uniform backend contract (``pd``/``bu``/``td``/``naive`` built in);
* :mod:`repro.engine.cache` — :class:`ProjectionCache`, LRU over
  Algorithm 6 results with generation-based invalidation;
* :mod:`repro.engine.engine` — :class:`QueryEngine`, tying the above
  together (and :func:`translate_community`);
* :mod:`repro.engine.stream` — :class:`ProjectedTopKStream` for
  interactive PDk over a projection.
"""

from repro.engine.cache import CacheStats, ProjectionCache
from repro.engine.context import QueryContext, ensure_context
from repro.engine.engine import QueryEngine, translate_community
from repro.engine.registry import (
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    default_registry,
)
from repro.engine.spec import QuerySpec
from repro.engine.stream import ProjectedTopKStream

__all__ = [
    "REGISTRY",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "CacheStats",
    "ProjectedTopKStream",
    "ProjectionCache",
    "QueryContext",
    "QueryEngine",
    "QuerySpec",
    "default_registry",
    "ensure_context",
    "translate_community",
]
