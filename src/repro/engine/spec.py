"""Query descriptions the execution engine consumes.

A :class:`QuerySpec` is the complete, immutable statement of one
community query: the keywords, the radius ``Rmax``, COMM-all vs
COMM-k, the algorithm backend, the cost aggregate, and the optional
time budget for the pool-based baselines. Every entry point — the
:class:`~repro.core.search.CommunitySearch` facade, the CLI, the
benchmark harness — normalizes its arguments into a spec and hands it
to :class:`~repro.engine.engine.QueryEngine`, so validation and
defaulting live in exactly one place.

Specs are hashable and render to :meth:`QuerySpec.cache_key`, one
canonical string covering everything that determines the answer —
keywords (sorted + casefolded by construction), mode, k, rmax
(repr-stable float formatting, so ``0.5`` and ``0.50`` collide),
algorithm and aggregate. The result cache
(:mod:`repro.engine.results`) and the service query log key on it;
the projection cache keys on the narrower ``(keyword set, rmax)``
pair since Algorithm 6 sees nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.core.cost import AggregateSpec
from repro.exceptions import QueryError

#: The two query problems of the paper (Definitions 2.2 and 2.3).
MODES = ("all", "topk")


@dataclass(frozen=True)
class QuerySpec:
    """One community query, fully specified and validated.

    ``mode`` is ``"all"`` (COMM-all) or ``"topk"`` (COMM-k, requires
    ``k``). ``use_projection=None`` means "project whenever an index
    exists" — the paper's benchmark setup. ``budget_seconds`` censors
    the combinatorial BU/TD baselines and is ignored by the
    polynomial-delay algorithms.
    """

    keywords: Tuple[str, ...]
    rmax: float
    mode: str = "all"
    k: Optional[int] = None
    algorithm: str = "pd"
    aggregate: AggregateSpec = "sum"
    use_projection: Optional[bool] = None
    budget_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        """Normalize the keyword sequence and validate every field.

        Keywords are case-folded (the tokenizer lowercases the
        vocabulary, so ``"XML"`` and ``"xml"`` name the same posting
        list) and sorted, so ``{a, b}`` and ``{b, a}`` build *equal*
        specs: they share one projection-cache entry, one engine
        code path, and one routing decision. Core tuples in answers
        are therefore always ordered by the sorted keyword list.
        """
        object.__setattr__(
            self, "keywords",
            tuple(sorted(kw.casefold() for kw in self.keywords)))
        if not self.keywords:
            raise QueryError("a query needs at least one keyword")
        if self.rmax < 0:
            raise QueryError(f"Rmax must be >= 0, got {self.rmax}")
        if self.mode not in MODES:
            raise QueryError(
                f"unknown query mode {self.mode!r}; expected one of "
                f"{MODES}")
        if self.mode == "topk":
            if self.k is None:
                raise QueryError("COMM-k needs k")
            if self.k <= 0:
                raise QueryError(f"k must be positive, got {self.k}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def comm_all(cls, keywords: Sequence[str], rmax: float,
                 **options) -> "QuerySpec":
        """A COMM-all spec (Definition 2.2)."""
        return cls(tuple(keywords), rmax, mode="all", **options)

    @classmethod
    def comm_k(cls, keywords: Sequence[str], k: int, rmax: float,
               **options) -> "QuerySpec":
        """A COMM-k spec (Definition 2.3)."""
        return cls(tuple(keywords), rmax, mode="topk", k=k, **options)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """One canonical string naming this query's answer.

        Two specs that must produce identical answers produce equal
        keys: keywords are already sorted and casefolded, and
        ``repr(float(rmax))`` normalizes numerically equal radii
        (``0.5`` vs ``0.50``). ``use_projection`` and
        ``budget_seconds`` are deliberately excluded — the projection
        is exact and the budget only censors backends the result
        cache refuses to serve anyway."""
        k = self.k if self.k is not None else "-"
        return (f"kw={','.join(self.keywords)}|mode={self.mode}"
                f"|k={k}|rmax={float(self.rmax)!r}"
                f"|alg={self.algorithm}|agg={self.aggregate}")

    def with_algorithm(self, algorithm: str) -> "QuerySpec":
        """The same query routed to a different backend."""
        return replace(self, algorithm=algorithm)

    def describe(self) -> str:
        """A one-line human-readable rendering (CLI/bench labels)."""
        head = (f"COMM-{'k' if self.mode == 'topk' else 'all'}"
                f"({', '.join(self.keywords)}; Rmax={self.rmax:g}")
        if self.mode == "topk":
            head += f", k={self.k}"
        return f"{head}) via {self.algorithm}/{self.aggregate}"
