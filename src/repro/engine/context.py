"""Per-query instrumentation: one channel for counters and timings.

Before the engine existed, measurement was threaded ad hoc: the
baselines took an optional ``BaselineStats``, the harness timed around
calls, and the projection reported nothing. A :class:`QueryContext`
replaces all of that with a single object that rides along with one
query execution and records

* **stage timings** — wall-clock seconds per engine stage
  (``resolve`` keyword postings, ``project`` Algorithm 6, ``enumerate``
  the algorithm proper, ``translate`` back to ``G_D`` ids);
* **counters** — cache hits/misses, projection runs, communities
  produced, and anything a backend wants to add;
* the familiar :class:`~repro.core.baselines.pool.BaselineStats` for
  the BU/TD pool bookkeeping, so those numbers flow through the same
  object.

``repro.bench`` attaches a context per measured run and copies it into
``RunResult.extra``; ``repro.analysis.stage_report`` renders it for
humans. Contexts are cheap — a handful of dict entries — so passing
one everywhere costs nothing when nobody reads it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.core.baselines.pool import BaselineStats

#: The engine's canonical stages, in execution order.
STAGES = ("resolve", "project", "enumerate", "translate")


@dataclass
class QueryContext:
    """Instrumentation for one query execution.

    ``timings`` maps stage name to accumulated wall-clock seconds;
    ``counters`` maps event name to occurrence count; ``baseline``
    collects the BU/TD pool statistics when those backends run.
    """

    timings: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    baseline: BaselineStats = field(default_factory=BaselineStats)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block, accumulating into ``timings[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate externally measured seconds into a stage."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def count(self, name: str, increment: int = 1) -> int:
        """Bump a counter; returns the new value."""
        value = self.counters.get(name, 0) + increment
        self.counters[name] = value
        return value

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        """Accumulated wall-clock for one stage (0.0 when never run)."""
        return self.timings.get(name, 0.0)

    def counter(self, name: str) -> int:
        """One counter's value (0 when never bumped)."""
        return self.counters.get(name, 0)

    @property
    def total_seconds(self) -> float:
        """Sum of every recorded stage timing."""
        return sum(self.timings.values())

    def as_dict(self) -> Dict[str, float]:
        """A flat ``{metric: value}`` view for ``RunResult.extra``.

        Stage timings appear as ``<stage>_seconds``, counters under
        their own names, and the baseline pool numbers (when any
        backend touched them) as ``pool_*`` entries.
        """
        flat: Dict[str, float] = {
            f"{name}_seconds": seconds
            for name, seconds in self.timings.items()
        }
        for name, value in self.counters.items():
            flat[name] = float(value)
        if (self.baseline.candidates or self.baseline.duplicates
                or self.baseline.pool_peak or self.baseline.expansions):
            flat["pool_candidates"] = float(self.baseline.candidates)
            flat["pool_duplicates"] = float(self.baseline.duplicates)
            flat["pool_peak"] = float(self.baseline.pool_peak)
            flat["pool_expansions"] = float(self.baseline.expansions)
        return flat

    def merge(self, other: "QueryContext") -> None:
        """Fold another context's numbers into this one (sweeps)."""
        for name, seconds in other.timings.items():
            self.add_time(name, seconds)
        for name, value in other.counters.items():
            self.count(name, value)
        self.baseline.candidates += other.baseline.candidates
        self.baseline.duplicates += other.baseline.duplicates
        self.baseline.expansions += other.baseline.expansions
        self.baseline.pool_peak = max(self.baseline.pool_peak,
                                      other.baseline.pool_peak)

    def render(self) -> str:
        """One-line summary: stages in canonical order, then counters."""
        parts = [
            f"{name}={self.timings[name] * 1000.0:.2f}ms"
            for name in STAGES if name in self.timings
        ]
        parts += [
            f"{name}={self.timings[name] * 1000.0:.2f}ms"
            for name in sorted(self.timings) if name not in STAGES
        ]
        parts += [
            f"{name}={self.counters[name]}"
            for name in sorted(self.counters)
        ]
        return " ".join(parts) if parts else "(no instrumentation)"


def ensure_context(context: Optional[QueryContext]) -> QueryContext:
    """The given context, or a fresh throwaway one."""
    return context if context is not None else QueryContext()
