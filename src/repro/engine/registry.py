"""The algorithm registry: one invocation contract for every backend.

The facade used to keep per-method dicts of callables and hand-plumb
``budget_seconds``/``stats`` kwargs into exactly the backends that
accepted them. The registry replaces that with
:class:`AlgorithmSpec` adapters that all share one signature:

* ``run_all(dbg, keywords, rmax, *, node_lists, aggregate,
  budget_seconds, stats) -> Iterator[Community]``
* ``run_top_k(dbg, keywords, k, rmax, *, node_lists, aggregate,
  budget_seconds, stats) -> List[Community]``

Adapters for backends that ignore the budget (PD has polynomial
delay; naive is the test oracle) simply drop those arguments, so
callers never special-case again. New backends — future sharded or
approximate engines — register themselves with
:meth:`AlgorithmRegistry.register` and immediately work through the
facade, the CLI and the benchmark harness.

The default registry ships the paper's four backends: ``pd``
(Algorithms 1/5), ``bu``, ``td`` and ``naive``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.baselines.bottom_up import bu_iter, bu_top_k
from repro.core.baselines.pool import BaselineStats
from repro.core.baselines.top_down import td_iter, td_top_k
from repro.core.comm_all import enumerate_all
from repro.core.comm_k import TopKStream
from repro.core.community import Community
from repro.core.cost import AggregateSpec
from repro.core.naive import naive_all, naive_top_k
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph

#: The uniform COMM-all entry point type.
AllRunner = Callable[..., Iterator[Community]]
#: The uniform COMM-k entry point type.
TopKRunner = Callable[..., List[Community]]

NodeLists = Optional[Sequence[Sequence[int]]]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered backend and its capabilities.

    ``supports_budget`` marks the combinatorial baselines whose
    enumeration the :class:`~repro.core.baselines.pool.Deadline`
    censors; ``streams`` marks backends with a resumable ranked
    stream (only ``pd``, via
    :class:`~repro.core.comm_k.TopKStream`).
    """

    name: str
    run_all: AllRunner
    run_top_k: TopKRunner
    supports_budget: bool = False
    streams: bool = False
    description: str = ""


class AlgorithmRegistry:
    """Named backends sharing the engine's invocation contract."""

    def __init__(self) -> None:
        self._specs: Dict[str, AlgorithmSpec] = {}

    def register(self, spec: AlgorithmSpec,
                 replace: bool = False) -> AlgorithmSpec:
        """Add a backend; re-registration needs ``replace=True``."""
        if spec.name in self._specs and not replace:
            raise QueryError(
                f"algorithm {spec.name!r} is already registered; pass "
                f"replace=True to override")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> AlgorithmSpec:
        """Look a backend up, or raise listing the known names."""
        try:
            return self._specs[name]
        except KeyError:
            raise QueryError(
                f"unknown algorithm {name!r}; expected one of "
                f"{self.names()}") from None

    def names(self) -> Tuple[str, ...]:
        """Registered backend names, sorted."""
        return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


# ----------------------------------------------------------------------
# adapters — normalize each backend onto the uniform contract
# ----------------------------------------------------------------------
def _pd_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float, *,
            node_lists: NodeLists = None,
            aggregate: AggregateSpec = "sum",
            budget_seconds: Optional[float] = None,
            stats: Optional[BaselineStats] = None
            ) -> Iterator[Community]:
    """PDall (Algorithm 1): polynomial delay, no budget needed."""
    del budget_seconds, stats
    return enumerate_all(dbg, list(keywords), rmax,
                         node_lists=node_lists, aggregate=aggregate)


def _pd_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
              rmax: float, *, node_lists: NodeLists = None,
              aggregate: AggregateSpec = "sum",
              budget_seconds: Optional[float] = None,
              stats: Optional[BaselineStats] = None
              ) -> List[Community]:
    """PDk (Algorithm 5): take k from a fresh ranked stream."""
    del budget_seconds, stats
    return TopKStream(dbg, list(keywords), rmax, node_lists=node_lists,
                      aggregate=aggregate).take(k)


def _bu_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float, *,
            node_lists: NodeLists = None,
            aggregate: AggregateSpec = "sum",
            budget_seconds: Optional[float] = None,
            stats: Optional[BaselineStats] = None
            ) -> Iterator[Community]:
    """BUall with pool stats and budget censoring."""
    return bu_iter(dbg, list(keywords), rmax, node_lists=node_lists,
                   stats=stats, aggregate=aggregate,
                   budget_seconds=budget_seconds)


def _bu_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
              rmax: float, *, node_lists: NodeLists = None,
              aggregate: AggregateSpec = "sum",
              budget_seconds: Optional[float] = None,
              stats: Optional[BaselineStats] = None
              ) -> List[Community]:
    """BUk with pool stats and budget censoring."""
    return bu_top_k(dbg, list(keywords), k, rmax, node_lists=node_lists,
                    stats=stats, aggregate=aggregate,
                    budget_seconds=budget_seconds)


def _td_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float, *,
            node_lists: NodeLists = None,
            aggregate: AggregateSpec = "sum",
            budget_seconds: Optional[float] = None,
            stats: Optional[BaselineStats] = None
            ) -> Iterator[Community]:
    """TDall with pool stats and budget censoring."""
    return td_iter(dbg, list(keywords), rmax, node_lists=node_lists,
                   stats=stats, aggregate=aggregate,
                   budget_seconds=budget_seconds)


def _td_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
              rmax: float, *, node_lists: NodeLists = None,
              aggregate: AggregateSpec = "sum",
              budget_seconds: Optional[float] = None,
              stats: Optional[BaselineStats] = None
              ) -> List[Community]:
    """TDk with pool stats and budget censoring."""
    return td_top_k(dbg, list(keywords), k, rmax, node_lists=node_lists,
                    stats=stats, aggregate=aggregate,
                    budget_seconds=budget_seconds)


def _naive_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
               *, node_lists: NodeLists = None,
               aggregate: AggregateSpec = "sum",
               budget_seconds: Optional[float] = None,
               stats: Optional[BaselineStats] = None
               ) -> Iterator[Community]:
    """The O(n^l) reference enumerator (materializes, then yields)."""
    del budget_seconds, stats
    return iter(naive_all(dbg, list(keywords), rmax,
                          node_lists=node_lists, aggregate=aggregate))


def _naive_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
                 rmax: float, *, node_lists: NodeLists = None,
                 aggregate: AggregateSpec = "sum",
                 budget_seconds: Optional[float] = None,
                 stats: Optional[BaselineStats] = None
                 ) -> List[Community]:
    """The reference top-k (full enumeration, then truncate)."""
    del budget_seconds, stats
    return naive_top_k(dbg, list(keywords), k, rmax,
                       node_lists=node_lists, aggregate=aggregate)


def default_registry() -> AlgorithmRegistry:
    """A fresh registry with the paper's four backends."""
    registry = AlgorithmRegistry()
    registry.register(AlgorithmSpec(
        "pd", _pd_all, _pd_top_k, supports_budget=False, streams=True,
        description="polynomial-delay enumeration (Algorithms 1/5)"))
    registry.register(AlgorithmSpec(
        "bu", _bu_all, _bu_top_k, supports_budget=True,
        description="bottom-up expansion baseline"))
    registry.register(AlgorithmSpec(
        "td", _td_all, _td_top_k, supports_budget=True,
        description="top-down per-node baseline"))
    registry.register(AlgorithmSpec(
        "naive", _naive_all, _naive_top_k, supports_budget=False,
        description="O(n^l) exhaustive reference"))
    return registry


#: The process-wide default registry every engine shares unless given
#: its own (tests register experimental backends on private copies).
REGISTRY = default_registry()
