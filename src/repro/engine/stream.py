"""Projected ranked streams: PDk translated back to ``G_D``.

:class:`ProjectedTopKStream` wraps a
:class:`~repro.core.comm_k.TopKStream` running on an Algorithm 6
projection and translates every answer to ``G_D`` id space using the
projection's memoized relabel map (built once, not per answer). When
given a :class:`~repro.engine.context.QueryContext` it accounts each
``Next()`` into the ``enumerate``/``translate`` stages and the
``communities`` counter, so interactive sessions are observable the
same way batch queries are.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional

from repro.core.comm_k import TopKStream
from repro.core.community import Community
from repro.core.projection import ProjectionResult
from repro.engine.context import QueryContext
from repro.engine.engine import translate_community
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph


class ProjectedTopKStream:
    """A :class:`TopKStream` over a projection, translated to ``G_D``."""

    def __init__(self, inner: TopKStream, projection: ProjectionResult,
                 dbg: DatabaseGraph,
                 context: Optional[QueryContext] = None) -> None:
        self._inner = inner
        self._projection = projection
        self._dbg = dbg
        self._context = context

    def next_community(self) -> Optional[Community]:
        """Next ranked community in ``G_D`` id space, or ``None``."""
        start = time.perf_counter()
        community = self._inner.next_community()
        if self._context is not None:
            self._context.add_time("enumerate",
                                   time.perf_counter() - start)
        if community is None:
            return None
        start = time.perf_counter()
        translated = translate_community(community, self._projection,
                                         self._dbg)
        if self._context is not None:
            self._context.add_time("translate",
                                   time.perf_counter() - start)
            self._context.count("communities")
        return translated

    def take(self, k: int) -> List[Community]:
        """Up to ``k`` further communities.

        Mirrors :meth:`TopKStream.take` exactly: ``k=0`` is a no-op,
        negative ``k`` is rejected, and a ``k`` past exhaustion
        returns the short remainder (empty once exhausted).
        """
        if k < 0:
            raise QueryError(f"k must be >= 0, got {k}")
        result = []
        for _ in range(k):
            community = self.next_community()
            if community is None:
                break
            result.append(community)
        return result

    more = take

    @property
    def emitted(self) -> int:
        """How many communities this stream has produced."""
        return self._inner.emitted

    @property
    def exhausted(self) -> bool:
        """True when the stream has no more communities."""
        return self._inner.exhausted

    def __iter__(self) -> Iterator[Community]:
        while True:
            community = self.next_community()
            if community is None:
                return
            yield community
