"""LRU projection cache with generation-based invalidation.

Algorithm 6 is the shared prefix of every indexed query: for a
repeated or interactive ``(keyword set, Rmax)`` pair the projection is
identical, yet the old facade re-ran it from scratch each call. The
paper's own measurements motivate caching — projections are 0.4–1.8 %
of ``G_D``, so a handful of retained
:class:`~repro.core.projection.ProjectionResult` objects is cheap
while saving the dominant per-query cost.

Correctness across index maintenance is handled with **generations**:
every cache entry records the generation token of the index it was
computed from, and the owning engine changes its generation whenever the
index changes (``apply_delta``, ``build_index``, or any assignment).
A lookup whose stored generation differs from the caller's current one
is treated as a miss and the stale entry is dropped immediately — no
scanning, no timestamps, no risk of serving pre-delta answers.

Eviction is plain LRU over an :class:`collections.OrderedDict`;
:class:`CacheStats` keeps the hit/miss/eviction counts the benchmark
harness and the stage report surface.

The cache is shared by every thread of the service's admission pool,
so both the ``OrderedDict`` *and* the counters mutate under one lock:
an unsynchronized ``stats.hits += 1`` is a read-modify-write that
drops increments under concurrency, which would make ``/metrics`` and
:attr:`CacheStats.hit_rate` drift from the true traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.projection import ProjectionResult
from repro.exceptions import QueryError

#: Cache keys: the keyword *set* (order never matters to Algorithm 6)
#: plus the query radius.
CacheKey = Tuple[FrozenSet[str], float]

#: Default number of retained projections per engine.
DEFAULT_CAPACITY = 32


@dataclass
class CacheStats:
    """Occupancy and traffic counters for one projection cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_drops: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat metric view for reports.

        Exports *every* number this class tracks — the five raw
        counters plus the derived ``lookups`` and ``hit_rate`` — so
        downstream exporters (the service's ``/metrics`` endpoint,
        bench reports) can surface them all without reaching into
        attributes. ``hit_rate`` is a ratio, not a counter; exporters
        that distinguish the two should treat it as a gauge.
        """
        return {
            "cache_hits": float(self.hits),
            "cache_misses": float(self.misses),
            "cache_evictions": float(self.evictions),
            "cache_invalidations": float(self.invalidations),
            "cache_stale_drops": float(self.stale_drops),
            "cache_lookups": float(self.lookups),
            "cache_hit_rate": float(self.hit_rate),
        }


class ProjectionCache:
    """Bounded LRU of ``(keyword set, rmax) -> ProjectionResult``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise QueryError(
                f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[int, ProjectionResult]]" \
            = OrderedDict()

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------
    def get(self, key: CacheKey,
            generation: str) -> Optional[ProjectionResult]:
        """The cached projection, or ``None`` on miss/stale entry.

        An entry built against an older index generation is dropped on
        sight: after :func:`repro.text.maintenance.apply_delta` the
        old projection may lack new nodes/edges entirely. Counter
        increments happen under the cache lock, so hit/miss/lookup
        totals stay exact under the threaded service.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            stored_generation, projection = entry
            if stored_generation != generation:
                del self._entries[key]
                self.stats.stale_drops += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return projection

    def put(self, key: CacheKey, generation: str,
            projection: ProjectionResult) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (generation, projection)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    # invalidation / inspection
    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop everything; returns how many entries were removed.

        The engine calls this when the index is *replaced* (not just
        grown), where generation comparison alone could collide — a
        rebuilt index restarts its own counter.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[CacheKey, ...]:
        """Current keys, LRU-first (diagnostics)."""
        with self._lock:
            return tuple(self._entries)
