"""The query engine: plan, project (with caching), run, translate.

:class:`QueryEngine` is the execution layer between the inverted
indexes and the paper's algorithms. One engine owns

* the database graph and (optionally) its
  :class:`~repro.text.inverted_index.CommunityIndex`;
* an :class:`~repro.engine.registry.AlgorithmRegistry` of backends
  sharing one invocation contract;
* a :class:`~repro.engine.cache.ProjectionCache` so repeated and
  interactive ``(keyword set, Rmax)`` queries skip Algorithm 6;
* a :class:`~repro.engine.results.ResultCache` so a repeated query
  skips the enumeration too — exact repeats are pure lookups,
  smaller-k queries slice the cached ranked prefix, larger-k queries
  resume the cached frontier and compute only the tail;
* a **generation** token, changed on every index change
  (``build_index``, ``apply_delta``, assignment, or snapshot swap),
  which stale-checks every cache entry and every open PDk session.

The generation is an opaque string, not a counter: in-memory changes
produce process-local ``g<epoch>`` tokens, while
:meth:`QueryEngine.swap_snapshot` adopts the *snapshot id* — a durable
content hash — so two workers serving the same published snapshot
agree on the generation, and swapping to a content-identical snapshot
is a no-op (the projection cache stays warm, open sessions stay
valid).

Queries capture ``(graph, index, generation)`` once at entry, so a
concurrent :meth:`~QueryEngine.swap_snapshot` never mixes artifacts
mid-query — in-flight queries finish on the graph they started on.

Execution is staged — resolve → project → enumerate → translate — and
each stage reports wall-clock and counters into the caller's
:class:`~repro.engine.context.QueryContext`, which is how both the
benchmark harness and ``repro.analysis`` observe a query now.

The :class:`~repro.core.search.CommunitySearch` facade is a thin
wrapper over this class; new infrastructure (sharding, batching,
async fan-out) should build against the engine directly.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import (
    Any,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.community import Community
from repro.core.comm_k import TopKStream
from repro.core.cost import AggregateSpec
from repro.core.projection import ProjectionResult
from repro.core.projection import project as run_projection
from repro.engine.cache import DEFAULT_CAPACITY, ProjectionCache
from repro.engine.context import QueryContext, ensure_context
from repro.engine.registry import REGISTRY, AlgorithmRegistry
from repro.engine.results import (
    DEFAULT_RESULT_CACHE_BYTES,
    CachedStream,
    ResultCache,
    ResultEntry,
    result_key,
)
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.snapshot.snapshot import Snapshot
from repro.snapshot.snapshot import load_snapshot as _load_snapshot
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import GraphDelta, apply_delta


def translate_community(community: Community,
                        projection: ProjectionResult,
                        dbg: DatabaseGraph) -> Community:
    """Projected ids -> ``G_D`` ids, re-inducing edges against ``G_D``.

    Uses the projection's memoized
    :attr:`~repro.core.projection.ProjectionResult.relabel_map`, so
    the ``{new: old}`` dict is built once per projection rather than
    once per answer. Edge re-induction restores Definition 2.1 exactly
    (see :mod:`repro.core.projection` for why ``E'`` may under-cover).
    """
    relabeled = community.relabel(projection.relabel_map)
    return Community(
        core=relabeled.core,
        cost=relabeled.cost,
        centers=relabeled.centers,
        pnodes=relabeled.pnodes,
        nodes=relabeled.nodes,
        edges=tuple(dbg.graph.induced_edges(relabeled.nodes)),
    )


class QueryEngine:
    """Executes :class:`~repro.engine.spec.QuerySpec` s on one graph."""

    def __init__(self, dbg: DatabaseGraph,
                 index: Optional[CommunityIndex] = None,
                 registry: Optional[AlgorithmRegistry] = None,
                 cache: Optional[ProjectionCache] = None,
                 cache_capacity: int = DEFAULT_CAPACITY,
                 results: Optional[ResultCache] = None,
                 result_cache_bytes: Optional[int] = None) -> None:
        self.dbg = dbg
        self.registry = registry if registry is not None else REGISTRY
        self.cache = (cache if cache is not None
                      else ProjectionCache(cache_capacity))
        self.results = (results if results is not None
                        else ResultCache(
                            DEFAULT_RESULT_CACHE_BYTES
                            if result_cache_bytes is None
                            else result_cache_bytes))
        self._lock = threading.Lock()
        self._epoch = 0
        self._generation = "g0"
        self._index = index
        self._snapshot_id: Optional[str] = None
        self._snapshot_loaded_at: Optional[float] = None
        self._snapshot_mode: Optional[str] = None
        self._mode_request: str = "copy"
        self._base_snapshot_id: Optional[str] = None
        self._deltas_applied = 0
        self._applied_lsn = 0

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, source: Union[str, Path, Snapshot],
                      verify: bool = True,
                      registry: Optional[AlgorithmRegistry] = None,
                      cache_capacity: int = DEFAULT_CAPACITY,
                      mode: str = "copy",
                      result_cache_bytes: Optional[int] = None,
                      wal_path: Optional[Union[str, Path, Any]] = None
                      ) -> "QueryEngine":
        """An engine serving a snapshot, generation = snapshot id.

        ``mode`` (``"copy"`` / ``"mmap"`` / ``"auto"``) selects how a
        *path* source is materialized — see
        :func:`repro.snapshot.load_snapshot`; it also becomes the
        engine's default for later :meth:`load_snapshot` calls. An
        already-loaded :class:`Snapshot` source is adopted as-is.

        ``wal_path`` (a path or an open
        :class:`~repro.wal.log.WriteAheadLog`) replays the log's
        pending deltas onto the freshly loaded snapshot before the
        engine is returned — the restart-recovery path; the engine
        comes up already converged with every acknowledged delta.
        """
        if isinstance(source, Snapshot):
            snapshot = source
            request = getattr(snapshot, "mode", "copy")
        else:
            snapshot = _load_snapshot(source, verify=verify,
                                      mode=mode)
            request = mode
        engine = cls(snapshot.dbg, snapshot.index, registry=registry,
                     cache_capacity=cache_capacity,
                     result_cache_bytes=result_cache_bytes)
        engine._generation = snapshot.id
        engine._snapshot_id = snapshot.id
        engine._base_snapshot_id = snapshot.id
        engine._snapshot_loaded_at = time.time()
        engine._snapshot_mode = getattr(snapshot, "mode", "copy")
        engine._mode_request = request
        if wal_path is not None:
            from repro.wal.log import replay
            replay(engine, wal_path)
        return engine

    def load_snapshot(self, path: Union[str, Path],
                      verify: bool = True,
                      mode: Optional[str] = None) -> Snapshot:
        """Load the snapshot at ``path`` and swap the engine onto it.

        ``mode=None`` re-uses the mode this engine was created with,
        so a reload broadcast keeps every worker in its configured
        materialization.
        """
        if mode is None:
            mode = self._mode_request
        snapshot = _load_snapshot(path, verify=verify, mode=mode)
        self.swap_snapshot(snapshot)
        return snapshot

    def swap_snapshot(self, snapshot: Snapshot) -> bool:
        """Atomically swap graph + index to a loaded snapshot.

        The swap happens under the engine lock, and queries capture
        their ``(graph, index, generation)`` once at entry — in-flight
        queries finish on the artifact they started with, new queries
        see the snapshot; nothing is dropped. The snapshot id becomes
        the generation, so cached projections and open PDk sessions
        from the previous artifact go stale (sessions observe 410
        Gone), while swapping to a *content-identical* snapshot is a
        no-op that keeps the cache warm. Returns ``True`` when the
        engine actually changed artifacts.
        """
        with self._lock:
            if self._generation == snapshot.id:
                self._snapshot_loaded_at = time.time()
                return False
            self.dbg = snapshot.dbg
            self._index = snapshot.index
            self._epoch += 1
            self._generation = snapshot.id
            self._snapshot_id = snapshot.id
            self._base_snapshot_id = snapshot.id
            self._deltas_applied = 0
            self._applied_lsn = 0
            self._snapshot_loaded_at = time.time()
            self._snapshot_mode = getattr(snapshot, "mode", "copy")
        self.cache.invalidate()
        self.results.invalidate()
        return True

    @property
    def snapshot_id(self) -> Optional[str]:
        """Id of the snapshot being served.

        ``None`` when the engine state was never loaded from a
        snapshot *or* has diverged from it (an in-memory
        ``build_index``/``apply_delta`` after the load).
        """
        return self._snapshot_id

    @property
    def snapshot_loaded_at(self) -> Optional[float]:
        """Epoch seconds of the last snapshot load/swap, if any."""
        return self._snapshot_loaded_at

    @property
    def snapshot_mode(self) -> Optional[str]:
        """Resolved materialization of the served snapshot
        (``"copy"`` or ``"mmap"``); ``None`` when the engine never
        loaded one."""
        return self._snapshot_mode

    # ------------------------------------------------------------------
    # index lifecycle — every change advances the generation
    # ------------------------------------------------------------------
    @property
    def index(self) -> Optional[CommunityIndex]:
        """The attached community index, if any."""
        return self._index

    @index.setter
    def index(self, index: Optional[CommunityIndex]) -> None:
        """Attach/replace the index, invalidating cached projections."""
        with self._lock:
            self._index = index
            self._epoch += 1
            self._generation = f"g{self._epoch}"
            self._snapshot_id = None
            self._snapshot_mode = None
            self._base_snapshot_id = None
            self._deltas_applied = 0
            self._applied_lsn = 0
        self.cache.invalidate()
        self.results.invalidate()

    @property
    def generation(self) -> str:
        """Opaque token naming the engine's current artifact.

        Changes on every index change; equals the snapshot id while
        serving an unmodified snapshot. Tags every cache entry and
        every open session.
        """
        return self._generation

    @property
    def generation_epoch(self) -> int:
        """Monotonic count of index changes (numeric, for gauges)."""
        return self._epoch

    def build_index(self, radius: float,
                    keywords: Optional[Sequence[str]] = None
                    ) -> CommunityIndex:
        """Build and attach the two inverted indexes for radius R."""
        self.index = CommunityIndex.build(self.dbg, radius, keywords)
        return self.index

    def apply_delta(self, delta: GraphDelta,
                    banks_reweight: bool = False,
                    lsn: Optional[int] = None
                    ) -> Tuple[DatabaseGraph, CommunityIndex]:
        """Grow the graph, update the index, evict stale projections.

        Delegates to :func:`repro.text.maintenance.apply_delta`, then
        swaps in the grown graph/index. The assignment changes the
        generation, so projections computed before the delta can never
        be served again — the cache-correctness property the
        maintenance property tests assert.

        ``lsn`` is the delta's WAL sequence number; applying is
        idempotent per LSN (a delta at or below :attr:`applied_lsn`
        is a no-op), which makes the two delivery paths — a pool
        broadcast and a respawned worker's WAL replay — safe to race.
        The base snapshot lineage survives the delta: the engine is
        ``dirty`` (its generation no longer names a snapshot) but
        :attr:`base_snapshot_id` still records which artifact the
        deltas grew from, anchoring WAL replay and prune protection.
        """
        if lsn is not None and lsn <= self._applied_lsn:
            return self.dbg, self.index
        if self.index is None:
            raise QueryError(
                "apply_delta needs an attached index; call "
                "build_index(radius=...) first")
        new_dbg, new_index = apply_delta(self.index, delta,
                                         banks_reweight)
        base = self._base_snapshot_id
        applied = self._deltas_applied
        self.dbg = new_dbg
        self.index = new_index          # changes generation, evicts
        self._base_snapshot_id = base
        self._deltas_applied = applied + 1
        if lsn is not None:
            self._applied_lsn = lsn
        return new_dbg, new_index

    @property
    def dirty(self) -> bool:
        """``True`` when in-memory deltas have diverged the engine
        from the snapshot it loaded (restart would lose them without
        a WAL)."""
        return self._deltas_applied > 0

    @property
    def deltas_applied(self) -> int:
        """Deltas applied since the last snapshot load/swap."""
        return self._deltas_applied

    @property
    def base_snapshot_id(self) -> Optional[str]:
        """The snapshot the current state grew from — still set when
        :attr:`snapshot_id` nulls out after a delta."""
        return self._base_snapshot_id

    @property
    def applied_lsn(self) -> int:
        """Highest WAL LSN applied (0 when none carried an LSN)."""
        return self._applied_lsn

    def _capture(self) -> Tuple[DatabaseGraph,
                                Optional[CommunityIndex], str]:
        """One consistent ``(graph, index, generation)`` observation."""
        with self._lock:
            return self.dbg, self._index, self._generation

    # ------------------------------------------------------------------
    # projection (Algorithm 6), cached
    # ------------------------------------------------------------------
    def project(self, keywords: Sequence[str], rmax: float,
                context: Optional[QueryContext] = None,
                use_cache: bool = True) -> ProjectionResult:
        """The query's projection, from cache when possible.

        Counters: ``projection_cache_hits`` / ``projection_cache_misses``
        record cache traffic, ``projection_runs`` counts actual
        Algorithm 6 executions — a repeated query shows ``runs == 1``
        however many times it is asked.
        """
        _, index, generation = self._capture()
        return self._project(index, generation, keywords, rmax,
                             context, use_cache)

    def _project(self, index: Optional[CommunityIndex],
                 generation: str, keywords: Sequence[str],
                 rmax: float, context: Optional[QueryContext],
                 use_cache: bool = True) -> ProjectionResult:
        """Projection against an already-captured index/generation."""
        ctx = ensure_context(context)
        if index is None:
            raise QueryError(
                "no index built; call build_index(radius=...) first or "
                "query with use_projection=False")
        with ctx.stage("resolve"):
            for keyword in keywords:
                index.require_keyword(keyword)
        key = (frozenset(keywords), float(rmax))
        if use_cache:
            cached = self.cache.get(key, generation)
            if cached is not None:
                ctx.count("projection_cache_hits")
                return cached
            ctx.count("projection_cache_misses")
        with ctx.stage("project"):
            projection = run_projection(index, list(keywords), rmax)
        ctx.count("projection_runs")
        if use_cache:
            self.cache.put(key, generation, projection)
        return projection

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def iter_all(self, spec: QuerySpec,
                 context: Optional[QueryContext] = None
                 ) -> Iterator[Community]:
        """Streaming COMM-all through the registered backend.

        Validation, projection and backend startup happen eagerly —
        only the enumeration itself is lazy — so a bad algorithm name
        or keyword fails at the call site, not on first ``next()``.
        """
        if spec.mode != "all":
            raise QueryError(
                f"iter_all needs an 'all' spec, got {spec.mode!r}")
        ctx = ensure_context(context)
        backend = self.registry.get(spec.algorithm)
        graph, node_lists, projection, origin = \
            self._query_graph(spec, ctx)
        results = iter(backend.run_all(
            graph, spec.keywords, spec.rmax, node_lists=node_lists,
            aggregate=spec.aggregate,
            budget_seconds=spec.budget_seconds, stats=ctx.baseline))
        return self._drive(results, projection, origin, ctx)

    def _drive(self, results: Iterator[Community],
               projection: Optional[ProjectionResult],
               origin: DatabaseGraph,
               ctx: QueryContext) -> Iterator[Community]:
        """Pump a backend iterator, timing enumerate/translate.

        ``origin`` is the full graph captured when the query started;
        translation must use it (not ``self.dbg``, which a concurrent
        snapshot swap may have replaced mid-enumeration).
        """
        while True:
            start = time.perf_counter()
            try:
                community = next(results)
            except StopIteration:
                ctx.add_time("enumerate", time.perf_counter() - start)
                return
            ctx.add_time("enumerate", time.perf_counter() - start)
            if projection is not None:
                with ctx.stage("translate"):
                    community = translate_community(
                        community, projection, origin)
            ctx.count("communities")
            yield community

    def run_all(self, spec: QuerySpec,
                context: Optional[QueryContext] = None
                ) -> List[Community]:
        """Materialized COMM-all, result-cached per generation."""
        ctx = ensure_context(context)
        if not self._result_cacheable(spec):
            return list(self.iter_all(spec, ctx))
        _, _, generation = self._capture()
        key = result_key(spec.keywords, spec.rmax, spec.algorithm,
                         spec.aggregate, "all")
        served = self.results.fetch(key, generation, None, ctx)
        if served is not None:
            return served
        results = list(self.iter_all(spec, ctx))
        self.results.install(ResultEntry(
            key, generation, prefix=results, complete=True))
        return results

    def top_k(self, spec: QuerySpec,
              context: Optional[QueryContext] = None
              ) -> List[Community]:
        """COMM-k through the registered backend.

        Result-cached: an exact repeat of a cached spec is a pure
        lookup, a smaller ``k`` slices the cached ranked prefix, and a
        larger ``k`` resumes the retained stream (``pd``) to compute
        only the tail — see :mod:`repro.engine.results`.
        """
        if spec.mode != "topk":
            raise QueryError(
                f"top_k needs a 'topk' spec, got {spec.mode!r}")
        ctx = ensure_context(context)
        backend = self.registry.get(spec.algorithm)
        captured = self._capture()
        dbg, index, generation = captured
        cacheable = self._result_cacheable(spec)
        key = ""
        if cacheable:
            key = result_key(spec.keywords, spec.rmax, spec.algorithm,
                             spec.aggregate, "topk")
            served = self.results.fetch(key, generation, spec.k, ctx)
            if served is not None:
                return served
        graph, node_lists, projection, origin = \
            self._query_graph(spec, ctx, captured=captured)
        if cacheable and backend.streams:
            # Enumerate through a resumable stream so the cache keeps
            # the frontier: a later, larger k computes only the tail.
            # Byte-identical to the registry's run_top_k — which is
            # literally TopKStream(...).take(k).
            with ctx.stage("enumerate"):
                inner = TopKStream(graph, list(spec.keywords),
                                   spec.rmax, node_lists=node_lists,
                                   aggregate=spec.aggregate)
            stream = inner
            if projection is not None:
                from repro.engine.stream import ProjectedTopKStream
                stream = ProjectedTopKStream(inner, projection, origin,
                                             context=None)
            entry = ResultEntry(key, generation, stream=stream)
            results = self.results.materialize(entry, spec.k, ctx)
            self.results.install(entry)
            return results
        with ctx.stage("enumerate"):
            results = backend.run_top_k(
                graph, spec.keywords, spec.k, spec.rmax,
                node_lists=node_lists, aggregate=spec.aggregate,
                budget_seconds=spec.budget_seconds, stats=ctx.baseline)
        if projection is not None:
            with ctx.stage("translate"):
                results = [
                    translate_community(c, projection, origin)
                    for c in results]
        ctx.count("communities", len(results))
        if cacheable:
            # A materialized (non-streaming) answer still serves exact
            # repeats and smaller-k slices; a short answer is complete.
            self.results.install(ResultEntry(
                key, generation, prefix=results,
                complete=len(results) < spec.k))
        return results

    def execute(self, spec: QuerySpec,
                context: Optional[QueryContext] = None
                ) -> List[Community]:
        """Run any spec to a materialized answer list."""
        if spec.mode == "topk":
            return self.top_k(spec, context)
        return self.run_all(spec, context)

    def top_k_stream(self, keywords: Sequence[str], rmax: float,
                     use_projection: Optional[bool] = None,
                     aggregate: AggregateSpec = "sum",
                     context: Optional[QueryContext] = None
                     ) -> Union[TopKStream, "ProjectedTopKStream",
                                CachedStream]:
        """A resumable PDk stream (``take(k)`` then ``more(n)``).

        With the result cache enabled the stream is a
        :class:`~repro.engine.results.CachedStream` view over the
        shared cache entry for this query: a session opened after a
        warm ``/query`` (or another session) serves the cached prefix
        with zero enumeration, and enlargements past the frontier
        extend the shared entry for everyone.
        """
        ctx = ensure_context(context)
        spec = QuerySpec(tuple(keywords), rmax, mode="all",
                         aggregate=aggregate,
                         use_projection=use_projection)
        captured = self._capture()
        _, _, generation = captured
        cacheable = self.results.enabled
        key = result_key(spec.keywords, spec.rmax, "pd",
                         spec.aggregate, "topk")
        if cacheable:
            entry = self.results.attach(key, generation, ctx)
            if entry is not None:
                return CachedStream(self.results, entry, context=ctx)
        graph, node_lists, projection, origin = \
            self._query_graph(spec, ctx, captured=captured)
        with ctx.stage("enumerate"):
            inner = TopKStream(graph, list(spec.keywords), rmax,
                               node_lists=node_lists,
                               aggregate=aggregate)
        from repro.engine.stream import ProjectedTopKStream
        if not cacheable:
            if projection is None:
                return inner
            return ProjectedTopKStream(inner, projection, origin,
                                       context=ctx)
        stream = inner
        if projection is not None:
            stream = ProjectedTopKStream(inner, projection, origin,
                                         context=None)
        entry = ResultEntry(key, generation, stream=stream)
        self.results.install(entry)
        return CachedStream(self.results, entry, context=ctx)

    def warm(self, specs: Sequence[QuerySpec]) -> int:
        """Run specs so their answers are cached; returns how many
        actually computed (the rest were already warm or failed
        validation — an unknown keyword after a reload is skipped, not
        fatal)."""
        warmed = 0
        for spec in specs:
            if not self._result_cacheable(spec):
                continue
            ctx = QueryContext()
            try:
                self.execute(spec, ctx)
            except QueryError:
                continue
            if ctx.counter("result_cache_hits") == 0:
                warmed += 1
        return warmed

    # ------------------------------------------------------------------
    def _result_cacheable(self, spec: QuerySpec) -> bool:
        """Whether this spec's answer may be cached and served.

        Budget-capable backends (bu/td) are excluded outright: their
        answers can be deadline-censored and they fill pool baseline
        stats — neither survives being replayed from a cache. The
        polynomial-delay backends (pd, naive) ignore budgets, so their
        answers are pure functions of ``(generation, spec)``.
        """
        if not self.results.enabled:
            return False
        return not self.registry.get(spec.algorithm).supports_budget

    def _query_graph(self, spec: QuerySpec, ctx: QueryContext,
                     captured: Optional[Tuple[DatabaseGraph,
                                              Optional[CommunityIndex],
                                              str]] = None):
        """Pick the execution graph: projection, or ``G_D`` directly.

        Captures the engine state once (or adopts the caller's
        ``captured`` triple — the result-cache paths capture early so
        the entry's generation tag matches the artifacts the answer
        was computed on), so everything downstream — projection,
        enumeration, translation — runs against one consistent
        ``(graph, index, generation)`` even if a snapshot swap lands
        mid-query. Returns
        ``(graph, node_lists, projection, origin_graph)``.
        """
        dbg, index, generation = (captured if captured is not None
                                  else self._capture())
        use_projection = spec.use_projection
        if use_projection is None:
            use_projection = index is not None
        if use_projection:
            projection = self._project(index, generation,
                                       spec.keywords, spec.rmax, ctx)
            return (projection.subgraph, projection.node_lists,
                    projection, dbg)
        node_lists = None
        if index is not None:
            with ctx.stage("resolve"):
                for keyword in spec.keywords:
                    index.require_keyword(keyword)
                node_lists = [
                    index.nodes(kw) for kw in spec.keywords]
        return dbg, node_lists, None, dbg
