"""Generation-keyed result cache with ranked-prefix reuse.

The projection cache (:mod:`repro.engine.cache`) memoizes Algorithm 6,
but every query still re-ran the enumeration itself. Snapshots are
immutable between reloads, so for a given generation the answer to a
normalized spec is a constant — :class:`ResultCache` stores it:

* an **exact repeat** is a pure lookup (no enumeration at all);
* a **smaller k** slices the cached prefix;
* a **larger k** (or a session enlargement) resumes the retained
  :class:`~repro.core.comm_k.TopKStream` from the cached frontier and
  computes only the tail — the cache keeps the live stream next to the
  materialized prefix until it is exhausted.

Keys are ``(generation, canonical spec key)``; the canonical key is
:func:`result_key` — keywords (already sorted + casefolded by
:class:`~repro.engine.spec.QuerySpec`), mode, rmax (repr-stable
float), algorithm and aggregate, but **not** ``k``: all k values of
one ranked query share a single entry, which is what makes prefix
reuse possible. Invalidation is by generation only — the engine's
string generation tokens (snapshot content hashes) make a swap a
free, exact invalidation with no TTL guessing; a stale entry is
dropped on sight, exactly like the projection cache.

Memory is bounded in **bytes**, not entries: every cached community
is charged an estimated serialized size (:func:`community_nbytes`)
and eviction is LRU until the total fits ``max_bytes``
(``serve --result-cache-mb``). Entries evicted while a session still
holds them keep working — eviction only forgets them for future
lookups.

The ``results.cache.lookup`` failpoint (:mod:`repro.faults`) fires
inside :meth:`ResultCache.lookup`; the fetch paths catch everything
and degrade to a recomputed answer, so a poisoned cache can cost
latency but never correctness.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.core.community import Community
from repro.engine.context import QueryContext, ensure_context
from repro.exceptions import QueryError

#: Default result-cache budget per engine: 64 MiB of estimated
#: serialized communities (the serve CLI exposes ``--result-cache-mb``).
DEFAULT_RESULT_CACHE_BYTES = 64 * 1024 * 1024

#: Fixed per-entry overhead charged on top of the communities
#: (key string, bookkeeping, OrderedDict slot).
ENTRY_OVERHEAD_BYTES = 512

#: Estimated serialized size of one community that has no nodes/edges.
_COMMUNITY_BASE_BYTES = 96


def community_nbytes(community: Community) -> int:
    """Estimated serialized size of one community, in bytes.

    Used only for LRU budgeting — it tracks the JSON envelope size
    (ids ~8 digits, edges carry a float weight) without actually
    serializing, so cache accounting never touches the service layer.
    """
    ids = (len(community.core) + len(community.centers)
           + len(community.pnodes) + len(community.nodes))
    return _COMMUNITY_BASE_BYTES + 12 * ids + 40 * len(community.edges)


def result_key(keywords: Sequence[str], rmax: float, algorithm: str,
               aggregate: str, mode: str) -> str:
    """Canonical **k-independent** identity of one ranked/all query.

    The k-full variant lives on :meth:`QuerySpec.cache_key`; this one
    drops ``k`` so every k of the same ranked query shares one cached
    prefix. ``repr(float(rmax))`` makes ``0.5`` and ``0.50`` collide.
    """
    return (f"kw={','.join(keywords)}|mode={mode}"
            f"|rmax={float(rmax)!r}|alg={algorithm}|agg={aggregate}")


@dataclass
class ResultCacheStats:
    """Traffic counters for one result cache.

    ``hits`` are answers served entirely from a cached prefix,
    ``extensions`` answers that resumed the cached frontier for the
    tail, ``misses`` everything that fell through to a full
    recomputation (absent, stale, or unextendable entries).
    ``errors`` counts lookups that raised (the chaos failpoint) and
    degraded to a recompute.
    """

    hits: int = 0
    misses: int = 0
    extensions: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_drops: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        """Total fetch/attach decisions taken."""
        return self.hits + self.misses + self.extensions

    @property
    def hit_rate(self) -> float:
        """Prefix-served answers over lookups (extensions count half
        a hit is overthinking it — they count as hits here: the cache
        did save the prefix work)."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.extensions) / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """Flat metric view (``result_cache_*``) for /metrics and
        reports; ``hit_rate`` is a ratio — exporters should treat it
        as a gauge."""
        return {
            "result_cache_hits": float(self.hits),
            "result_cache_misses": float(self.misses),
            "result_cache_extensions": float(self.extensions),
            "result_cache_evictions": float(self.evictions),
            "result_cache_invalidations": float(self.invalidations),
            "result_cache_stale_drops": float(self.stale_drops),
            "result_cache_errors": float(self.errors),
            "result_cache_lookups": float(self.lookups),
            "result_cache_hit_rate": float(self.hit_rate),
        }


class ResultEntry:
    """One cached answer: a materialized ranked prefix + live frontier.

    ``prefix`` holds the first ``len(prefix)`` communities of the
    ranked stream in order; ``stream`` is the retained resumable
    stream positioned exactly past the prefix (``None`` once
    exhausted or for answers that cannot be extended, e.g. a
    materialized non-streaming backend); ``complete`` means the
    prefix is the whole answer. All three mutate under ``lock`` —
    entry locks nest *inside* nothing and may take the owning cache's
    lock for byte accounting, never the reverse.
    """

    __slots__ = ("key", "generation", "prefix", "stream", "complete",
                 "nbytes", "lock")

    def __init__(self, key: str, generation: str,
                 stream=None,
                 prefix: Optional[List[Community]] = None,
                 complete: bool = False) -> None:
        self.key = key
        self.generation = generation
        self.prefix: List[Community] = (list(prefix)
                                        if prefix is not None else [])
        self.stream = stream
        self.complete = complete
        self.nbytes = ENTRY_OVERHEAD_BYTES + sum(
            community_nbytes(c) for c in self.prefix)
        self.lock = threading.Lock()


class ResultCache:
    """Byte-bounded LRU of ``canonical key -> ResultEntry``.

    ``max_bytes <= 0`` builds a disabled cache: every probe misses
    without counting, every install is a no-op — the engine keeps one
    unconditional attribute instead of ``Optional`` plumbing.
    """

    def __init__(self,
                 max_bytes: int = DEFAULT_RESULT_CACHE_BYTES) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self.enabled = self.max_bytes > 0
        self.stats = ResultCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ResultEntry]" = OrderedDict()
        self._bytes = 0

    # ------------------------------------------------------------------
    # raw lookup / install
    # ------------------------------------------------------------------
    def lookup(self, key: str, generation: str
               ) -> Optional[ResultEntry]:
        """The live entry for ``key``, or ``None`` on miss/stale.

        An entry tagged with another generation is dropped on sight —
        after a snapshot swap the old graph's communities must never
        be served again. The ``results.cache.lookup`` failpoint fires
        here; callers (``fetch``/``attach``) catch and degrade.
        """
        faults.hit("results.cache.lookup")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.generation != generation:
                del self._entries[key]
                self._bytes -= entry.nbytes
                self.stats.stale_drops += 1
                return None
            self._entries.move_to_end(key)
            return entry

    def install(self, entry: ResultEntry) -> None:
        """Insert (or replace) an entry, evicting LRU past the
        byte budget."""
        if not self.enabled:
            return
        with self._lock:
            old = self._entries.pop(entry.key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[entry.key] = entry
            self._bytes += entry.nbytes
            self._evict_locked()

    def discard(self, key: str) -> None:
        """Forget one entry (poisoned-lookup recovery path)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._bytes -= entry.nbytes

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def fetch(self, key: str, generation: str, k: Optional[int],
              context: Optional[QueryContext] = None
              ) -> Optional[List[Community]]:
        """A materialized answer from cache, or ``None`` to recompute.

        ``k`` asks for a ranked prefix (sliced or frontier-extended as
        needed); ``k=None`` asks for a complete COMM-all answer and
        only serves entries marked ``complete``. Counts
        ``result_cache_{hits,extensions,misses,errors}`` into both the
        cache stats and the caller's context; any exception (the chaos
        failpoint, a poisoned entry) is swallowed into a miss.
        """
        ctx = ensure_context(context)
        if not self.enabled:
            return None
        try:
            entry = self.lookup(key, generation)
        except Exception:
            self._count_error(ctx)
            return None
        if entry is None:
            self._count_miss(ctx)
            return None
        try:
            served, extended = self._serve(entry, k, ctx)
        except Exception:
            self.discard(key)
            self._count_error(ctx)
            return None
        if served is None:
            self._count_miss(ctx)
            return None
        with self._lock:
            if extended:
                self.stats.extensions += 1
            else:
                self.stats.hits += 1
        ctx.count("result_cache_extensions" if extended
                  else "result_cache_hits")
        return served

    def attach(self, key: str, generation: str,
               context: Optional[QueryContext] = None
               ) -> Optional[ResultEntry]:
        """The entry a new stream view should share, if one exists.

        The stream counterpart of :meth:`fetch`: a hit means the
        caller's :class:`CachedStream` serves the cached prefix before
        any enumeration happens (the session-reuse path)."""
        ctx = ensure_context(context)
        if not self.enabled:
            return None
        try:
            entry = self.lookup(key, generation)
        except Exception:
            self._count_error(ctx)
            return None
        if entry is None:
            self._count_miss(ctx)
            return None
        with self._lock:
            self.stats.hits += 1
        ctx.count("result_cache_hits")
        return entry

    def materialize(self, entry: ResultEntry, k: int,
                    context: Optional[QueryContext] = None
                    ) -> List[Community]:
        """Drive a freshly installed entry's stream out to ``k`` and
        return the prefix — the engine's cold-path pump (counts no
        cache traffic; the miss was already recorded)."""
        ctx = ensure_context(context)
        with entry.lock:
            if len(entry.prefix) < k and entry.stream is not None:
                self._extend_locked(entry, k, ctx)
            return entry.prefix[:k]

    def _serve(self, entry: ResultEntry, k: Optional[int],
               ctx: QueryContext
               ) -> Tuple[Optional[List[Community]], bool]:
        """Serve under the entry lock; ``(None, False)`` means the
        entry cannot satisfy the request (recompute)."""
        with entry.lock:
            if k is None:
                if not entry.complete:
                    return None, False
                served = list(entry.prefix)
                ctx.count("communities", len(served))
                return served, False
            have = len(entry.prefix)
            if have >= k or entry.complete:
                served = entry.prefix[:k]
                ctx.count("communities", len(served))
                return served, False
            if entry.stream is None:
                return None, False
            self._extend_locked(entry, k, ctx)
            served = entry.prefix[:k]
            # The tail was counted during extension; charge the
            # prefix-served head here.
            ctx.count("communities", min(have, len(served)))
            return served, True

    def _extend_locked(self, entry: ResultEntry, target: int,
                       ctx: QueryContext) -> int:
        """Resume the retained stream until ``target`` communities are
        materialized (or it runs dry). Caller holds ``entry.lock``.

        Enumeration/translation time and per-community counts land in
        the *extender's* context — the consumer who needed the tail
        pays for it; later consumers get it from the prefix for free.
        """
        stream = entry.stream
        attached = hasattr(stream, "_context")
        if attached:
            previous = stream._context
            stream._context = ctx
        added = 0
        added_bytes = 0
        try:
            while len(entry.prefix) < target:
                if attached:
                    community = stream.next_community()
                else:
                    start = time.perf_counter()
                    community = stream.next_community()
                    ctx.add_time("enumerate",
                                 time.perf_counter() - start)
                    if community is not None:
                        ctx.count("communities")
                if community is None:
                    entry.complete = True
                    entry.stream = None
                    break
                entry.prefix.append(community)
                added += 1
                added_bytes += community_nbytes(community)
            if entry.stream is not None and stream.exhausted:
                entry.complete = True
                entry.stream = None
        finally:
            if attached and entry.stream is not None:
                stream._context = previous
        if added_bytes:
            entry.nbytes += added_bytes
            with self._lock:
                if self._entries.get(entry.key) is entry:
                    self._bytes += added_bytes
                    self._evict_locked()
        return added

    # ------------------------------------------------------------------
    # invalidation / accounting
    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop everything (generation swap); returns entries removed."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def _evict_locked(self) -> None:
        while self._bytes > self.max_bytes and self._entries:
            _, victim = self._entries.popitem(last=False)
            self._bytes -= victim.nbytes
            self.stats.evictions += 1

    def _count_miss(self, ctx: QueryContext) -> None:
        with self._lock:
            self.stats.misses += 1
        ctx.count("result_cache_misses")

    def _count_error(self, ctx: QueryContext) -> None:
        with self._lock:
            self.stats.errors += 1
        ctx.count("result_cache_errors")

    @property
    def bytes(self) -> int:
        """Estimated serialized bytes currently retained."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[str, ...]:
        """Current keys, LRU-first (diagnostics)."""
        with self._lock:
            return tuple(self._entries)

    def as_dict(self) -> Dict[str, float]:
        """Stats plus occupancy gauges, ready for /metrics and
        /healthz (``result_cache_bytes``/``entries``/``capacity``)."""
        flat = self.stats.as_dict()
        with self._lock:
            flat["result_cache_bytes"] = float(self._bytes)
            flat["result_cache_entries"] = float(len(self._entries))
        flat["result_cache_capacity_bytes"] = float(self.max_bytes)
        return flat


class CachedStream:
    """A per-consumer cursor over one shared :class:`ResultEntry`.

    Several sessions (and repeated ``/query`` calls) share a single
    entry: each view serves ``prefix[cursor:]`` with **zero**
    enumeration work, and only the view that walks past the frontier
    pays to extend it — everyone after rides the longer prefix.
    Mirrors the :class:`~repro.core.comm_k.TopKStream` surface
    (``take``/``more``/``next_community``/``emitted``/``exhausted``).
    """

    def __init__(self, cache: ResultCache, entry: ResultEntry,
                 context: Optional[QueryContext] = None) -> None:
        self._cache = cache
        self._entry = entry
        self._context = context
        self._cursor = 0

    def next_community(self) -> Optional[Community]:
        """Next ranked community, or ``None`` once exhausted."""
        batch = self.take(1)
        return batch[0] if batch else None

    def take(self, k: int) -> List[Community]:
        """Up to ``k`` further communities (cached prefix first)."""
        if k < 0:
            raise QueryError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        entry = self._entry
        ctx = ensure_context(self._context)
        target = self._cursor + k
        with entry.lock:
            have = len(entry.prefix)
            if (target > have and not entry.complete
                    and entry.stream is not None):
                added = self._cache._extend_locked(entry, target, ctx)
                if added:
                    with self._cache._lock:
                        self._cache.stats.extensions += 1
                    ctx.count("result_cache_extensions")
            end = min(target, len(entry.prefix))
            batch = entry.prefix[self._cursor:end]
            from_prefix = max(0, min(have, end) - self._cursor)
        if from_prefix:
            ctx.count("communities", from_prefix)
        self._cursor += len(batch)
        return batch

    more = take

    @property
    def emitted(self) -> int:
        """Communities this view has produced (not the shared total)."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True when this view has consumed the complete answer."""
        entry = self._entry
        with entry.lock:
            if self._cursor < len(entry.prefix):
                return False
            if entry.complete:
                return True
            stream = entry.stream
            return stream is not None and stream.exhausted

    def __iter__(self):
        while True:
            community = self.next_community()
            if community is None:
                return
            yield community
