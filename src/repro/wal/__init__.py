"""Durable delta write-ahead log (crash-safe online ingestion).

Layout:

* :mod:`repro.wal.records` — the frame codec (length + CRC32 + JSON),
  the ``GraphDelta`` wire form, and the untrusted-input validator
  :func:`parse_delta`;
* :mod:`repro.wal.log` — :class:`WriteAheadLog` (append path, fsync
  policies, torn-tail recovery) and the read-side helpers
  (:func:`read_wal`, :func:`pending_deltas`, :func:`replay`,
  :func:`protected_snapshots`);
* :mod:`repro.wal.compact` — :class:`Compactor`, folding accumulated
  deltas into a freshly published snapshot and hot-swapping it in.

See OPERATIONS.md ("Online ingestion") for the operator story.
"""

from repro.wal.compact import DEFAULT_COMPACT_INTERVAL, Compactor
from repro.wal.log import (
    DEFAULT_BATCH_RECORDS,
    FSYNC_POLICIES,
    WalTruncationWarning,
    WriteAheadLog,
    base_snapshot,
    folded_lsn,
    pending_deltas,
    protected_snapshots,
    read_wal,
    replay,
)
from repro.wal.records import (
    HEADER,
    MAX_RECORD_BYTES,
    RECORD_TYPES,
    WalScan,
    decode_payload,
    delta_from_wire,
    delta_to_wire,
    encode_record,
    parse_delta,
    scan_records,
)

__all__ = [
    "DEFAULT_BATCH_RECORDS",
    "DEFAULT_COMPACT_INTERVAL",
    "FSYNC_POLICIES",
    "HEADER",
    "MAX_RECORD_BYTES",
    "RECORD_TYPES",
    "Compactor",
    "WalScan",
    "WalTruncationWarning",
    "WriteAheadLog",
    "base_snapshot",
    "decode_payload",
    "delta_from_wire",
    "delta_to_wire",
    "encode_record",
    "folded_lsn",
    "parse_delta",
    "pending_deltas",
    "protected_snapshots",
    "read_wal",
    "replay",
    "scan_records",
]
