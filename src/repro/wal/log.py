"""The durable delta write-ahead log: append, recover, replay.

:class:`WriteAheadLog` is the write side. Every acknowledged
``GraphDelta`` is framed (see :mod:`repro.wal.records`), stamped with
the next LSN and the base snapshot id, appended, and flushed — with
``fsync`` per the configured policy — *before* the engine applies it.
A restart therefore reconstructs exactly the acknowledged state:

``always``
    one ``fsync`` per append. An acknowledged delta survives kill -9
    *and* power loss; the slowest policy.
``batch``
    flush per append, ``fsync`` every ``batch_records`` appends (and
    on checkpoint/truncate/close). kill -9 still loses nothing that
    was flushed — OS page cache survives process death — but power
    loss may drop up to one batch of acknowledged deltas.
``off``
    flush only. Same kill -9 story, no power-loss story; for bulk
    backfills and benchmarks.

Recovery on open distinguishes the two failure shapes precisely: a
*torn tail* (short or CRC-failing **final** frame — the one crash an
append can suffer) is truncated with a :class:`WalTruncationWarning`;
damage anywhere before an intact record raises
:class:`~repro.exceptions.WalCorruptionError`, because repairing it
would silently drop acknowledged writes.

The read side is module functions over a record list or a path —
:func:`read_wal`, :func:`pending_deltas`, :func:`replay` — used by
pool workers (which replay the suffix past their snapshot without
opening the file for writing), by startup recovery
(``QueryEngine.from_snapshot(wal_path=...)``), and by
``SnapshotStore.prune`` (which must keep :func:`protected_snapshots`).

Replay correctness leans on one invariant: the log is a **linear
history** from its first base snapshot. A ``checkpoint`` record says
"snapshot S materializes every delta with ``lsn <= folded``", so an
engine serving S replays exactly the deltas past ``folded``, and an
engine serving an *older* snapshot in the same history replays from
its own fold point — both land on the identical current state. A
snapshot the log has never heard of is a :class:`~repro.exceptions.
WalError`: replaying someone else's history onto it would corrupt it.
"""

from __future__ import annotations

import os
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Union

from repro import faults
from repro.exceptions import WalError
from repro.text.maintenance import GraphDelta
from repro.wal.records import (
    delta_from_wire,
    delta_to_wire,
    encode_record,
    scan_records,
)

#: Accepted values for the append-path durability policy.
FSYNC_POLICIES = ("always", "batch", "off")

#: ``batch`` policy: fsync once per this many appends.
DEFAULT_BATCH_RECORDS = 16

PathLike = Union[str, Path]
WalSource = Union[PathLike, "WriteAheadLog", List[Dict[str, Any]]]


class WalTruncationWarning(UserWarning):
    """A torn tail was truncated while opening a WAL for writing."""


class WriteAheadLog:
    """Append-only framed record log with crash recovery on open."""

    def __init__(self, path: PathLike, fsync: str = "always",
                 batch_records: int = DEFAULT_BATCH_RECORDS) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}")
        if batch_records < 1:
            raise WalError(
                f"batch_records must be >= 1, got {batch_records}")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.batch_records = batch_records
        #: Lifetime counters, exported as ``repro_wal_*`` metrics.
        self.appends = 0
        self.fsyncs = 0
        self.truncations = 0
        self.replayed = 0
        self._lock = threading.RLock()
        self._unsynced = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = self.path.read_bytes() if self.path.exists() else b""
        scan = scan_records(data)       # raises on mid-stream damage
        if scan.torn is not None:
            warnings.warn(
                f"WAL {self.path}: torn tail ({scan.torn}); "
                f"truncating {len(data) - scan.good_bytes} bytes to "
                f"the last intact record",
                WalTruncationWarning, stacklevel=2)
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            self.truncations += 1
        self._records: List[Dict[str, Any]] = scan.records
        self._lsn = (scan.records[-1]["lsn"] if scan.records else 0)
        self._bytes = scan.good_bytes
        self._file = open(self.path, "ab")

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def _append(self, payload: Dict[str, Any]) -> int:
        with self._lock:
            if self._file.closed:
                raise WalError(f"WAL {self.path} is closed")
            faults.hit("wal.append")
            lsn = self._lsn + 1
            record = dict(payload, lsn=lsn)
            frame = encode_record(record)
            self._file.write(frame)
            self._file.flush()
            self._lsn = lsn
            self._bytes += len(frame)
            self._records.append(record)
            self.appends += 1
            if self.fsync_policy == "always":
                self._fsync_locked()
            elif self.fsync_policy == "batch":
                self._unsynced += 1
                if self._unsynced >= self.batch_records:
                    self._fsync_locked()
            return lsn

    def _fsync_locked(self) -> None:
        faults.hit("wal.fsync")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0
        self.fsyncs += 1

    def append_delta(self, delta: GraphDelta,
                     base: Optional[str],
                     banks_reweight: bool = False) -> int:
        """Log one delta against base snapshot ``base``; returns its
        LSN. This MUST happen before the engine applies the delta —
        WAL-before-apply is the whole durability argument."""
        return self._append({
            "type": "delta",
            "base": base,
            "banks_reweight": bool(banks_reweight),
            "delta": delta_to_wire(delta),
        })

    def append_checkpoint(self, snapshot_id: str, folded: int) -> int:
        """Log that ``snapshot_id`` materializes every delta with
        ``lsn <= folded`` — the new replay base."""
        lsn = self._append({"type": "checkpoint", "base": snapshot_id,
                            "snapshot": snapshot_id, "folded": folded})
        self.sync()
        return lsn

    def append_compact(self, base: Optional[str],
                       through: int) -> int:
        """Log a compaction *attempt* (an audit marker: which deltas
        the compactor set out to fold, from which base)."""
        return self._append({"type": "compact", "base": base,
                             "through": through})

    def sync(self) -> None:
        """Force an fsync now (no-op with policy ``off``)."""
        with self._lock:
            if self.fsync_policy != "off" and not self._file.closed:
                self._fsync_locked()

    # ------------------------------------------------------------------
    # truncation (after a checkpoint folded a prefix away)
    # ------------------------------------------------------------------
    def truncate(self, folded: int) -> int:
        """Drop records with ``lsn <= folded``; returns how many.

        Rewrites the file atomically (temp + ``os.replace``) keeping
        the suffix byte-identical, so a reader holding the old file
        sees a complete history and a reader opening the new one sees
        the same suffix — LSNs are never renumbered.
        """
        with self._lock:
            keep = [r for r in self._records if r["lsn"] > folded]
            dropped = len(self._records) - len(keep)
            if dropped == 0:
                return 0
            tmp = self.path.with_name(self.path.name + ".compact")
            with open(tmp, "wb") as handle:
                for record in keep:
                    handle.write(encode_record(record))
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(tmp, self.path)
            self._file = open(self.path, "ab")
            self._records = keep
            self._bytes = self.path.stat().st_size
            self._unsynced = 0
            self.truncations += 1
            return dropped

    def close(self) -> None:
        """Flush, fsync (unless ``off``), and close the append handle."""
        with self._lock:
            if self._file.closed:
                return
            self._file.flush()
            if self.fsync_policy != "off":
                os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def lsn(self) -> int:
        """LSN of the last appended record (0 for an empty log)."""
        return self._lsn

    @property
    def wal_bytes(self) -> int:
        """Current on-disk size of the log in bytes."""
        return self._bytes

    def records(self) -> List[Dict[str, Any]]:
        """A stable copy of every record currently in the log."""
        with self._lock:
            return list(self._records)

    @property
    def pending_count(self) -> int:
        """Delta records not yet folded into any checkpoint."""
        return len(pending_deltas(self.records()))

    def pending(self, snapshot_id: Optional[str] = None
                ) -> List[Dict[str, Any]]:
        """Delta records an engine serving ``snapshot_id`` must
        replay (see :func:`pending_deltas`)."""
        return pending_deltas(self.records(), snapshot_id)

    def as_dict(self) -> Dict[str, Any]:
        """Counters + gauges for ``/healthz`` and ``/metrics``."""
        return {
            "path": str(self.path),
            "fsync": self.fsync_policy,
            "lsn": self.lsn,
            "bytes": self.wal_bytes,
            "records": len(self._records),
            "pending_deltas": self.pending_count,
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "truncations": self.truncations,
            "replayed": self.replayed,
        }

    def __repr__(self) -> str:
        return (f"WriteAheadLog(path={str(self.path)!r}, "
                f"lsn={self._lsn}, fsync={self.fsync_policy!r})")


# ----------------------------------------------------------------------
# read-only helpers (workers, prune, recovery)
# ----------------------------------------------------------------------
def read_wal(path: PathLike) -> List[Dict[str, Any]]:
    """Every intact record at ``path``; tolerant of a torn tail.

    Read-only: a torn tail is simply ignored (not repaired — the
    writer owns the file), while mid-stream damage still raises
    :class:`~repro.exceptions.WalCorruptionError`. A missing file is
    an empty log.
    """
    path = Path(path)
    if not path.exists():
        return []
    return scan_records(path.read_bytes()).records


def _resolve(source: WalSource) -> List[Dict[str, Any]]:
    """Records from a path, a live :class:`WriteAheadLog`, or a
    record list."""
    if isinstance(source, list):
        return source
    if isinstance(source, WriteAheadLog):
        return source.records()
    return read_wal(source)


def folded_lsn(records: List[Dict[str, Any]],
               snapshot_id: Optional[str] = None) -> int:
    """Highest LSN already materialized for ``snapshot_id``.

    ``None`` means "the log's own frontier": the newest checkpoint's
    fold point regardless of snapshot. With a concrete id, the newest
    checkpoint *for that snapshot* wins; a snapshot that only ever
    appears as a delta base folds nothing (replaying the full history
    onto it reproduces the current state — the linear-history
    invariant). An id the log has never recorded raises
    :class:`~repro.exceptions.WalError`.
    """
    checkpoints = [r for r in records if r["type"] == "checkpoint"]
    if snapshot_id is None:
        return max((c["folded"] for c in checkpoints), default=0)
    folded = [c["folded"] for c in checkpoints
              if c.get("snapshot") == snapshot_id]
    if folded:
        return max(folded)
    known: Set[Optional[str]] = {
        r.get("base") for r in records if r["type"] == "delta"}
    if snapshot_id in known \
            or not any(r["type"] == "delta" for r in records):
        return 0
    raise WalError(
        f"WAL does not describe snapshot {snapshot_id!r} (bases: "
        f"{sorted(str(k) for k in known)}); replaying it would "
        f"corrupt the engine")


def pending_deltas(records: List[Dict[str, Any]],
                   snapshot_id: Optional[str] = None
                   ) -> List[Dict[str, Any]]:
    """Delta records an engine serving ``snapshot_id`` must replay,
    in LSN order."""
    folded = folded_lsn(records, snapshot_id)
    return [r for r in records
            if r["type"] == "delta" and r["lsn"] > folded]


def base_snapshot(records: List[Dict[str, Any]]) -> Optional[str]:
    """The snapshot id the log's pending deltas apply on top of:
    the newest checkpoint's snapshot, else the first delta's base."""
    base: Optional[str] = None
    for record in records:
        if record["type"] == "checkpoint":
            base = record.get("snapshot")
        elif record["type"] == "delta" and base is None:
            base = record.get("base")
    return base


def protected_snapshots(source: WalSource) -> Set[str]:
    """Snapshot ids a live WAL still depends on.

    ``SnapshotStore.prune`` must never delete these: the replay base
    (:func:`base_snapshot`) and every base a pending delta was
    acknowledged against — losing one turns a clean restart into an
    unrecoverable :class:`~repro.exceptions.WalError`.
    """
    records = _resolve(source)
    protected = {r.get("base") for r in pending_deltas(records)}
    protected.add(base_snapshot(records))
    return {sid for sid in protected if sid is not None}


def replay(engine: Any, source: WalSource) -> int:
    """Apply the engine's pending deltas from the WAL; returns count.

    The engine must be serving an unmodified snapshot (its
    ``snapshot_id`` anchors the fold point). Each record passes the
    ``wal.replay.record`` failpoint, then goes through the engine's
    ordinary ``apply_delta`` with its LSN — which both advances the
    engine's ``applied_lsn`` high-water mark and makes a later
    re-delivery of the same LSN (a broadcast racing a respawn's
    replay) a no-op. Replay is deterministic, so a replayed engine is
    byte-identical to one that applied the deltas live — the
    crash-recovery property test asserts exactly that.
    """
    snapshot_id = getattr(engine, "snapshot_id", None)
    if snapshot_id is None:
        raise WalError(
            "WAL replay needs an engine serving an unmodified "
            "snapshot (snapshot_id is None)")
    records = _resolve(source)
    pending = pending_deltas(records, snapshot_id)
    applied = 0
    for record in pending:
        faults.hit("wal.replay.record")
        delta = delta_from_wire(record["delta"])
        engine.apply_delta(delta,
                           bool(record.get("banks_reweight")),
                           lsn=record["lsn"])
        applied += 1
    if isinstance(source, WriteAheadLog):
        source.replayed += applied
    return applied
