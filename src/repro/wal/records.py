"""Record codec for the delta write-ahead log.

One WAL record is a *frame*::

    <u32 length, little-endian> <u32 crc32(payload), little-endian>
    <payload: `length` bytes of UTF-8 JSON>

The payload is a JSON object with at least ``type`` (``"delta"`` /
``"checkpoint"`` / ``"compact"``), a monotonically increasing ``lsn``,
and ``base`` — the snapshot id the record was acknowledged against.
Framing is deliberately dumb: no magic, no compression, no batching —
a record either round-trips byte-exactly or fails its CRC, and the
recovery rules in :mod:`repro.wal.log` only need to distinguish "the
last append was interrupted" from "the middle of the log is damaged".

This module also owns the :class:`~repro.text.maintenance.GraphDelta`
wire form (``delta_to_wire`` / ``delta_from_wire``) and the boundary
validator :func:`parse_delta`, which turns an untrusted ``POST
/admin/delta`` body into a ``GraphDelta`` or a typed
:class:`~repro.exceptions.DeltaValidationError` — *before* anything is
logged or applied, so a malformed delta can never poison the WAL.
"""

from __future__ import annotations

import json
import math
import struct
import zlib
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.exceptions import DeltaValidationError, WalCorruptionError
from repro.text.maintenance import GraphDelta

#: Frame header: payload length, then CRC32 of the payload bytes.
HEADER = struct.Struct("<II")

#: Write-side sanity bound; a frame this large is a writer bug, not a
#: real delta batch.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: The record types the log understands.
RECORD_TYPES = ("delta", "checkpoint", "compact")


def encode_record(payload: Dict[str, Any]) -> bytes:
    """One framed record from a payload dict."""
    raw = json.dumps(payload, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_RECORD_BYTES:
        raise ValueError(
            f"WAL record of {len(raw)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte frame bound")
    return HEADER.pack(len(raw), zlib.crc32(raw) & 0xFFFFFFFF) + raw


def decode_payload(raw: bytes, offset: int) -> Dict[str, Any]:
    """Parse a CRC-clean payload; malformed JSON here is corruption.

    The CRC already vouched for the bytes, so undecodable JSON or a
    missing ``type``/``lsn`` is not a torn write — it is a damaged or
    foreign log, reported as :class:`WalCorruptionError` regardless of
    position.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise WalCorruptionError(
            f"WAL record at byte {offset} passed its CRC but is not "
            f"JSON ({error})")
    if not isinstance(payload, dict) \
            or payload.get("type") not in RECORD_TYPES \
            or not isinstance(payload.get("lsn"), int) \
            or isinstance(payload.get("lsn"), bool):
        raise WalCorruptionError(
            f"WAL record at byte {offset} is not a recognized record "
            f"(type must be one of {RECORD_TYPES} with an integer "
            f"lsn)")
    return payload


class WalScan:
    """Result of scanning a log image: intact records + tail verdict."""

    __slots__ = ("records", "good_bytes", "torn")

    def __init__(self, records: List[Dict[str, Any]],
                 good_bytes: int, torn: Optional[str]) -> None:
        #: Every intact record, in log order.
        self.records = records
        #: Offset one past the last intact record — the truncation
        #: point when the tail is torn.
        self.good_bytes = good_bytes
        #: Human-readable description of a torn tail, ``None`` when
        #: the image ends exactly on a record boundary.
        self.torn = torn


def scan_records(data: bytes) -> WalScan:
    """Walk a log image, separating torn tails from real corruption.

    The one crash the append path can suffer is an interrupted final
    write, so exactly one failure shape is recoverable: the *last*
    frame is short or fails its CRC and nothing follows it. Any frame
    that fails *with intact records after it* means acknowledged
    writes were silently lost — that raises
    :class:`WalCorruptionError` and is never repaired automatically.
    Non-monotonic LSNs are corruption too (spliced or replayed logs).
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    last_lsn = 0
    size = len(data)
    while offset < size:
        if size - offset < HEADER.size:
            return WalScan(records, offset,
                           f"{size - offset} trailing bytes are "
                           f"shorter than a frame header")
        length, crc = HEADER.unpack_from(data, offset)
        end = offset + HEADER.size + length
        if end > size:
            return WalScan(records, offset,
                           f"final frame at byte {offset} claims "
                           f"{length} payload bytes but only "
                           f"{size - offset - HEADER.size} remain")
        raw = data[offset + HEADER.size:end]
        if zlib.crc32(raw) & 0xFFFFFFFF != crc:
            if end == size:
                return WalScan(records, offset,
                               f"final record at byte {offset} "
                               f"fails its CRC32")
            raise WalCorruptionError(
                f"WAL record at byte {offset} fails its CRC32 with "
                f"{size - end} intact bytes after it — acknowledged "
                f"records were damaged in place")
        payload = decode_payload(raw, offset)
        if payload["lsn"] <= last_lsn:
            raise WalCorruptionError(
                f"WAL record at byte {offset} has LSN "
                f"{payload['lsn']} after LSN {last_lsn} — the log is "
                f"spliced or rewritten")
        last_lsn = payload["lsn"]
        records.append(payload)
        offset = end
    return WalScan(records, offset, None)


# ----------------------------------------------------------------------
# GraphDelta wire form
# ----------------------------------------------------------------------
def delta_to_wire(delta: GraphDelta) -> Dict[str, Any]:
    """A ``GraphDelta`` as the JSON object logged and served.

    Node keywords are sorted so the wire form is deterministic — the
    same delta always produces the same record bytes.
    """
    nodes = []
    for keywords, label, provenance in delta.new_nodes:
        nodes.append({
            "keywords": sorted(keywords),
            "label": label,
            "provenance": (None if provenance is None
                           else [provenance[0], provenance[1]]),
        })
    return {"nodes": nodes,
            "edges": [[u, v, w] for u, v, w in delta.new_edges]}


def delta_from_wire(payload: Dict[str, Any]) -> GraphDelta:
    """Rebuild a ``GraphDelta`` from its wire form (trusted input —
    our own WAL records, already validated at append time)."""
    nodes: List[Tuple[Set[str], str, Optional[Tuple[str, Any]]]] = []
    for node in payload.get("nodes", ()):
        provenance = node.get("provenance")
        nodes.append((set(node.get("keywords", ())),
                      node.get("label", ""),
                      None if provenance is None
                      else (provenance[0], provenance[1])))
    edges = [(int(u), int(v), float(w))
             for u, v, w in payload.get("edges", ())]
    return GraphDelta(new_nodes=nodes, new_edges=edges)


# ----------------------------------------------------------------------
# boundary validation
# ----------------------------------------------------------------------
def _fail(message: str) -> None:
    raise DeltaValidationError(f"invalid delta: {message}")


def _node_of(entry: Any, position: int, next_id: Optional[int],
             seen_ids: Set[int]
             ) -> Tuple[Set[str], str, Optional[Tuple[str, Any]]]:
    """Validate one ``nodes`` entry (see :func:`parse_delta`)."""
    where = f"nodes[{position}]"
    if not isinstance(entry, dict):
        _fail(f"{where} must be an object")
    keywords = entry.get("keywords", [])
    if not isinstance(keywords, list) or any(
            not isinstance(kw, str) or not kw for kw in keywords):
        _fail(f"{where}.keywords must be a list of non-empty strings")
    label = entry.get("label", "")
    if not isinstance(label, str):
        _fail(f"{where}.label must be a string")
    provenance = entry.get("provenance")
    if provenance is not None:
        if not isinstance(provenance, (list, tuple)) \
                or len(provenance) != 2 \
                or not isinstance(provenance[0], str):
            _fail(f"{where}.provenance must be null or a "
                  f"[table, key] pair")
        provenance = (provenance[0], provenance[1])
    if "id" in entry:
        node_id = entry["id"]
        if isinstance(node_id, bool) or not isinstance(node_id, int):
            _fail(f"{where}.id must be an integer")
        if node_id in seen_ids:
            _fail(f"{where}.id {node_id} is a duplicate node id")
        seen_ids.add(node_id)
        if next_id is not None and node_id != next_id:
            _fail(f"{where}.id is {node_id} but new node ids are "
                  f"assigned densely — expected {next_id}")
    return set(keywords), label, provenance


def parse_delta(payload: Dict[str, Any],
                base_nodes: Optional[int] = None) -> GraphDelta:
    """A validated ``GraphDelta`` from an untrusted request payload.

    ``base_nodes`` is the served graph's node count; with it known,
    edge endpoints are range-checked against ``base_nodes + new``
    (new nodes are assigned ids densely after the existing ones) and
    explicit node ``id`` fields must match that dense assignment.
    Every rejection is a :class:`~repro.exceptions.
    DeltaValidationError` — an HTTP 400, raised before the delta
    reaches the WAL or the engine.
    """
    nodes_in = payload.get("nodes", [])
    edges_in = payload.get("edges", [])
    if not isinstance(nodes_in, list):
        _fail("'nodes' must be a list")
    if not isinstance(edges_in, list):
        _fail("'edges' must be a list")
    if not nodes_in and not edges_in:
        _fail("a delta needs at least one new node or edge")

    seen_ids: Set[int] = set()
    new_nodes = []
    for position, entry in enumerate(nodes_in):
        next_id = (None if base_nodes is None
                   else base_nodes + position)
        new_nodes.append(_node_of(entry, position, next_id, seen_ids))

    total = None if base_nodes is None else base_nodes + len(nodes_in)
    new_edges: List[Tuple[int, int, float]] = []
    for position, entry in enumerate(edges_in):
        where = f"edges[{position}]"
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            _fail(f"{where} must be a [source, target, weight] "
                  f"triple")
        u, v, w = entry
        for name, endpoint in (("source", u), ("target", v)):
            if isinstance(endpoint, bool) \
                    or not isinstance(endpoint, int):
                _fail(f"{where}.{name} must be an integer node id")
            if endpoint < 0:
                _fail(f"{where}.{name} {endpoint} is negative")
            if total is not None and endpoint >= total:
                _fail(f"{where}.{name} {endpoint} references an "
                      f"unknown node (graph has {base_nodes} nodes "
                      f"+ {len(nodes_in)} new)")
        if isinstance(w, bool) or not isinstance(w, (int, float)):
            _fail(f"{where}.weight must be a number")
        w = float(w)
        if math.isnan(w) or math.isinf(w):
            _fail(f"{where}.weight must be finite, got {w}")
        if w < 0:
            _fail(f"{where}.weight must be >= 0, got {w}")
        new_edges.append((int(u), int(v), w))
    return GraphDelta(new_nodes=new_nodes, new_edges=new_edges)
