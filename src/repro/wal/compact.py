"""Background compaction: fold WAL deltas into a published snapshot.

The WAL grows with every acknowledged delta and replay cost grows with
it; :class:`Compactor` bounds both. One compaction cycle:

1. **Fold** (no lock held): read the pending deltas, load their base
   snapshot from the store by id, and apply the deltas in LSN order —
   the same deterministic :func:`repro.text.maintenance.apply_delta`
   the serving path uses, so the folded artifact is byte-identical to
   the served state at that LSN.
2. **Publish**: write the folded graph + index into the store
   (staged + atomic rename, per :class:`~repro.snapshot.store.
   SnapshotStore`), then re-verify the published artifact checksum by
   checksum before anything references it. The ``compact.publish``
   failpoint sits immediately before the publish — the crash window
   chaos tests target.
3. **Commit** (under the service's ingest lock, so no delta lands
   mid-swing): append a ``checkpoint`` record naming the new snapshot
   and its fold point, truncate the folded prefix, and — when the
   compactor is attached to a live engine — hot-swap the engine onto
   the new snapshot through the ordinary reload path and replay any
   deltas that arrived between fold and commit.

Failure anywhere is containment, not outage: the WAL still holds every
acknowledged delta, the old snapshot keeps serving, and the compactor
goes **sticky degraded** — the background loop stops retrying (the
same philosophy as the worker-pool breaker: a deterministic failure
retried forever is log spam, not healing) while queries keep flowing
and a manual ``python -m repro compact`` or restart clears the state.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro import faults
from repro.exceptions import WalError
from repro.snapshot.snapshot import verify_snapshot
from repro.snapshot.store import SnapshotStore
from repro.text.maintenance import apply_delta
from repro.wal.log import (
    WriteAheadLog,
    base_snapshot,
    pending_deltas,
    replay,
)
from repro.wal.records import delta_from_wire

#: Default seconds between background compaction attempts.
DEFAULT_COMPACT_INTERVAL = 300.0


class Compactor:
    """Folds a WAL's pending deltas into a fresh store snapshot.

    ``engine`` (optional) is the live engine to hot-swap after a
    successful publish — a :class:`~repro.engine.engine.QueryEngine`
    or :class:`~repro.parallel.engine.ParallelQueryEngine`; offline
    compaction (the CLI) passes ``None``. ``lock`` is the service's
    ingest lock, held across checkpoint + truncate + swap so no delta
    is acknowledged against a moving base.
    """

    def __init__(self, wal: WriteAheadLog, store: SnapshotStore,
                 engine: Optional[Any] = None,
                 lock: Optional[threading.Lock] = None,
                 interval: float = DEFAULT_COMPACT_INTERVAL,
                 min_deltas: int = 1) -> None:
        if min_deltas < 1:
            raise ValueError(
                f"min_deltas must be >= 1, got {min_deltas}")
        self.wal = wal
        self.store = store
        self.engine = engine
        self.interval = interval
        self.min_deltas = min_deltas
        self._ingest_lock = lock if lock is not None \
            else threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Sticky failure flag: set on the first failed cycle, never
        #: cleared by the loop itself.
        self.degraded = False
        self.last_error: Optional[str] = None
        self.compactions = 0
        self.failures = 0
        self.folded = 0
        self.last_snapshot: Optional[str] = None
        self.last_compacted_at: Optional[float] = None

    # ------------------------------------------------------------------
    # one cycle
    # ------------------------------------------------------------------
    def compact_once(self) -> Optional[str]:
        """Fold, publish, checkpoint, truncate, hot-swap.

        Returns the new snapshot id, or ``None`` when fewer than
        ``min_deltas`` deltas are pending. Raises on failure — the
        caller (the background loop, or the CLI) decides whether that
        is sticky.
        """
        records = self.wal.records()
        pending = pending_deltas(records)
        if len(pending) < self.min_deltas:
            return None
        base_id = base_snapshot(records)
        if base_id is None:
            raise WalError(
                "WAL has pending deltas but no base snapshot id — "
                "deltas were logged against an engine that never "
                "loaded a snapshot; compaction has nothing to fold "
                "onto")
        base = self.store.load(base_id, verify=True)
        if base.index is None:
            raise WalError(
                f"base snapshot {base_id} has no community index; "
                f"compaction cannot fold deltas without one")

        # Fold outside any lock: ingestion keeps flowing while we
        # rebuild. Deltas that land after `through` stay in the WAL
        # and are replayed onto the swapped engine at commit.
        through = pending[-1]["lsn"]
        dbg, index = base.dbg, base.index
        for record in pending:
            dbg, index = apply_delta(
                index, delta_from_wire(record["delta"]),
                bool(record.get("banks_reweight")))

        self.wal.append_compact(base_id, through)
        faults.hit("compact.publish")
        snapshot = self.store.publish(
            dbg, index=index,
            provenance={"compacted_from": base_id,
                        "folded_lsn": through,
                        "deltas": len(pending)})
        verify_snapshot(snapshot.path)

        with self._ingest_lock:
            self.wal.append_checkpoint(snapshot.id, through)
            self.wal.truncate(through)
            if self.engine is not None:
                self.engine.load_snapshot(str(snapshot.path))
                # Deltas acknowledged between fold and this lock are
                # still in the WAL suffix; converge before unlocking.
                replay(self.engine, self.wal)
        self.compactions += 1
        self.folded += len(pending)
        self.last_snapshot = snapshot.id
        self.last_compacted_at = time.time()
        return snapshot.id

    # ------------------------------------------------------------------
    # background loop
    # ------------------------------------------------------------------
    def start(self) -> "Compactor":
        """Start the background thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-compactor", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the loop to exit and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if self.degraded:
                continue
            try:
                self.compact_once()
            except Exception as error:  # noqa: BLE001 — sticky flag
                self.failures += 1
                self.degraded = True
                self.last_error = (
                    f"{type(error).__name__}: {error}")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """State for the ``/healthz`` ``wal.compaction`` block."""
        return {
            "running": (self._thread is not None
                        and self._thread.is_alive()),
            "interval": self.interval,
            "min_deltas": self.min_deltas,
            "degraded": self.degraded,
            "compactions": self.compactions,
            "failures": self.failures,
            "folded_deltas": self.folded,
            "last_snapshot": self.last_snapshot,
            "last_compacted_at": self.last_compacted_at,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:
        return (f"Compactor(store={str(self.store.root)!r}, "
                f"degraded={self.degraded}, "
                f"compactions={self.compactions})")
