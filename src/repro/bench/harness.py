"""Measurement primitives: time, average delay, and peak memory.

The paper reports *average delay* (total CPU time / number of
communities) for the COMM-all algorithms, *total time* for the top-k
algorithms, and peak memory for both. We measure wall time with
``perf_counter`` and working-set peaks with ``tracemalloc``; because
tracing roughly doubles Python runtimes, memory is taken in a separate
pass so the timing numbers stay clean.

Runs can be capped (``max_communities``) to bound benchmark time on
result-dense IMDB configurations; the cap is recorded in the result so
reports can say "delay over the first M answers". The cap applies
identically to every algorithm.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.baselines.pool import BaselineStats
from repro.core.comm_k import TopKStream
from repro.core.search import CommunitySearch
from repro.engine.context import QueryContext
from repro.engine.registry import REGISTRY
from repro.exceptions import QueryError

#: Default per-run time budget for the pool-based baselines: BU/TD
#: candidate enumeration is combinatorial, and censored cells (marked
#: ``timed_out``) are how the reports stay bounded, the way papers
#: print "DNF" bars.
DEFAULT_BUDGET_SECONDS = 60.0


def _prepare(search: CommunitySearch, keywords, rmax: float,
             context: Optional[QueryContext] = None):
    """Project once, outside the measured region.

    The paper's setup: "for all algorithms to be tested, we first
    project a database subgraph … and test the algorithms" — so both
    the timing and the tracemalloc peak cover the *algorithm* on the
    projected graph, not the shared projection construction. The
    projection goes through the engine's cache, so a sweep re-visiting
    one ``(keywords, rmax)`` point pays Algorithm 6 once; the cache
    traffic lands in ``context`` (and thus ``RunResult.extra``).
    """
    if search.index is not None:
        projection = search.project(keywords, rmax, context)
        return projection.subgraph, projection.node_lists
    return search.dbg, None


def _all_runner(algorithm: str, dbg, keywords, rmax, node_lists,
                budget_seconds, stats):
    """COMM-all through the engine registry's uniform contract."""
    return REGISTRY.get(algorithm).run_all(
        dbg, list(keywords), rmax, node_lists=node_lists,
        budget_seconds=budget_seconds, stats=stats)


def _topk_result(algorithm: str, dbg, keywords, k, rmax, node_lists,
                 budget_seconds, stats):
    """COMM-k through the engine registry's uniform contract."""
    return REGISTRY.get(algorithm).run_top_k(
        dbg, list(keywords), k, rmax, node_lists=node_lists,
        budget_seconds=budget_seconds, stats=stats)


@dataclass
class RunResult:
    """One measured run of one algorithm on one sweep point."""

    dataset: str
    algorithm: str
    mode: str                    # "all" | "topk" | "interactive"
    keywords: Sequence[str]
    rmax: float
    seconds: float
    communities: int
    k: Optional[int] = None
    capped: bool = False
    timed_out: bool = False
    peak_kb: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_delay_ms(self) -> float:
        """Average per-answer delay in milliseconds."""
        if self.communities == 0:
            return float("nan")
        return 1000.0 * self.seconds / self.communities


def _consume(iterator,
             max_communities: Optional[int]) -> Tuple[int, bool]:
    count = 0
    for _ in iterator:
        count += 1
        if max_communities is not None and count >= max_communities:
            return count, True
    return count, False


def measure_all(search: CommunitySearch, dataset: str,
                keywords: Sequence[str], rmax: float, algorithm: str,
                max_communities: Optional[int] = None,
                measure_memory: bool = True,
                budget_seconds: Optional[float] = DEFAULT_BUDGET_SECONDS
                ) -> RunResult:
    """COMM-all: enumerate (up to a cap), report delay and peak memory.

    ``budget_seconds`` censors BU/TD candidate enumeration (PD has
    polynomial delay and needs no budget; the cap bounds it).
    ``RunResult.extra`` carries the engine instrumentation for the
    run (projection stage timing, cache traffic, pool statistics).
    """
    context = QueryContext()
    stats = context.baseline
    dbg, node_lists = _prepare(search, keywords, rmax, context)
    start = time.perf_counter()
    count, capped = _consume(
        _all_runner(algorithm, dbg, keywords, rmax, node_lists,
                    budget_seconds, stats),
        max_communities)
    seconds = time.perf_counter() - start
    timed_out = bool(stats.extra.get("timed_out"))

    peak_kb = None
    if measure_memory:
        tracemalloc.start()
        _consume(
            _all_runner(algorithm, dbg, keywords, rmax, node_lists,
                        budget_seconds, BaselineStats()),
            max_communities)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_kb = peak / 1024.0

    return RunResult(dataset=dataset, algorithm=algorithm, mode="all",
                     keywords=list(keywords), rmax=rmax, seconds=seconds,
                     communities=count, capped=capped,
                     timed_out=timed_out, peak_kb=peak_kb,
                     extra=context.as_dict())


def measure_topk(search: CommunitySearch, dataset: str,
                 keywords: Sequence[str], k: int, rmax: float,
                 algorithm: str,
                 measure_memory: bool = False,
                 budget_seconds: Optional[float] = DEFAULT_BUDGET_SECONDS
                 ) -> RunResult:
    """COMM-k: total time to produce the top-k (BU/TD censored by
    ``budget_seconds``; a censored run reports the partial answer and
    ``timed_out=True``)."""
    context = QueryContext()
    stats = context.baseline
    dbg, node_lists = _prepare(search, keywords, rmax, context)
    start = time.perf_counter()
    results = _topk_result(algorithm, dbg, keywords, k, rmax,
                           node_lists, budget_seconds, stats)
    seconds = time.perf_counter() - start
    timed_out = bool(stats.extra.get("timed_out"))

    peak_kb = None
    if measure_memory:
        tracemalloc.start()
        _topk_result(algorithm, dbg, keywords, k, rmax, node_lists,
                     budget_seconds, BaselineStats())
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_kb = peak / 1024.0

    return RunResult(dataset=dataset, algorithm=algorithm, mode="topk",
                     keywords=list(keywords), rmax=rmax, seconds=seconds,
                     communities=len(results), k=k,
                     timed_out=timed_out, peak_kb=peak_kb,
                     extra=context.as_dict())


def measure_interactive(search: CommunitySearch, dataset: str,
                        keywords: Sequence[str], k: int, rmax: float,
                        algorithm: str, extra_k: int = 50,
                        budget_seconds: Optional[float] = DEFAULT_BUDGET_SECONDS
                        ) -> RunResult:
    """Exp-3: top-k, then the user asks for ``extra_k`` more.

    PDk continues its stream for free; BUk/TDk must re-run the whole
    query with ``k + extra_k`` (their pruned pools cannot resume), so
    their reported time is *both* runs — exactly the paper's setup.
    """
    context = QueryContext()
    dbg, node_lists = _prepare(search, keywords, rmax, context)
    if algorithm == "pd":
        start = time.perf_counter()
        stream = TopKStream(dbg, list(keywords), rmax,
                            node_lists=node_lists)
        first = stream.take(k)
        more = stream.more(extra_k)
        seconds = time.perf_counter() - start
        produced = len(first) + len(more)
        timed_out = False
    elif algorithm in ("bu", "td"):
        stats = context.baseline
        start = time.perf_counter()
        first = _topk_result(algorithm, dbg, keywords, k, rmax,
                             node_lists, budget_seconds, stats)
        rerun = _topk_result(algorithm, dbg, keywords, k + extra_k,
                             rmax, node_lists, budget_seconds, stats)
        seconds = time.perf_counter() - start
        produced = len(rerun)
        timed_out = bool(stats.extra.get("timed_out"))
    else:
        raise QueryError(
            f"interactive mode supports pd/bu/td, got {algorithm!r}")
    extra = context.as_dict()
    extra["extra_k"] = float(extra_k)
    return RunResult(dataset=dataset, algorithm=algorithm,
                     mode="interactive", keywords=list(keywords),
                     rmax=rmax, seconds=seconds, communities=produced,
                     k=k, timed_out=timed_out, extra=extra)


def sweep(points: Sequence, runner: Callable[[object], RunResult]
          ) -> List[RunResult]:
    """Apply ``runner`` across sweep points, collecting results."""
    return [runner(point) for point in points]
