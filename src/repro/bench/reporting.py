"""Plain-text table/series rendering for benchmark output.

The paper presents its evaluation as line charts; a terminal harness
renders the same information as one row per x-value with one column per
algorithm, which is the form EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import RunResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]
                 ) -> str:
    """Align columns; floats get 3 significant decimals."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def series_table(title: str, x_name: str, x_values: Sequence[object],
                 results: Dict[str, List[RunResult]],
                 metric: str = "avg_delay_ms",
                 unit: Optional[str] = None) -> str:
    """One figure panel: x sweep down the rows, algorithms across.

    ``metric`` is an attribute/property of :class:`RunResult`
    (``avg_delay_ms``, ``seconds``, ``peak_kb``, ``communities``).
    """
    algorithms = list(results)
    headers = [x_name] + [
        f"{alg}[{unit}]" if unit else alg for alg in algorithms]
    rows = []
    for idx, x in enumerate(x_values):
        row: List[object] = [x]
        for alg in algorithms:
            value = getattr(results[alg][idx], metric)
            row.append(value if value is not None else float("nan"))
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def counts_note(results: Dict[str, List[RunResult]]) -> str:
    """A footnote with community counts per cell (``+`` = capped,
    ``!`` = the run was censored by the time budget)."""
    notes = []
    for alg, runs in results.items():
        cells = ", ".join(
            f"{r.communities}{'+' if r.capped else ''}"
            f"{'!' if r.timed_out else ''}"
            for r in runs)
        notes.append(f"  {alg}: |O| = [{cells}]")
    return "\n".join(notes)
