"""Benchmark harness regenerating the paper's evaluation (Section VII).

Every table and figure of the paper has a target here:

* Table I (+ Figs. 4/5) — ``table1_ranking`` (exact reproduction);
* Fig. 9(a–f)  — IMDB COMM-all sweeps (``figure9``);
* Fig. 10(a–d) — IMDB COMM-k sweeps (``figure10``);
* Fig. 11(a–f) — DBLP COMM-all sweeps (``figure11``);
* Fig. 12(a,b) — interactive top-k (``figure12``);
* §VII index statistics — ``index_stats``.

Run everything from the CLI::

    python -m repro.bench --figure 9 --scale bench
    python -m repro.bench --all

or through pytest-benchmark (one representative bench per figure point
lives in ``benchmarks/``).
"""

from repro.bench.harness import (
    RunResult,
    measure_all,
    measure_interactive,
    measure_topk,
)
from repro.bench.workloads import (
    DBLP_PARAMS,
    IMDB_PARAMS,
    BenchParams,
    DatasetBundle,
    load_dataset,
)

__all__ = [
    "BenchParams",
    "DBLP_PARAMS",
    "DatasetBundle",
    "IMDB_PARAMS",
    "RunResult",
    "load_dataset",
    "measure_all",
    "measure_interactive",
    "measure_topk",
]
