"""CLI for the benchmark harness.

Examples::

    python -m repro.bench --figure table1
    python -m repro.bench --figure 9 --scale bench
    python -m repro.bench --all --scale paper
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import FIGURES


def main(argv=None) -> int:
    """Parse CLI args and regenerate the requested exhibits."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "--figure", choices=sorted(FIGURES), action="append",
        help="which exhibit to regenerate (repeatable)")
    parser.add_argument(
        "--all", action="store_true",
        help="regenerate every exhibit")
    parser.add_argument(
        "--scale", choices=("tiny", "bench", "paper"), default="bench",
        help="dataset scale (default: bench)")
    args = parser.parse_args(argv)

    figures = list(args.figure or [])
    if args.all:
        figures = sorted(FIGURES)
    if not figures:
        parser.error("pick --figure <id> or --all")

    for figure in figures:
        start = time.perf_counter()
        report = FIGURES[figure](args.scale)
        elapsed = time.perf_counter() - start
        print(report.text)
        print(f"\n[{figure} regenerated in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
