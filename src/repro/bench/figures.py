"""Figure/table generators: one function per paper exhibit.

Each function runs the relevant sweep and returns a
:class:`FigureReport` — rendered text plus the raw
:class:`~repro.bench.harness.RunResult` grid — so the CLI can print it
and EXPERIMENTS.md can quote it. Figure/panel ids follow the paper
(Fig. 9(a) = IMDB COMM-all average delay vs KWF, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import (
    RunResult,
    measure_all,
    measure_interactive,
    measure_topk,
)
from repro.bench.reporting import counts_note, series_table
from repro.bench.workloads import load_dataset
from repro.datasets import paper_example

ALL_ALGS = ("pd", "bu", "td")

#: COMM-all enumeration caps per scale — IMDB queries can have many
#: thousands of answers; delay is averaged over the first M for every
#: algorithm alike (reports mark capped cells with ``+``).
ALL_CAPS = {"tiny": 50, "bench": 600, "paper": 1500}

#: Per-run time budget for the pool-based baselines by scale. Censored
#: cells print with ``!`` in the count footnotes — the BU/TD
#: combinatorial blow-up the budget guards against is itself a finding
#: the paper reports.
BUDGETS = {"tiny": 2.0, "bench": 10.0, "paper": 60.0}


@dataclass
class FigureReport:
    """Rendered text plus the raw per-panel results."""

    figure: str
    text: str
    panels: Dict[str, Dict[str, List[RunResult]]] = field(
        default_factory=dict)

    def __str__(self) -> str:
        return self.text


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_ranking() -> FigureReport:
    """Reproduce Table I exactly from the Fig. 4 graph."""
    dbg = paper_example.figure4_graph()
    from repro.core.comm_k import top_k
    results = top_k(dbg, list(paper_example.FIG4_QUERY), 5,
                    paper_example.FIG4_RMAX)
    rows = []
    ok = True
    for rank, community in enumerate(results, start=1):
        expected_core, expected_cost, expected_centers = \
            paper_example.TABLE1_RANKING[rank - 1]
        core = tuple(paper_example.node_label(u) for u in community.core)
        centers = tuple(
            paper_example.node_label(u) for u in community.centers)
        match = (core == expected_core
                 and abs(community.cost - expected_cost) < 1e-9
                 and centers == expected_centers)
        ok = ok and match
        rows.append(
            f"  rank {rank}: core(a,b,c)=({', '.join(core)})  "
            f"cost={community.cost:g}  centers={{{', '.join(centers)}}}  "
            f"{'OK' if match else 'MISMATCH'}")
    verdict = "Table I reproduced exactly." if ok else \
        "MISMATCH against Table I!"
    text = "Table I — ranking on the Fig. 4 graph " \
           "(3-keyword query {a,b,c}, Rmax=8)\n" + "\n".join(rows) \
           + f"\n  -> {verdict}"
    return FigureReport("table1", text)


# ----------------------------------------------------------------------
# Figs. 1-3: the motivation example — trees vs. the community
# ----------------------------------------------------------------------
def figure2_trees() -> FigureReport:
    """Reproduce Fig. 2's five trees and the §I subsumption claim."""
    from repro.core.comm_k import top_k
    from repro.core.trees import enumerate_trees
    from repro.datasets.paper_example import (
        FIG1_QUERY,
        FIG1_RMAX,
        figure1_graph,
    )

    dbg = figure1_graph()
    trees = enumerate_trees(dbg, list(FIG1_QUERY), max_weight=8.0)
    community = top_k(dbg, list(FIG1_QUERY), 1, FIG1_RMAX)[0]

    lines = [f"Fig. 2 — tree answers for query {{kate, smith}} on the "
             f"Fig. 1 graph ({len(trees)} trees; the paper shows 5):"]
    for idx, tree in enumerate(trees, start=1):
        lines.append(f"  T{idx}: {tree.describe(dbg)}")

    community_nodes = set(community.nodes)
    subsumed = sum(
        1 for tree in trees if set(tree.nodes) <= community_nodes)
    lines.append(
        f"\nFig. 3(a) — the top community (cost={community.cost:g}, "
        f"centers={[dbg.label_of(u) for u in community.centers]}) "
        f"contains {subsumed} of the {len(trees)} trees whole — the "
        f"paper's argument for communities over trees.")
    return FigureReport("fig2", "\n".join(lines))


# ----------------------------------------------------------------------
# COMM-all sweeps (Fig. 9 IMDB, Fig. 11 DBLP)
# ----------------------------------------------------------------------
def _comm_all_figure(figure: str, dataset: str, scale: str,
                     max_communities: Optional[int],
                     measure_memory: bool = True) -> FigureReport:
    bundle = load_dataset(dataset, scale)
    params = bundle.params
    cap = ALL_CAPS[scale] if max_communities is None else max_communities
    budget = BUDGETS[scale]

    def run(keywords: Sequence[str], rmax: float, alg: str) -> RunResult:
        return measure_all(bundle.search, bundle.label, keywords, rmax,
                           alg, max_communities=cap,
                           measure_memory=measure_memory,
                           budget_seconds=budget)

    panels: Dict[str, Dict[str, List[RunResult]]] = {}
    blocks: List[str] = []

    sweeps = [
        ("a", "KWF", params.kwf_values,
         lambda x, alg: run(params.query(kwf=x), params.default_rmax,
                            alg)),
        ("c", "l", params.l_values,
         lambda x, alg: run(params.query(l=x), params.default_rmax,
                            alg)),
        ("e", "Rmax", params.rmax_values,
         lambda x, alg: run(params.query(), x, alg)),
    ]
    memory_panel = {"a": "b", "c": "d", "e": "f"}
    for panel, x_name, x_values, runner in sweeps:
        results = {
            alg: [runner(x, alg) for x in x_values] for alg in ALL_ALGS}
        panels[panel] = results
        blocks.append(series_table(
            f"Fig. {figure}({panel}) — {dataset.upper()} COMM-all "
            f"average delay vs {x_name}",
            x_name, list(x_values), results,
            metric="avg_delay_ms", unit="ms"))
        if measure_memory:
            blocks.append(series_table(
                f"Fig. {figure}({memory_panel[panel]}) — "
                f"{dataset.upper()} COMM-all peak memory vs {x_name}",
                x_name, list(x_values), results,
                metric="peak_kb", unit="KB"))
        blocks.append(counts_note(results))

    header = (f"Fig. {figure} — {dataset.upper()} COMM-all "
              f"(scale={scale}, delay averaged over first {cap} "
              f"answers where capped)")
    return FigureReport(f"fig{figure}",
                        header + "\n\n" + "\n\n".join(blocks), panels)


def figure9(scale: str = "bench",
            max_communities: Optional[int] = None,
            measure_memory: bool = True) -> FigureReport:
    """Fig. 9(a–f): IMDB COMM-all sweeps (KWF / l / Rmax)."""
    return _comm_all_figure("9", "imdb", scale, max_communities,
                            measure_memory)


def figure11(scale: str = "bench",
             max_communities: Optional[int] = None,
             measure_memory: bool = True) -> FigureReport:
    """Fig. 11(a–f): DBLP COMM-all sweeps (KWF / l / Rmax)."""
    return _comm_all_figure("11", "dblp", scale, max_communities,
                            measure_memory)


# ----------------------------------------------------------------------
# COMM-k sweeps (Fig. 10 IMDB; the paper notes DBLP shows the same
# trends, which figure10("dblp") regenerates too)
# ----------------------------------------------------------------------
def figure10(dataset: str = "imdb", scale: str = "bench",
             measure_memory: bool = False) -> FigureReport:
    """Fig. 10(a–d): top-k total time vs KWF / l / Rmax / k."""
    bundle = load_dataset(dataset, scale)
    params = bundle.params
    budget = BUDGETS[scale]

    def run(keywords: Sequence[str], k: int, rmax: float,
            alg: str) -> RunResult:
        return measure_topk(bundle.search, bundle.label, keywords, k,
                            rmax, alg, measure_memory=measure_memory,
                            budget_seconds=budget)

    sweeps = [
        ("a", "KWF", params.kwf_values,
         lambda x, alg: run(params.query(kwf=x), params.default_k,
                            params.default_rmax, alg)),
        ("b", "l", params.l_values,
         lambda x, alg: run(params.query(l=x), params.default_k,
                            params.default_rmax, alg)),
        ("c", "Rmax", params.rmax_values,
         lambda x, alg: run(params.query(), params.default_k, x, alg)),
        ("d", "k", params.k_values,
         lambda x, alg: run(params.query(), x, params.default_rmax,
                            alg)),
    ]
    panels: Dict[str, Dict[str, List[RunResult]]] = {}
    blocks: List[str] = []
    for panel, x_name, x_values, runner in sweeps:
        results = {
            alg: [runner(x, alg) for x in x_values] for alg in ALL_ALGS}
        panels[panel] = results
        blocks.append(series_table(
            f"Fig. 10({panel}) — {dataset.upper()} COMM-k total time "
            f"vs {x_name}",
            x_name, list(x_values), results, metric="seconds",
            unit="s"))
        blocks.append(counts_note(results))
    header = f"Fig. 10 — {dataset.upper()} COMM-k (scale={scale})"
    return FigureReport("fig10",
                        header + "\n\n" + "\n\n".join(blocks), panels)


# ----------------------------------------------------------------------
# Interactive top-k (Fig. 12)
# ----------------------------------------------------------------------
def figure12(scale: str = "bench", extra_k: int = 50) -> FigureReport:
    """Fig. 12: reset k -> k+50 interactively, DBLP and IMDB."""
    panels: Dict[str, Dict[str, List[RunResult]]] = {}
    blocks: List[str] = []
    for panel, dataset in (("a", "dblp"), ("b", "imdb")):
        bundle = load_dataset(dataset, scale)
        params = bundle.params
        keywords = params.query()
        results = {
            alg: [
                measure_interactive(bundle.search, bundle.label,
                                    keywords, k, params.default_rmax,
                                    alg, extra_k=extra_k,
                                    budget_seconds=BUDGETS[scale])
                for k in params.k_values
            ]
            for alg in ALL_ALGS
        }
        panels[panel] = results
        blocks.append(series_table(
            f"Fig. 12({panel}) — {dataset.upper()} interactive top-k "
            f"(top-k, then +{extra_k} more)",
            "k", list(params.k_values), results, metric="seconds",
            unit="s"))
        blocks.append(counts_note(results))
    header = (f"Fig. 12 — interactive top-k (scale={scale}): PDk "
              f"continues its stream; BUk/TDk recompute at k+{extra_k}")
    return FigureReport("fig12",
                        header + "\n\n" + "\n\n".join(blocks), panels)


# ----------------------------------------------------------------------
# Index statistics (Section VII text)
# ----------------------------------------------------------------------
def index_stats(scale: str = "bench") -> FigureReport:
    """Index build time/size and projected-graph fractions."""
    blocks: List[str] = []
    for dataset in ("dblp", "imdb"):
        bundle = load_dataset(dataset, scale)
        params = bundle.params
        stats = bundle.search.index.stats()
        fractions = []
        for kwf in params.kwf_values:
            projection = bundle.search.project(
                params.query(kwf=kwf), params.default_rmax)
            fractions.append(projection.fraction_of(bundle.dbg))
        blocks.append(
            f"{dataset.upper()} (n={bundle.dbg.n}, m={bundle.dbg.m}, "
            f"tuples={bundle.db.total_rows()})\n"
            f"  index build: {stats['build_seconds']:.2f}s, "
            f"R={stats['radius']:g}, keywords={stats['keywords']}\n"
            f"  index size: {stats['size_bytes'] / 1e6:.2f} MB "
            f"({stats['node_postings']} node postings, "
            f"{stats['edge_postings']} edge postings)\n"
            f"  projected-graph fraction over KWF sweep "
            f"(l={params.default_l}, Rmax={params.default_rmax:g}): "
            f"max={max(fractions):.3%}, "
            f"avg={sum(fractions) / len(fractions):.3%}")
    header = "Index statistics (paper §VII: build time, size, " \
             "projection fractions)"
    return FigureReport("index", header + "\n\n" + "\n\n".join(blocks))


# ----------------------------------------------------------------------
# Dataset characterization (§VII text: tuple counts, references,
# degree averages — the numbers that motivate Rmax defaults)
# ----------------------------------------------------------------------
def dataset_stats(scale: str = "bench") -> FigureReport:
    """The dataset table: sizes, density ratios, result structure."""
    from repro.analysis.graph_stats import (
        keyword_frequency_table,
        profile_database,
    )
    from repro.analysis.result_stats import profile_results
    from repro.datasets.vocab import BENCH_BANDS

    blocks: List[str] = []
    for dataset in ("dblp", "imdb"):
        bundle = load_dataset(dataset, scale)
        profile = profile_database(bundle.label, bundle.db, bundle.dbg)
        blocks.append(profile.render())

        keywords = [band.keywords[0] for band in BENCH_BANDS]
        rows = keyword_frequency_table(bundle.dbg, keywords)
        blocks.append("  planted KWF check: " + ", ".join(
            f"{kw}={kwf:.5f}" for kw, _, kwf in rows))

        params = bundle.params
        results = []
        for community in bundle.search.iter_all(params.query(),
                                                params.default_rmax):
            results.append(community)
            if len(results) >= 300:
                break
        blocks.append("  default-query results: "
                      + profile_results(results).render())
    header = ("Dataset characterization (paper §VII text: sizes, "
              "density, result structure)")
    return FigureReport("datasets", header + "\n\n" + "\n\n".join(blocks))


# ----------------------------------------------------------------------
# Delay distribution (the claim behind the paper's complexity theorem:
# PD's inter-answer gap does not grow with the answer index)
# ----------------------------------------------------------------------
def delay_distribution(scale: str = "bench") -> FigureReport:
    """Per-answer delay profile for PDall vs BUall/TDall."""
    from repro.analysis.delay_profile import profile_delays

    bundle = load_dataset("imdb", scale)
    params = bundle.params
    keywords = params.query(l=3)
    cap = ALL_CAPS[scale]

    blocks: List[str] = [
        f"Per-answer delay on IMDB/{scale}, query {keywords}, "
        f"Rmax={params.default_rmax:g}, first {cap} answers.",
        "drift = mean gap of second half / first half; polynomial "
        "delay predicts ~1 for PDall, growth for the pool baselines.",
        "",
    ]
    for alg in ALL_ALGS:
        profile = profile_delays(
            bundle.search.iter_all(keywords, params.default_rmax,
                                   algorithm=alg,
                                   budget_seconds=BUDGETS[scale]),
            max_answers=cap)
        blocks.append(f"  {alg}all: {profile.render()}")
    return FigureReport("delay", "\n".join(blocks))


# ----------------------------------------------------------------------
# Scalability (not a paper figure: how the pure-Python implementation
# scales with dataset size — useful context for every absolute number)
# ----------------------------------------------------------------------
def scaling(scale: str = "bench") -> FigureReport:
    """PDall delay, projection size, and index build vs dataset size."""
    import time as _time

    from repro.core.search import CommunitySearch
    from repro.datasets.dblp import DBLPConfig, dblp_graph
    from repro.datasets.vocab import query_keywords

    author_counts = {"tiny": (100, 200, 400),
                     "bench": (500, 1_000, 2_000, 4_000),
                     "paper": (1_000, 2_000, 4_000, 8_000)}[scale]
    rows: List[str] = []
    header = (f"{'authors':>8} {'tuples':>8} {'index(s)':>9} "
              f"{'proj n':>7} {'frac':>7} {'PDall ms/ans':>13} "
              f"{'|O|':>5}")
    rows.append(header)
    rows.append("-" * len(header))
    keywords = query_keywords(0.0009, 3)
    for n_authors in author_counts:
        db, dbg = dblp_graph(DBLPConfig(n_authors=n_authors))
        search = CommunitySearch(dbg)
        start = _time.perf_counter()
        search.build_index(radius=8.0)
        index_seconds = _time.perf_counter() - start

        projection = search.project(keywords, 6.0)
        start = _time.perf_counter()
        count = 0
        for _ in search.iter_all(keywords, 6.0):
            count += 1
            if count >= 500:
                break
        elapsed = _time.perf_counter() - start
        delay_ms = 1000.0 * elapsed / count if count else float("nan")
        rows.append(
            f"{n_authors:>8} {db.total_rows():>8} "
            f"{index_seconds:>9.2f} {projection.n:>7} "
            f"{projection.fraction_of(dbg):>7.3%} {delay_ms:>13.2f} "
            f"{count:>5}")
    header_text = ("Scalability — synthetic DBLP, query KWF=.0009 l=3 "
                   "Rmax=6 (pure-Python constant factors)")
    return FigureReport("scaling", header_text + "\n" + "\n".join(rows))


#: CLI dispatch table.
FIGURES: Dict[str, Callable[..., FigureReport]] = {
    "table1": lambda scale: table1_ranking(),
    "2": lambda scale: figure2_trees(),
    "datasets": dataset_stats,
    "delay": delay_distribution,
    "scaling": scaling,
    "9": lambda scale: figure9(scale),
    "10": lambda scale: figure10("imdb", scale),
    "10-dblp": lambda scale: figure10("dblp", scale),
    "11": lambda scale: figure11(scale),
    "12": lambda scale: figure12(scale),
    "index": lambda scale: index_stats(scale),
}
