"""Benchmark parameters (paper Tables II/IV) and dataset loading.

The sweeps mirror the paper exactly:

=========  ==============================  =======
parameter  range                           default
=========  ==============================  =======
KWF        .0003 .0006 .0009 .0012 .0015   .0009
l          2 3 4 5 6                       4
Rmax       DBLP 4–8, IMDB 9–13             6 / 11
k          50 100 150 200 250              150
=========  ==============================  =======

Datasets come in three scales: ``tiny`` (unit tests), ``bench``
(pytest-benchmark, a couple of minutes end to end) and ``paper``
(the CLI's fuller run). Loaded bundles are cached per process since
index construction dominates setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.search import CommunitySearch
from repro.engine.engine import QueryEngine
from repro.datasets.dblp import DBLPConfig, dblp_graph
from repro.datasets.imdb import IMDBConfig, imdb_graph
from repro.datasets.vocab import KWF_VALUES, query_keywords
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.rdb.database import Database


@dataclass(frozen=True)
class BenchParams:
    """One dataset's sweep grid (paper Table II / IV)."""

    kwf_values: Tuple[float, ...]
    l_values: Tuple[int, ...]
    rmax_values: Tuple[float, ...]
    k_values: Tuple[int, ...]
    default_kwf: float
    default_l: int
    default_rmax: float
    default_k: int
    index_radius: float

    def query(self, kwf: Optional[float] = None,
              l: Optional[int] = None) -> List[str]:
        """The l-keyword query for a sweep point."""
        return query_keywords(
            self.default_kwf if kwf is None else kwf,
            self.default_l if l is None else l)


DBLP_PARAMS = BenchParams(
    kwf_values=KWF_VALUES,
    l_values=(2, 3, 4, 5, 6),
    rmax_values=(4.0, 5.0, 6.0, 7.0, 8.0),
    k_values=(50, 100, 150, 200, 250),
    default_kwf=0.0009,
    default_l=4,
    default_rmax=6.0,
    default_k=150,
    index_radius=8.0,
)

IMDB_PARAMS = BenchParams(
    kwf_values=KWF_VALUES,
    l_values=(2, 3, 4, 5, 6),
    rmax_values=(9.0, 10.0, 11.0, 12.0, 13.0),
    k_values=(50, 100, 150, 200, 250),
    default_kwf=0.0009,
    default_l=4,
    default_rmax=11.0,
    default_k=150,
    index_radius=13.0,
)

#: Dataset scales: generator configs per (dataset, scale).
_SCALES: Dict[Tuple[str, str], object] = {
    ("dblp", "tiny"): DBLPConfig.tiny(),
    ("dblp", "bench"): DBLPConfig(n_authors=2_500),
    ("dblp", "paper"): DBLPConfig(n_authors=6_000),
    ("imdb", "tiny"): IMDBConfig.tiny(),
    ("imdb", "bench"): IMDBConfig(n_users=300, n_movies=200,
                                  n_ratings=8_000),
    ("imdb", "paper"): IMDBConfig(n_users=600, n_movies=400,
                                  n_ratings=24_000),
}


@dataclass
class DatasetBundle:
    """A generated dataset with its built index and sweep grid."""

    name: str
    scale: str
    db: Database
    dbg: DatabaseGraph
    search: CommunitySearch
    params: BenchParams

    @property
    def label(self) -> str:
        """Display name: ``"dblp/bench"``."""
        return f"{self.name}/{self.scale}"

    @property
    def engine(self) -> QueryEngine:
        """The facade's query engine (registry + projection cache).

        Benchmarks that sweep one ``(keywords, rmax)`` point per
        algorithm hit the cache after the first projection; pass
        ``use_cache=False`` to :meth:`QueryEngine.project` to measure
        Algorithm 6 itself."""
        return self.search.engine


_CACHE: Dict[Tuple[str, str], DatasetBundle] = {}


def load_dataset(name: str, scale: str = "bench") -> DatasetBundle:
    """Generate (or fetch cached) a dataset with its index built."""
    key = (name, scale)
    if key in _CACHE:
        return _CACHE[key]
    if key not in _SCALES:
        raise QueryError(
            f"unknown dataset/scale {name}/{scale}; known: "
            f"{sorted(set(_SCALES))}")
    if name == "dblp":
        db, dbg = dblp_graph(_SCALES[key])
        params = DBLP_PARAMS
    else:
        db, dbg = imdb_graph(_SCALES[key])
        params = IMDB_PARAMS
    search = CommunitySearch(dbg)
    search.build_index(radius=params.index_radius)
    bundle = DatasetBundle(name, scale, db, dbg, search, params)
    _CACHE[key] = bundle
    return bundle


def publish_snapshot(store_root, bundle: DatasetBundle,
                     compress: bool = False):
    """Publish a bundle's graph + index into a snapshot store.

    The one build-to-artifact path shared by the CLI
    (``python -m repro snapshot build``) and the benchmark harness
    (``benchmarks/bench_snapshot_load.py``): provenance records the
    dataset, scale and index radius so ``snapshot inspect`` can say
    where an artifact came from. Returns the published
    :class:`~repro.snapshot.Snapshot`.
    """
    from repro.snapshot.store import SnapshotStore

    store = SnapshotStore(store_root)
    return store.publish(
        bundle.dbg, bundle.search.index,
        provenance={
            "dataset": bundle.name,
            "scale": bundle.scale,
            "index_radius": bundle.params.index_radius,
            "builder": "repro.bench.workloads",
        },
        compress=compress)


def clear_cache() -> None:
    """Drop cached bundles (tests that tweak scales use this)."""
    _CACHE.clear()
