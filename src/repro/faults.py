"""Deterministic fault injection: named failpoints, armed on demand.

Production code is sprinkled with **failpoint sites** — named hooks at
the places that can fail for real (snapshot section reads, worker task
execution, pool dispatch/respawn, service request handling). A site is
a single call::

    faults.hit("worker.exec")                    # maybe raise/sleep/exit
    data = faults.corrupt("snapshot.section", data)   # maybe flip bytes

With no failpoints armed (the production state) a site is one module
attribute load and a falsy branch — the chaos suite's micro-benchmark
(``benchmarks/bench_faults_overhead.py``) guards that this stays
unmeasurable. Arming happens two ways:

* the ``REPRO_FAILPOINTS`` environment variable, which worker
  *processes* inherit — e.g.::

      REPRO_FAILPOINTS="worker.0.exec=once:sleep(30);snapshot.section=always:corrupt"

* the :func:`activate` / :func:`clear` API, for same-process tests.

Each armed site pairs a **trigger** (when to fire) with an **action**
(what to do):

========================  ==============================================
trigger                   fires
========================  ==============================================
``off``                   never (site stays registered but inert)
``once``                  on the first evaluation only
``always``                on every evaluation
``nth(N)``                on the Nth evaluation only (1-based)
``prob(p,seed)``          on each evaluation with probability ``p``,
                          from a private ``random.Random(seed)`` — the
                          fire pattern is a pure function of the seed
========================  ==============================================

========================  ==============================================
action                    effect
========================  ==============================================
``raise``                 raise :class:`~repro.exceptions.FaultInjectedError`
``raise(Name)``           raise the exception class ``Name`` resolved
                          from :mod:`repro.exceptions` or
                          :mod:`repro.service.errors`
``sleep(seconds)``        block the calling thread (a hung worker)
``corrupt``               at a :func:`corrupt` site: flip bytes in the
                          payload deterministically; at a :func:`hit`
                          site: no-op
``exit`` / ``exit(code)``  ``os._exit`` — an instant process death, no
                          cleanup handlers (a crashed worker)
========================  ==============================================

Everything is deterministic: ``once``/``nth`` count per-process calls,
``prob`` draws from its own seeded generator, and byte corruption
targets fixed offsets — a chaos scenario replays identically run after
run. No sleeps-and-hope anywhere.
"""

from __future__ import annotations

import os
import random
import re
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import FaultInjectedError, ReproError

#: Environment variable holding ``site=trigger:action`` specs,
#: separated by ``;`` (or ``,``).
ENV_VAR = "REPRO_FAILPOINTS"

#: Fast-path flag: ``hit``/``corrupt`` return immediately when False.
#: Recomputed by :func:`activate`/:func:`clear` in the same
#: :data:`_LOCK` block as their registry mutation, so it can never go
#: stale relative to :data:`_SITES`.
_ACTIVE = False

_LOCK = threading.Lock()

_SITES: Dict[str, "Failpoint"] = {}

_CALL_RE = re.compile(r"^([a-z-]+)(?:\((.*)\))?$")


def _parse_args(raw: Optional[str]) -> List[str]:
    """Split a ``f(a, b)`` argument blob into stripped tokens."""
    if not raw:
        return []
    return [part.strip() for part in raw.split(",") if part.strip()]


class FailpointSpecError(ReproError):
    """A ``site=trigger:action`` spec string cannot be parsed."""


class Failpoint:
    """One armed site: a trigger deciding *when*, an action *what*.

    Instances are internal — tests and operators speak spec strings
    (``once:raise``, ``nth(3):sleep(0.5)``, ``prob(0.2,42):exit``)
    through :func:`activate` / :data:`ENV_VAR`.
    """

    def __init__(self, name: str, spec: str) -> None:
        self.name = name
        self.spec = spec
        trigger, _, action = spec.partition(":")
        trigger = trigger.strip().lower()
        action = action.strip()
        if not action and trigger != "off":
            raise FailpointSpecError(
                f"failpoint {name!r}: spec {spec!r} needs "
                f"'trigger:action'")
        self._calls = 0
        self._fired = False
        self._rng: Optional[random.Random] = None
        self._parse_trigger(trigger, name)
        self._parse_action(action, name)

    # -- parsing -------------------------------------------------------
    def _parse_trigger(self, trigger: str, name: str) -> None:
        """Decode the *when* half of the spec."""
        match = _CALL_RE.match(trigger)
        if match is None:
            raise FailpointSpecError(
                f"failpoint {name!r}: bad trigger {trigger!r}")
        kind, args = match.group(1), _parse_args(match.group(2))
        self.trigger = kind
        self.nth = 0
        self.probability = 0.0
        if kind in ("off", "once", "always"):
            if args:
                raise FailpointSpecError(
                    f"failpoint {name!r}: trigger {kind!r} takes no "
                    f"arguments")
        elif kind == "nth":
            if len(args) != 1 or not args[0].isdigit() \
                    or int(args[0]) < 1:
                raise FailpointSpecError(
                    f"failpoint {name!r}: nth(N) needs a positive "
                    f"integer, got {args}")
            self.nth = int(args[0])
        elif kind in ("prob", "probability"):
            if len(args) != 2:
                raise FailpointSpecError(
                    f"failpoint {name!r}: prob(p, seed) needs two "
                    f"arguments, got {args}")
            try:
                self.probability = float(args[0])
                seed = int(args[1])
            except ValueError as exc:
                raise FailpointSpecError(
                    f"failpoint {name!r}: bad prob arguments "
                    f"{args}") from exc
            if not 0.0 <= self.probability <= 1.0:
                raise FailpointSpecError(
                    f"failpoint {name!r}: probability must be in "
                    f"[0, 1], got {self.probability}")
            self.trigger = "prob"
            self._rng = random.Random(seed)
        else:
            raise FailpointSpecError(
                f"failpoint {name!r}: unknown trigger {kind!r}")

    def _parse_action(self, action: str, name: str) -> None:
        """Decode the *what* half of the spec."""
        if self.trigger == "off":
            self.action, self.action_args = "off", []
            return
        match = _CALL_RE.match(action)
        if match is None:
            raise FailpointSpecError(
                f"failpoint {name!r}: bad action {action!r}")
        kind, args = match.group(1), _parse_args(match.group(2))
        if kind == "corrupt-bytes":
            kind = "corrupt"
        if kind not in ("raise", "sleep", "corrupt", "exit"):
            raise FailpointSpecError(
                f"failpoint {name!r}: unknown action {kind!r}")
        if kind == "sleep":
            if len(args) != 1:
                raise FailpointSpecError(
                    f"failpoint {name!r}: sleep(seconds) needs one "
                    f"argument, got {args}")
            try:
                float(args[0])
            except ValueError as exc:
                raise FailpointSpecError(
                    f"failpoint {name!r}: bad sleep duration "
                    f"{args[0]!r}") from exc
        self.action = kind
        self.action_args = args

    # -- evaluation ----------------------------------------------------
    def should_fire(self) -> bool:
        """Advance this site's call count; True when the action runs."""
        with _LOCK:
            self._calls += 1
            calls = self._calls
            if self.trigger == "off":
                return False
            if self.trigger == "once":
                if self._fired:
                    return False
                self._fired = True
                return True
            if self.trigger == "always":
                return True
            if self.trigger == "nth":
                return calls == self.nth
            # prob: a private seeded stream — deterministic replay.
            assert self._rng is not None
            return self._rng.random() < self.probability

    def perform(self, data: Optional[bytes] = None
                ) -> Optional[bytes]:
        """Run the action; returns (possibly corrupted) ``data``."""
        if self.action == "raise":
            raise _exception_for(self.action_args)(
                f"failpoint {self.name!r} fired ({self.spec})")
        if self.action == "sleep":
            time.sleep(float(self.action_args[0]))
            return data
        if self.action == "exit":
            code = int(self.action_args[0]) if self.action_args else 1
            os._exit(code)
        if self.action == "corrupt" and data is not None:
            return _flip_bytes(data)
        return data


def _exception_for(args: List[str]) -> Callable[..., BaseException]:
    """Resolve ``raise(Name)`` to an exception class (lazily).

    Looks in :mod:`repro.exceptions` first, then
    :mod:`repro.service.errors` (imported on demand — faults must not
    depend on the service layer). Defaults to
    :class:`FaultInjectedError`.
    """
    if not args:
        return FaultInjectedError
    name = args[0]
    import repro.exceptions as exceptions_module
    candidate: Any = getattr(exceptions_module, name, None)
    if candidate is None:
        try:
            import repro.service.errors as service_errors
            candidate = getattr(service_errors, name, None)
        except ImportError:           # pragma: no cover — stdlib only
            candidate = None
    if not (isinstance(candidate, type)
            and issubclass(candidate, BaseException)):
        raise FailpointSpecError(
            f"raise({name}): unknown exception class")
    return candidate


def _flip_bytes(data: bytes) -> bytes:
    """Deterministically damage a payload (first/middle/last byte)."""
    if not data:
        return b"\xff"                # corrupting nothing adds a byte
    corrupted = bytearray(data)
    for offset in {0, len(data) // 2, len(data) - 1}:
        corrupted[offset] ^= 0xFF
    return bytes(corrupted)


# ----------------------------------------------------------------------
# arming / disarming
# ----------------------------------------------------------------------
def _rearm_locked() -> None:
    """Recompute the fast-path flag; caller must hold :data:`_LOCK`.

    Mutation and recomputation happen in one locked block so a
    concurrent arm/disarm can neither iterate a registry mid-change
    nor leave :data:`_ACTIVE` stale relative to it.
    """
    global _ACTIVE
    _ACTIVE = any(fp.trigger != "off" for fp in _SITES.values())


def activate(name: str, spec: str) -> None:
    """Arm (or re-arm) the site ``name`` with ``trigger:action``."""
    failpoint = Failpoint(name, spec)
    with _LOCK:
        _SITES[name] = failpoint
        _rearm_locked()


def clear(name: Optional[str] = None) -> None:
    """Disarm one site (or every site, with no argument)."""
    with _LOCK:
        if name is None:
            _SITES.clear()
        else:
            _SITES.pop(name, None)
        _rearm_locked()


def configure(text: str) -> None:
    """Arm sites from one ``site=spec;site=spec`` string."""
    for chunk in re.split(r"[;,](?![^()]*\))", text):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, spec = chunk.partition("=")
        if not sep or not name.strip():
            raise FailpointSpecError(
                f"bad failpoint entry {chunk!r} (want site=spec)")
        activate(name.strip(), spec.strip())


def reload_env() -> None:
    """Reset the registry to exactly what :data:`ENV_VAR` says.

    Called at import and by worker processes at startup, so a spawned
    (not forked) worker still sees the failpoints the test armed in
    the environment before starting the pool.
    """
    clear()
    text = os.environ.get(ENV_VAR, "")
    if text:
        configure(text)


def active_sites() -> Dict[str, str]:
    """``site -> spec`` of every registered failpoint (for /healthz)."""
    with _LOCK:
        return {name: fp.spec for name, fp in _SITES.items()}


def is_armed() -> bool:
    """Whether any site is armed (the fast-path flag)."""
    return _ACTIVE


# ----------------------------------------------------------------------
# sites
# ----------------------------------------------------------------------
def hit(name: str) -> None:
    """Evaluate the failpoint ``name``; inert unless armed.

    The production fast path is the first two lines: one global load
    and a falsy branch.
    """
    if not _ACTIVE:
        return
    failpoint = _SITES.get(name)
    if failpoint is not None and failpoint.should_fire():
        failpoint.perform()


def corrupt(name: str, data: bytes) -> bytes:
    """Evaluate ``name`` against a byte payload.

    A ``corrupt`` action returns deterministically damaged bytes; any
    other action behaves as in :func:`hit`. Unarmed, returns ``data``
    untouched.
    """
    if not _ACTIVE:
        return data
    failpoint = _SITES.get(name)
    if failpoint is None or not failpoint.should_fire():
        return data
    result = failpoint.perform(data)
    return data if result is None else result


reload_env()
