"""repro — keyword community search over relational database graphs.

A faithful, from-scratch reproduction of

    Lu Qin, Jeffrey Xu Yu, Lijun Chang, Yufei Tao.
    "Querying Communities in Relational Databases", ICDE 2009.

Quick start::

    from repro import CommunitySearch
    from repro.datasets import figure4_graph

    dbg = figure4_graph()
    search = CommunitySearch(dbg)
    search.build_index(radius=8)
    for community in search.top_k(["a", "b", "c"], k=5, rmax=8):
        print(community.describe(dbg))

Layout:

* :mod:`repro.core` — the paper's algorithms (PDall, PDk, BU/TD
  baselines, projection, naive reference) and the community model;
* :mod:`repro.engine` — the execution layer: query specs, the
  algorithm registry, the LRU projection cache, and per-stage
  instrumentation contexts;
* :mod:`repro.graph` — weighted digraph substrate with bounded
  multi-source Dijkstra;
* :mod:`repro.rdb` — the relational engine and graph materialization;
* :mod:`repro.text` — tokenizer and the two inverted indexes;
* :mod:`repro.snapshot` — the immutable snapshot artifact:
  content-addressed graph+index bundles, an atomically-published
  store, and the hot-reload path the service serves from;
* :mod:`repro.datasets` — synthetic DBLP / IMDB and the paper's toy
  examples;
* :mod:`repro.bench` — the benchmark harness regenerating every figure
  and table of the paper's evaluation (``python -m repro.bench``).
"""

from repro.core.comm_all import all_communities, enumerate_all
from repro.core.comm_k import TopKStream, top_k
from repro.core.community import Community, Core
from repro.core.getcommunity import get_community
from repro.core.projection import ProjectionResult, project
from repro.core.search import CommunitySearch, ProjectedTopKStream
from repro.engine import (
    AlgorithmRegistry,
    AlgorithmSpec,
    ProjectionCache,
    QueryContext,
    QueryEngine,
    QuerySpec,
)
from repro.exceptions import (
    EdgeError,
    GraphError,
    IntegrityError,
    NodeNotFoundError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph
from repro.rdb.database import Database
from repro.rdb.graph_builder import build_database_graph
from repro.rdb.schema import Column, ForeignKey, TableSchema
from repro.text.inverted_index import CommunityIndex
from repro.text.tokenizer import Tokenizer, tokenize

__version__ = "1.0.0"

__all__ = [
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "Column",
    "Community",
    "CommunityIndex",
    "CommunitySearch",
    "Core",
    "Database",
    "DatabaseGraph",
    "DiGraph",
    "EdgeError",
    "ForeignKey",
    "GraphError",
    "IntegrityError",
    "NodeNotFoundError",
    "ProjectedTopKStream",
    "ProjectionCache",
    "ProjectionResult",
    "QueryContext",
    "QueryEngine",
    "QueryError",
    "QuerySpec",
    "ReproError",
    "SchemaError",
    "TableSchema",
    "TopKStream",
    "Tokenizer",
    "all_communities",
    "build_database_graph",
    "enumerate_all",
    "get_community",
    "project",
    "tokenize",
    "top_k",
    "__version__",
]
