"""Python client for the community-query service.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over stdlib ``http.client`` (no
dependencies), re-raising the server's error taxonomy client-side: a
``410`` becomes
:class:`~repro.service.errors.SessionGone`, a ``429``
:class:`~repro.service.errors.Overloaded`, a ``503``
:class:`~repro.service.errors.DeadlineExceeded` — so retry logic is
written against exception types, not status codes.

::

    client = ServiceClient("http://127.0.0.1:8420")
    top = client.query(["kate", "smith"], rmax=6, k=10)

    with client.open_session(["kate", "smith"], rmax=6) as session:
        first = session.next(10)          # ranks 1-10
        more = session.next(40)           # ranks 11-50, no recompute

The CLI's ``serve`` smoke path and the throughput benchmark both
drive the service through this module.

**Retries.** With ``retries=N`` (default 0 — fail fast, the historic
behavior), :meth:`ServiceClient.request` retries transient failures —
HTTP 429/503 and connection-level errors — up to ``N`` times with
capped exponential backoff plus jitter, honoring the server's
``Retry-After`` header when present. Pass ``retry_seed`` for a
deterministic jitter stream (the chaos tests do). Every raised
:class:`~repro.exceptions.ServiceError` carries ``status`` (the class
attribute) and ``retry_after`` (the parsed header, or ``None``), so
callers can build their own policies too.

Connection-level failures are ambiguous — the first attempt may have
executed server-side before the connection tore — so they are only
retried for *idempotent* exchanges: non-``POST`` methods by default,
plus the ``POST`` endpoints that are safe to re-send (``/query`` and
``/batch``, which are stateless reads). Session creation,
``/sessions/{id}/next`` (advances the cursor) and ``/admin/reload``
are never replayed on a torn connection; a definitive 429/503
*response* proves the request was rejected, so those retry
regardless.

**Keep-alive.** Each client owns a small pool of persistent
``http.client.HTTPConnection`` objects, so repeated calls (router
fan-out legs, closed-loop benchmark clients) stop paying TCP setup
per request. A server may close an idle kept-alive connection at any
time — the classic keep-alive race — so an exchange that dies on a
*reused* connection before any response bytes arrive is replayed once
on a fresh connection, regardless of idempotency: the server
provably never started processing it. Failures on a *fresh*
connection keep their usual ambiguous :class:`ServiceUnreachable`
semantics. :attr:`ServiceClient.connections_opened` counts physical
connects (observability for the reuse property).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.core.community import Community
from repro.service.errors import (
    RETRYABLE_STATUSES,
    ServiceError,
    ServiceUnreachable,
    for_status,
)
from repro.service.serialize import communities_from_dicts

#: Default per-call socket timeout (seconds). Distinct from the
#: server-side request deadline; this guards against a dead server.
DEFAULT_TIMEOUT = 30.0

#: First backoff delay (seconds); doubles each retry.
DEFAULT_BACKOFF_BASE = 0.05

#: Upper bound on a single backoff delay (seconds).
DEFAULT_BACKOFF_CAP = 2.0

#: Most idle kept-alive connections retained per client; extras are
#: closed on check-in. Concurrent callers beyond the cap still work —
#: they just open (and then drop) additional connections.
POOL_CAP = 8

#: Connection-level errors that, on a *reused* keep-alive socket with
#: no response bytes seen, prove the server closed the idle
#: connection before our request — safe to replay once on a fresh
#: connection regardless of idempotency.
_STALE_SOCKET_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


def _retry_after_of(headers: Any) -> Optional[float]:
    """The ``Retry-After`` header as seconds, if parseable.

    Only the delta-seconds form is produced by this service; an
    HTTP-date (or garbage) yields ``None`` rather than an exception —
    a malformed hint must not break error propagation."""
    value = headers.get("Retry-After") if headers else None
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


class ServiceClient:
    """A thin, dependency-free HTTP client for one service base URL."""

    def __init__(self, base_url: str,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 0,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 retry_seed: Optional[int] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(retry_seed)
        #: Lifetime count of retry sleeps this client performed.
        self.retries_performed = 0
        #: Lifetime count of physical TCP connects (reuse telemetry).
        self.connections_opened = 0
        split = urllib.parse.urlsplit(self.base_url)
        self._scheme = split.scheme or "http"
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port
        self._base_path = split.path.rstrip("/")
        self._pool: List[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Close every pooled keep-alive connection (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: release pooled connections."""
        self.close()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None,
                idempotent: Optional[bool] = None) -> Any:
        """One logical HTTP exchange; JSON in, JSON (or text) out.

        Non-2xx responses raise the matching
        :class:`~repro.exceptions.ServiceError` subclass with the
        server's error message, its HTTP ``status``, and the parsed
        ``retry_after`` (``None`` when the server sent no hint). When
        :attr:`retries` is positive, 429/503 and connection failures
        are retried with capped exponential backoff + jitter before
        the final error escapes; anything else (400/404/410/500)
        fails immediately — retrying a malformed request or a dead
        session cannot succeed.

        ``idempotent`` gates connection-error retries: a torn
        connection (:class:`ServiceUnreachable`) may hide a request
        the server already executed, so it is only retried when the
        exchange is safe to replay. ``None`` (the default) means
        "every method except POST"; pass ``True`` for POSTs that are
        stateless reads (``query``/``batch`` do) or ``False`` to
        forbid replays outright. Definitive 429/503 *responses* are
        retried regardless — the server rejected the request, so it
        did not execute.
        """
        data = None
        content_type = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        status, headers, body = self._with_retries(
            method, path, data, content_type, idempotent)
        text = body.decode("utf-8")
        if headers.get("Content-Type", "").startswith(
                "application/json"):
            return json.loads(text)
        return text

    def request_raw(self, method: str, path: str,
                    body: Optional[bytes] = None,
                    content_type: str = "application/octet-stream",
                    idempotent: Optional[bool] = None
                    ) -> Tuple[bytes, Dict[str, str]]:
        """Like :meth:`request` but bytes in, bytes out.

        The snapshot-transfer endpoints move binary section payloads
        (gzip frames, packed arrays) that must not round-trip through
        JSON. Returns ``(body, headers)``; non-2xx responses raise
        the same :class:`~repro.exceptions.ServiceError` taxonomy as
        :meth:`request`, and the same retry policy applies.
        """
        status, headers, out = self._with_retries(
            method, path, body, content_type if body is not None
            else None, idempotent)
        return out, headers

    def _with_retries(self, method: str, path: str,
                      data: Optional[bytes],
                      content_type: Optional[str],
                      idempotent: Optional[bool]
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """The shared retry loop around one logical exchange."""
        if idempotent is None:
            idempotent = method.upper() != "POST"
        attempt = 0
        while True:
            try:
                return self._attempt(method, path, data, content_type)
            except ServiceError as error:
                status = getattr(error, "status", 500)
                retryable = status in RETRYABLE_STATUSES
                if isinstance(error, ServiceUnreachable) \
                        and not idempotent:
                    retryable = False
                if attempt >= self.retries or not retryable:
                    raise
                time.sleep(self._backoff(
                    attempt, getattr(error, "retry_after", None)))
                self.retries_performed += 1
                attempt += 1

    def _backoff(self, attempt: int,
                 retry_after: Optional[float]) -> float:
        """Delay before retry ``attempt + 1``.

        The server's ``Retry-After`` wins when present (it knows its
        own drain/queue state); otherwise capped exponential backoff
        with full jitter, so a thundering herd of retrying clients
        decorrelates."""
        if retry_after is not None:
            return max(0.0, retry_after)
        cap = min(self.backoff_cap,
                  self.backoff_base * (2.0 ** attempt))
        return cap * self._rng.random()

    def _attempt(self, method: str, path: str,
                 data: Optional[bytes],
                 content_type: Optional[str]
                 ) -> Tuple[int, Dict[str, str], bytes]:
        """One logical HTTP exchange on a kept-alive connection.

        A stale-socket failure on a *reused* connection (the server
        closed it while idle, before any response bytes) is replayed
        exactly once on a fresh connection; every other
        connection-level failure maps to
        :class:`ServiceUnreachable` for the outer retry policy.
        """
        faults.hit("client.request")
        conn, reused = self._checkout()
        try:
            status, headers, body = self._roundtrip(
                conn, method, path, data, content_type)
        except _STALE_SOCKET_ERRORS as error:
            conn.close()
            if not reused:
                raise self._unreachable(error) from None
            conn, _ = self._checkout(fresh=True)
            try:
                status, headers, body = self._roundtrip(
                    conn, method, path, data, content_type)
            except (OSError, http.client.HTTPException) as err:
                conn.close()
                raise self._unreachable(err) from None
        except (OSError, http.client.HTTPException) as error:
            conn.close()
            raise self._unreachable(error) from None
        if headers.get("Connection", "").lower() == "close":
            conn.close()
        else:
            self._checkin(conn)
        if 200 <= status < 300:
            return status, headers, body
        text = body.decode("utf-8", "replace")
        try:
            message = json.loads(text).get("error", text)
        except (ValueError, AttributeError):
            message = text or f"HTTP {status}"
        raised = for_status(status, message)
        raised.retry_after = _retry_after_of(headers)
        raise raised from None

    def _roundtrip(self, conn: http.client.HTTPConnection,
                   method: str, path: str, data: Optional[bytes],
                   content_type: Optional[str]
                   ) -> Tuple[int, Dict[str, str], bytes]:
        """One physical request/response on ``conn``.

        The body is always fully read so the connection is clean for
        the next exchange.
        """
        headers = {"Accept": "application/json",
                   "Connection": "keep-alive"}
        if content_type is not None:
            headers["Content-Type"] = content_type
        conn.request(method, self._base_path + path,
                     body=data, headers=headers)
        response = conn.getresponse()
        body = response.read()
        return (response.status,
                {k: v for k, v in response.getheaders()},
                body)

    def _checkout(self, fresh: bool = False
                  ) -> Tuple[http.client.HTTPConnection, bool]:
        """A connection to the base host: pooled (reused) or new."""
        if not fresh:
            with self._pool_lock:
                if self._pool:
                    return self._pool.pop(), True
        factory = (http.client.HTTPSConnection
                   if self._scheme == "https"
                   else http.client.HTTPConnection)
        self.connections_opened += 1
        return factory(self._host, self._port,
                       timeout=self.timeout), False

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        """Return a clean connection to the idle pool (cap-bounded)."""
        with self._pool_lock:
            if len(self._pool) < POOL_CAP:
                self._pool.append(conn)
                return
        conn.close()

    def _unreachable(self, error: Exception) -> ServiceUnreachable:
        """Map a connection-level failure onto the error taxonomy."""
        if isinstance(error, (ConnectionRefusedError,
                              socket.gaierror)):
            raised = ServiceUnreachable(
                f"cannot reach {self.base_url}: {error}")
        else:
            # The connection tore mid-exchange (reset, truncated
            # response, timeout during read) — same retryable class
            # as never reaching the server at all.
            raised = ServiceUnreachable(
                f"connection to {self.base_url} failed "
                f"mid-request: {error}")
        raised.retry_after = None
        return raised

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text."""
        return self.request("GET", "/metrics")

    def admin_reload(self, path: Optional[str] = None,
                     snapshot: Optional[str] = None
                     ) -> Dict[str, Any]:
        """``POST /admin/reload``: swap onto the newest snapshot.

        With ``path`` given, the server reloads from that snapshot
        directory or store root instead of its configured source.
        With ``snapshot`` given, the server resolves that snapshot id
        against its own configured store — the cross-box form, which
        needs no caller-visible filesystem paths. Returns the
        server's ``{reloaded, snapshot, generation, ...}`` payload.
        """
        payload: Dict[str, Any] = {}
        if path is not None:
            payload["path"] = path
        if snapshot is not None:
            payload["snapshot"] = snapshot
        return self.request("POST", "/admin/reload", payload)

    def admin_delta(self, nodes: Sequence[Dict[str, Any]] = (),
                    edges: Sequence[Sequence[Any]] = (),
                    banks_reweight: bool = False) -> Dict[str, Any]:
        """``POST /admin/delta``: ingest one graph delta.

        ``nodes`` are ``{"keywords": [...], "label": ...,
        "provenance": [table, key] | null}`` objects (ids are
        assigned densely after the existing nodes); ``edges`` are
        ``[source, target, weight]`` triples, endpoints referencing
        existing or just-added nodes. Returns the server's ``{lsn,
        nodes_added, edges_added, generation, ...}`` payload — with a
        WAL attached, a returned ``lsn`` is durably acknowledged.

        Deliberately **not** marked idempotent: a delta re-applied on
        a torn connection would double-grow the graph, so connection
        failures surface instead of replaying (a definitive 429/503
        response still retries — the server rejected it unexecuted).
        """
        payload: Dict[str, Any] = {
            "nodes": list(nodes),
            "edges": [list(edge) for edge in edges],
        }
        if banks_reweight:
            payload["banks_reweight"] = True
        return self.request("POST", "/admin/delta", payload)

    def query(self, keywords: Sequence[str], rmax: float,
              k: Optional[int] = None, algorithm: str = "pd",
              aggregate: str = "sum",
              deadline_seconds: Optional[float] = None,
              labels: bool = False, mode: Optional[str] = None
              ) -> Dict[str, Any]:
        """``POST /query``: one-shot COMM-all (no ``k``) or COMM-k.

        Returns the raw response dict; :meth:`query_communities`
        returns :class:`~repro.core.community.Community` objects
        instead.
        """
        payload: Dict[str, Any] = {
            "keywords": list(keywords), "rmax": rmax,
            "algorithm": algorithm, "aggregate": aggregate,
        }
        if k is not None:
            payload["k"] = k
        if mode is not None:
            payload["mode"] = mode
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if labels:
            payload["labels"] = True
        # A query is a stateless read: safe to replay on a torn
        # connection even though it is a POST.
        return self.request("POST", "/query", payload,
                            idempotent=True)

    def query_communities(self, keywords: Sequence[str], rmax: float,
                          **options: Any) -> List[Community]:
        """Like :meth:`query`, decoded to ``Community`` objects."""
        response = self.query(keywords, rmax, **options)
        return communities_from_dicts(response["communities"])

    def batch(self, queries: Sequence[Dict[str, Any]],
              deadline_seconds: Optional[float] = None,
              labels: bool = False) -> Dict[str, Any]:
        """``POST /batch``: many queries in one request, in order.

        Each entry is a ``/query``-shaped dict (``keywords``,
        ``rmax``, optional ``k``/``algorithm``/``aggregate``/...).
        Against a multi-worker server the entries run concurrently on
        the worker processes; the response's ``results`` list matches
        the request order, one query envelope per entry.
        """
        payload: Dict[str, Any] = {"queries": list(queries)}
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if labels:
            payload["labels"] = True
        return self.request("POST", "/batch", payload,
                            idempotent=True)

    def open_session(self, keywords: Sequence[str], rmax: float,
                     aggregate: str = "sum",
                     ttl_seconds: Optional[float] = None,
                     deadline_seconds: Optional[float] = None
                     ) -> "ServiceSession":
        """``POST /sessions``: lease an interactive PDk stream."""
        payload: Dict[str, Any] = {
            "keywords": list(keywords), "rmax": rmax,
            "aggregate": aggregate,
        }
        if ttl_seconds is not None:
            payload["ttl_seconds"] = ttl_seconds
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        response = self.request("POST", "/sessions", payload)
        return ServiceSession(self, response)


class ServiceSession:
    """Client handle on one server-side PDk lease.

    ``next(k)`` enlarges the answer set by up to ``k`` ranked
    communities; the cumulative server-side stats ride along on
    :attr:`last_stats` (their ``project`` timing stays flat across
    calls — the no-recomputation property, observable from here).
    """

    def __init__(self, client: ServiceClient,
                 opened: Dict[str, Any]) -> None:
        self._client = client
        self.id: str = opened["session"]
        self.generation: str = opened["generation"]
        self.ttl_seconds: float = opened["ttl_seconds"]
        #: Cumulative session stats from the most recent response.
        self.last_stats: Dict[str, Any] = opened.get("stats", {})
        self.exhausted = False

    def next(self, k: int = 10, labels: bool = False,
             deadline_seconds: Optional[float] = None
             ) -> List[Community]:
        """Up to ``k`` further communities (410 -> ``SessionGone``)."""
        payload: Dict[str, Any] = {"k": k}
        if labels:
            payload["labels"] = True
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        response = self._client.request(
            "POST", f"/sessions/{self.id}/next", payload)
        self.last_stats = response.get("stats", {})
        self.exhausted = bool(response.get("exhausted", False))
        return communities_from_dicts(response["communities"])

    def next_raw(self, k: int = 10, **options: Any) -> Dict[str, Any]:
        """Like :meth:`next` but returning the raw response dict."""
        payload: Dict[str, Any] = {"k": k}
        payload.update(options)
        response = self._client.request(
            "POST", f"/sessions/{self.id}/next", payload)
        self.last_stats = response.get("stats", {})
        self.exhausted = bool(response.get("exhausted", False))
        return response

    def close(self) -> None:
        """``DELETE /sessions/{id}`` (idempotent)."""
        self._client.request("DELETE", f"/sessions/{self.id}")

    def __enter__(self) -> "ServiceSession":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: release the lease."""
        try:
            self.close()
        except ServiceError:
            pass                 # already gone / server shutting down
