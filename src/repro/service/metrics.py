"""Prometheus text-format metrics for the community service.

``GET /metrics`` renders one scrape of everything observable about a
running service, in the Prometheus exposition format (version 0.0.4 —
``# HELP`` / ``# TYPE`` comments, ``name{labels} value`` samples):

* ``repro_stage_seconds_total{stage=...}`` — wall-clock per engine
  stage (``resolve``/``project``/``enumerate``/``translate``),
  aggregated from every :class:`~repro.engine.QueryContext` the
  service executed;
* ``repro_query_events_total{event=...}`` — the contexts' counters
  (cache hits/misses, projection runs, communities produced, ...);
* ``repro_projection_cache_*`` — every
  :class:`~repro.engine.cache.CacheStats` counter, via its audited
  ``as_dict`` (hit rate included, as a gauge);
* ``repro_admission_*`` / ``repro_sessions_*`` — shedding and lease
  counters, plus queue-depth / in-flight / live-session gauges;
* ``repro_request_seconds`` — an HTTP latency histogram per
  (template) path, with ``repro_requests_total{path,status}``
  response counters.

:class:`ServiceMetrics` holds the request-level state; counters owned
by other components (cache, admission, sessions) are passed in at
render time so there is exactly one owner per number.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.context import QueryContext

#: Latency histogram bucket upper bounds, in seconds. Spans sub-ms
#: cache hits to multi-second cold baselines.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0)


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def escape_label(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


class LatencyHistogram:
    """A fixed-bucket histogram of seconds (cumulative at render)."""

    def __init__(self,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation into its (non-cumulative) bucket."""
        self.count += 1
        self.sum += seconds
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[i] += 1
                return

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            rows.append((bound, running))
        rows.append((float("inf"), self.count))
        return rows


class ServiceMetrics:
    """Thread-safe aggregation point for request-level observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stage_seconds: Dict[str, float] = {}
        self._query_events: Dict[str, int] = {}
        self._responses: Dict[Tuple[str, int], int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_context(self, context: QueryContext) -> None:
        """Fold one query's stage timings and counters in."""
        with self._lock:
            for name, seconds in context.timings.items():
                self._stage_seconds[name] = \
                    self._stage_seconds.get(name, 0.0) + seconds
            for name, value in context.counters.items():
                self._query_events[name] = \
                    self._query_events.get(name, 0) + value

    def observe_request(self, path: str, status: int,
                        seconds: float) -> None:
        """Record one HTTP response (templated path, not raw URL)."""
        with self._lock:
            self._responses[(path, status)] = \
                self._responses.get((path, status), 0) + 1
            histogram = self._latency.get(path)
            if histogram is None:
                histogram = self._latency[path] = LatencyHistogram()
            histogram.observe(seconds)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self, counters: Optional[Dict[str, float]] = None,
               gauges: Optional[Dict[str, float]] = None,
               infos: Optional[Dict[str, object]] = None
               ) -> str:
        """The full scrape body.

        ``counters``/``gauges`` carry component-owned numbers (cache
        stats, admission stats, session stats, queue depths) already
        flattened to ``{metric_name: value}``; names ending in
        ``_total`` render as counters, everything else in ``counters``
        still renders as a counter type but keeps its given name.
        ``infos`` are identity gauges (``{name: labels}`` or
        ``{name: [labels, ...]}`` for several rows of one metric),
        rendered as a constant ``1`` with the labels attached — the
        Prometheus idiom for non-numeric facts such as the active
        snapshot id or the per-worker snapshot ids.
        """
        with self._lock:
            lines: List[str] = []
            self._render_stage_seconds(lines)
            self._render_query_events(lines)
            self._render_kv(lines, counters or {}, "counter")
            self._render_kv(lines, gauges or {}, "gauge")
            self._render_infos(lines, infos or {})
            self._render_responses(lines)
            self._render_latency(lines)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def _render_stage_seconds(self, lines: List[str]) -> None:
        lines.append("# HELP repro_stage_seconds_total Wall-clock "
                     "spent per engine stage.")
        lines.append("# TYPE repro_stage_seconds_total counter")
        for name in sorted(self._stage_seconds):
            lines.append(
                f'repro_stage_seconds_total{{stage="'
                f'{escape_label(name)}"}} '
                f"{_fmt(self._stage_seconds[name])}")

    def _render_query_events(self, lines: List[str]) -> None:
        lines.append("# HELP repro_query_events_total QueryContext "
                     "counter totals across all served queries.")
        lines.append("# TYPE repro_query_events_total counter")
        for name in sorted(self._query_events):
            lines.append(
                f'repro_query_events_total{{event="'
                f'{escape_label(name)}"}} '
                f"{_fmt(float(self._query_events[name]))}")

    @staticmethod
    def _render_kv(lines: List[str], values: Dict[str, float],
                   kind: str) -> None:
        for name in sorted(values):
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {_fmt(values[name])}")

    @staticmethod
    def _render_infos(lines: List[str],
                      infos: Dict[str, object]) -> None:
        """Identity gauges; a metric may carry one label set (a dict)
        or several (a list of dicts — e.g. one row per pool worker)."""
        for name in sorted(infos):
            label_sets = infos[name]
            if isinstance(label_sets, dict):
                label_sets = [label_sets]
            lines.append(f"# TYPE {name} gauge")
            for labels in label_sets:
                rendered = ",".join(
                    f'{key}="{escape_label(str(value))}"'
                    for key, value in sorted(labels.items()))
                lines.append(f"{name}{{{rendered}}} 1")

    def _render_responses(self, lines: List[str]) -> None:
        lines.append("# HELP repro_requests_total HTTP responses by "
                     "path and status.")
        lines.append("# TYPE repro_requests_total counter")
        for path, status in sorted(self._responses):
            lines.append(
                f'repro_requests_total{{path="{escape_label(path)}",'
                f'status="{status}"}} '
                f"{_fmt(float(self._responses[(path, status)]))}")

    def _render_latency(self, lines: List[str]) -> None:
        lines.append("# HELP repro_request_seconds HTTP request "
                     "latency.")
        lines.append("# TYPE repro_request_seconds histogram")
        for path in sorted(self._latency):
            histogram = self._latency[path]
            label = escape_label(path)
            for bound, count in histogram.cumulative():
                le = "+Inf" if bound == float("inf") else _fmt(bound)
                lines.append(
                    f'repro_request_seconds_bucket{{path="{label}",'
                    f'le="{le}"}} {count}')
            lines.append(f'repro_request_seconds_sum{{path="{label}"}}'
                         f" {_fmt(histogram.sum)}")
            lines.append(
                f'repro_request_seconds_count{{path="{label}"}} '
                f"{histogram.count}")


def prefixed(values: Dict[str, float], prefix: str = "repro_",
             suffix: str = "") -> Dict[str, float]:
    """Re-key a flat stats dict into metric names.

    ``prefixed(cache.stats.as_dict(), suffix="_total")`` turns
    ``cache_hits`` into ``repro_cache_hits_total`` — the glue between
    the components' ``as_dict`` views and the exposition names.
    """
    return {f"{prefix}{name}{suffix}": value
            for name, value in values.items()}


def split_rates(values: Dict[str, float],
                rate_keys: Iterable[str]
                ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Split a flat stats dict into (counters, gauges).

    Ratio-style entries (hit rates) are gauges — they go up *and*
    down — while everything else is a monotonic counter.
    """
    rates = set(rate_keys)
    counters = {k: v for k, v in values.items() if k not in rates}
    gauges = {k: v for k, v in values.items() if k in rates}
    return counters, gauges
