"""Admission control: a bounded worker pool that sheds, not queues.

A community query is CPU-bound (Dijkstra + Lawler enumeration), so
letting ``ThreadingHTTPServer`` run one query per connection thread
would melt under load — every request admitted, none finishing. The
:class:`AdmissionController` bounds both dimensions:

* **workers** — at most this many queries execute concurrently;
* **queue_depth** — at most this many admitted-but-waiting jobs; a
  ``submit`` past that is *shed immediately* with
  :class:`~repro.service.errors.Overloaded` (HTTP 429), which is the
  whole point — under saturation the client learns in microseconds,
  not after a timeout.

Every job also carries a **deadline** (monotonic-clock instant). A job
whose deadline passed while it sat in the queue is dropped by the
worker without running
(:class:`~repro.service.errors.DeadlineExceeded`, HTTP 503), and
:meth:`AdmissionController.run` stops waiting at the deadline even if
the job is still executing. The remaining budget at execution time is
handed to the job callable, which the server maps onto
``QuerySpec.budget_seconds`` — the same deadline machinery the BU/TD
baselines already honour.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import QueryError
from repro.service.errors import (
    DeadlineExceeded,
    Overloaded,
    ShuttingDown,
)

#: Workers per controller unless the caller says otherwise.
DEFAULT_WORKERS = 4

#: Waiting jobs per controller unless the caller says otherwise.
DEFAULT_QUEUE_DEPTH = 16


@dataclass
class AdmissionStats:
    """Lifetime traffic counters for one controller."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat metric view (service ``/metrics`` consumes this)."""
        return {
            "admission_submitted": float(self.submitted),
            "admission_completed": float(self.completed),
            "admission_failed": float(self.failed),
            "admission_shed_queue_full": float(self.shed_queue_full),
            "admission_shed_deadline": float(self.shed_deadline),
        }


class _Job:
    """One admitted unit of work: callable + future + deadline."""

    __slots__ = ("fn", "future", "deadline_at")

    def __init__(self, fn: Callable[[Optional[float]], Any],
                 future: "Future[Any]",
                 deadline_at: Optional[float]) -> None:
        self.fn = fn
        self.future = future
        self.deadline_at = deadline_at


class AdmissionController:
    """Bounded concurrency + bounded queue + per-job deadlines.

    Job callables receive one positional argument: the **remaining
    budget in seconds** at the moment execution starts (``None`` for
    no deadline). Construction starts the worker threads (daemonic, so
    an un-shutdown controller never blocks interpreter exit);
    :meth:`shutdown` drains them deterministically.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 default_deadline: Optional[float] = None) -> None:
        if workers <= 0:
            raise QueryError(
                f"workers must be positive, got {workers}")
        if queue_depth <= 0:
            raise QueryError(
                f"queue_depth must be positive, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.default_deadline = default_deadline
        self.stats = AdmissionStats()
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(
            maxsize=queue_depth)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._closed = False
        self._draining = False
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-admission-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[Optional[float]], Any],
               deadline_seconds: Optional[float] = None
               ) -> "Future[Any]":
        """Admit a job, or shed it right now.

        Raises :class:`Overloaded` when the queue is full and
        :class:`DeadlineExceeded` when the deadline is already
        non-positive — both *before* consuming a queue slot.
        """
        if self._draining:
            raise ShuttingDown(
                "service is draining for shutdown; retry elsewhere")
        if self._closed:
            raise Overloaded("service is shutting down")
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline
        deadline_at: Optional[float] = None
        if deadline_seconds is not None:
            if deadline_seconds <= 0:
                with self._lock:
                    self.stats.shed_deadline += 1
                raise DeadlineExceeded(
                    f"deadline of {deadline_seconds:g}s already spent")
            deadline_at = time.monotonic() + deadline_seconds
        future: "Future[Any]" = Future()
        try:
            self._queue.put_nowait(_Job(fn, future, deadline_at))
        except queue.Full:
            with self._lock:
                self.stats.shed_queue_full += 1
            raise Overloaded(
                f"work queue full ({self.queue_depth} waiting, "
                f"{self.workers} running)") from None
        with self._lock:
            self.stats.submitted += 1
        return future

    def run(self, fn: Callable[[Optional[float]], Any],
            deadline_seconds: Optional[float] = None) -> Any:
        """Admit, wait, and return the job's result.

        Blocks at most until the deadline; a job still queued at that
        point is cancelled, a job still *running* is abandoned (its
        worker finishes into a dropped future) and
        :class:`DeadlineExceeded` is raised either way.
        """
        future = self.submit(fn, deadline_seconds)
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline
        try:
            if deadline_seconds is None:
                return future.result()
            return future.result(timeout=deadline_seconds)
        except FutureTimeout:
            future.cancel()
            with self._lock:
                self.stats.shed_deadline += 1
            raise DeadlineExceeded(
                f"no answer within {deadline_seconds:g}s") from None

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Jobs admitted but not yet started (approximate, racy)."""
        return self._queue.qsize()

    @property
    def in_flight(self) -> int:
        """Jobs currently executing on a worker."""
        with self._lock:
            return self._in_flight

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float) -> bool:
        """Stop admitting, then wait for queued + running jobs.

        New submissions shed immediately with :class:`ShuttingDown`
        (503 + ``Retry-After``); work already admitted keeps running.
        Returns ``True`` when everything finished inside ``timeout``
        seconds, ``False`` when the drain deadline passed with work
        still in flight — the caller then tears down hard
        (:meth:`shutdown`), which fails the leftovers.
        """
        self._draining = True
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            if self._queue.qsize() == 0 and self.in_flight == 0:
                return True
            time.sleep(0.02)
        return self._queue.qsize() == 0 and self.in_flight == 0

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work and join the workers.

        Queued-but-unstarted jobs are dropped (their futures get
        :class:`Overloaded`), mirroring what a restart would do.
        """
        if self._closed:
            return
        self._closed = True
        # Drain whatever is still waiting, then post one sentinel per
        # worker so each exits its loop.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                job.future.set_exception(
                    Overloaded("service shut down before execution"))
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            now = time.monotonic()
            if job.deadline_at is not None and now >= job.deadline_at:
                with self._lock:
                    self.stats.shed_deadline += 1
                job.future.set_exception(DeadlineExceeded(
                    "deadline expired while queued"))
                continue
            if not job.future.set_running_or_notify_cancel():
                continue          # run() already gave up on this job
            remaining = (None if job.deadline_at is None
                         else job.deadline_at - now)
            with self._lock:
                self._in_flight += 1
            try:
                result = job.fn(remaining)
            except BaseException as error:  # noqa: BLE001 — relayed
                with self._lock:
                    self._in_flight -= 1
                    self.stats.failed += 1
                job.future.set_exception(error)
            else:
                with self._lock:
                    self._in_flight -= 1
                    self.stats.completed += 1
                job.future.set_result(result)
