"""The serving layer: the engine behind a concurrent HTTP/JSON API.

Everything here is standard library only — ``http.server``,
``urllib``, ``queue``, ``threading`` — so serving costs no new
dependencies:

* :mod:`repro.service.server` — :class:`CommunityService`, the
  threaded HTTP server (``/query``, ``/sessions``,
  ``/sessions/{id}/next``, ``/metrics``, ``/healthz``);
* :mod:`repro.service.sessions` — :class:`SessionManager`, TTL- and
  generation-checked leases over interactive PDk streams;
* :mod:`repro.service.admission` — :class:`AdmissionController`,
  the bounded worker pool that sheds (429/503) instead of queueing
  unboundedly;
* :mod:`repro.service.querylog` — :class:`QueryLog`, the ring-buffer
  ledger of admitted specs that feeds post-reload cache warming and
  the offline hot-key miner;
* :mod:`repro.service.metrics` — Prometheus text exposition;
* :mod:`repro.service.serialize` — the one JSON vocabulary shared by
  the HTTP API and ``python -m repro query --json``;
* :mod:`repro.service.client` — :class:`ServiceClient` /
  :class:`ServiceSession`, the matching dependency-free client;
* :mod:`repro.service.errors` — the HTTP-mapped error taxonomy.

Start one from the shell with ``python -m repro serve ...``.
"""

from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.client import ServiceClient, ServiceSession
from repro.service.errors import (
    BadRequest,
    DeadlineExceeded,
    NotFound,
    Overloaded,
    ServiceError,
    ServiceUnreachable,
    SessionGone,
    ShuttingDown,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.querylog import QueryLog
from repro.service.server import CommunityService
from repro.service.sessions import (
    SessionLease,
    SessionManager,
    SessionStats,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BadRequest",
    "CommunityService",
    "DeadlineExceeded",
    "LatencyHistogram",
    "NotFound",
    "Overloaded",
    "QueryLog",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceSession",
    "ServiceUnreachable",
    "SessionGone",
    "SessionLease",
    "SessionManager",
    "SessionStats",
    "ShuttingDown",
]
