"""Service-level errors and their HTTP status mapping.

Every failure the service can signal to a client is a
:class:`~repro.exceptions.ServiceError` subclass carrying the HTTP
status it renders as. The server turns any escaping ``ServiceError``
into a JSON error body with that status; the client does the inverse,
re-raising the matching subclass from a non-2xx response via
:func:`for_status` — so ``except SessionGone:`` works identically on
both sides of the socket.

The admission controller's two shedding outcomes map to the two codes
the load-shedding literature distinguishes: a request rejected *at
admission* (queue full) is :class:`Overloaded` / ``429`` — the client
should back off and retry — while a request that was admitted but
whose deadline expired before or during execution is
:class:`DeadlineExceeded` / ``503``.
"""

from __future__ import annotations

from repro.exceptions import ServiceError

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "NotFound",
    "Overloaded",
    "RETRYABLE_STATUSES",
    "ServiceError",
    "ServiceUnreachable",
    "SessionGone",
    "ShuttingDown",
    "for_status",
]


class BadRequest(ServiceError):
    """The request body is malformed or fails query validation."""

    status = 400


class NotFound(ServiceError):
    """No such route or session id."""

    status = 404


class SessionGone(ServiceError):
    """A session lease exists no more (TTL expiry or generation bump).

    ``410 Gone`` rather than ``404``: the id *was* valid, but the
    stream behind it can no longer produce correct answers — after
    ``apply_delta`` the projection it enumerates may miss new nodes
    entirely. Clients must open a fresh session.
    """

    status = 410


class Overloaded(ServiceError):
    """Shed at admission: the bounded work queue is full (HTTP 429)."""

    status = 429


class DeadlineExceeded(ServiceError):
    """The per-request deadline expired before an answer (HTTP 503)."""

    status = 503


class ShuttingDown(ServiceError):
    """The service is draining for shutdown; retry another replica.

    Raised for requests arriving *after* SIGTERM started the drain,
    and for admitted jobs still unfinished when the drain deadline
    passes. ``503`` with ``Retry-After``, like the other transient
    rejections, so standard client retry policies do the right
    thing."""

    status = 503


class ServiceUnreachable(ServiceError):
    """The client could not reach the server at all (client-side).

    Connection refused, DNS failure, socket timeout — no HTTP
    exchange happened, so there is no server status; ``503`` is the
    closest honest rendering and marks it retryable for
    :class:`~repro.service.client.ServiceClient`'s backoff loop."""

    status = 503


#: HTTP statuses a client may safely retry with backoff: shed at
#: admission (429) and transient unavailability (503 — deadline,
#: drain, hung-worker kill). Everything else is not retryable.
RETRYABLE_STATUSES = frozenset({429, 503})


#: Status-code -> error class, for client-side re-raising.
_BY_STATUS = {
    cls.status: cls
    for cls in (BadRequest, NotFound, SessionGone, Overloaded,
                DeadlineExceeded)
}


def for_status(status: int, message: str) -> ServiceError:
    """The matching error for an HTTP status (generic 500 otherwise)."""
    cls = _BY_STATUS.get(status, ServiceError)
    error = cls(message)
    if cls is ServiceError:
        error.status = status
    return error
