"""Cross-box snapshot transfer over the service's HTTP surface.

Shard backends (and any :class:`~repro.service.server.CommunityService`
configured with a snapshot store) speak four admin routes that move a
snapshot between boxes with **no shared filesystem**:

* ``POST /admin/snapshot`` — begin a transfer; body carries the
  snapshot's ``manifest.json`` as ``{"manifest": {...}}``. Returns
  ``{"snapshot", "complete", "sections_needed"}`` — a snapshot the
  store already holds comes back ``complete`` with nothing needed, so
  re-pushing is idempotent and free.
* ``PUT /admin/snapshot/{id}/{section}`` — one section's stored (wire)
  bytes, verified against the manifest's length and SHA-256 by
  :class:`~repro.snapshot.store.SnapshotIngest` before staging. A
  checksum mismatch answers ``400`` and discards the transfer.
* ``POST /admin/snapshot/{id}/commit`` — atomically publish the fully
  received snapshot into the store and repoint ``LATEST``.
* ``DELETE /admin/snapshot/{id}`` — abort and discard the staging.

And two read routes for the pull direction:

* ``GET /admin/snapshot/{id}/manifest`` — the manifest JSON;
* ``GET /admin/snapshot/{id}/{section}`` — the section's stored bytes
  (``application/octet-stream``); integrity metadata travels in the
  manifest, so a sibling box can mirror a snapshot straight out of a
  live store and verify every byte locally.

The client-side helpers drive whole transfers:
:func:`push_snapshot` ships a local snapshot directory to a remote
store (begin → PUT sections → commit, aborting on failure), and
:func:`fetch_snapshot` mirrors a remote snapshot into a local store.
The router's cross-box reload is ``push_snapshot`` per shard followed
by ``POST /admin/reload {"snapshot": id}`` — the backend resolves the
id against its own store, so no filesystem path ever crosses a box
boundary.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import (
    SnapshotError,
    SnapshotNotFoundError,
)
from repro.service.errors import BadRequest, NotFound
from repro.snapshot.snapshot import MANIFEST_NAME, read_manifest
from repro.snapshot.store import SnapshotIngest, SnapshotStore

#: Content type for raw snapshot section payloads.
OCTET_CONTENT_TYPE = "application/octet-stream"


class SnapshotTransfer:
    """Server-side state for in-flight cross-box snapshot transfers.

    One per service; holds at most a handful of pending
    :class:`~repro.snapshot.store.SnapshotIngest` stagings keyed by
    snapshot id. All methods raise the service error taxonomy
    (``400``/``404``) so the HTTP layer maps them without special
    cases.
    """

    def __init__(self, store_root: Union[str, Path]) -> None:
        self.store = SnapshotStore(store_root)
        self._ingests: Dict[str, SnapshotIngest] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # receive (push target)
    # ------------------------------------------------------------------
    def begin(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Open a transfer for the manifest in ``payload``."""
        manifest = payload.get("manifest")
        if not isinstance(manifest, dict):
            raise BadRequest(
                "'manifest' must be the snapshot manifest object")
        try:
            ingest = self.store.ingest(manifest)
        except SnapshotError as error:
            raise BadRequest(str(error))
        snapshot_id = ingest.snapshot_id
        try:
            self.store.resolve(snapshot_id)
        except SnapshotNotFoundError:
            pass
        else:
            # Content-addressed ids make re-pushes free: the bytes
            # are already here, just repoint latest.
            ingest.abort()
            self.store._point_latest(snapshot_id)
            return {"snapshot": snapshot_id, "complete": True,
                    "sections_needed": []}
        with self._lock:
            stale = self._ingests.pop(snapshot_id, None)
            self._ingests[snapshot_id] = ingest
        if stale is not None:
            stale.abort()
        return {"snapshot": snapshot_id, "complete": False,
                "sections_needed": ingest.sections_needed}

    def receive(self, snapshot_id: str, section: str,
                body: bytes) -> Dict[str, Any]:
        """Verify and stage one pushed section."""
        ingest = self._pending(snapshot_id)
        try:
            ingest.write_section(section, body)
        except SnapshotError as error:
            # The payload failed verification; the transfer is dead
            # weight — discard it so a crashed push leaves nothing.
            with self._lock:
                self._ingests.pop(snapshot_id, None)
            ingest.abort()
            raise BadRequest(str(error))
        return {"snapshot": snapshot_id, "section": section,
                "sections_needed": ingest.sections_needed}

    def commit(self, snapshot_id: str) -> Dict[str, Any]:
        """Publish a fully received transfer atomically."""
        ingest = self._pending(snapshot_id)
        try:
            path = ingest.commit()
        except SnapshotError as error:
            raise BadRequest(str(error))
        finally:
            with self._lock:
                self._ingests.pop(snapshot_id, None)
        return {"snapshot": snapshot_id, "committed": True,
                "path": str(path)}

    def abort(self, snapshot_id: str) -> Dict[str, Any]:
        """Discard a pending transfer (idempotent)."""
        with self._lock:
            ingest = self._ingests.pop(snapshot_id, None)
        if ingest is not None:
            ingest.abort()
        return {"snapshot": snapshot_id, "aborted": ingest is not None}

    def _pending(self, snapshot_id: str) -> SnapshotIngest:
        """The open ingest for ``snapshot_id`` (404 when none)."""
        with self._lock:
            ingest = self._ingests.get(snapshot_id)
        if ingest is None:
            raise NotFound(
                f"no open snapshot transfer for {snapshot_id!r} "
                f"(begin with POST /admin/snapshot)")
        return ingest

    # ------------------------------------------------------------------
    # serve (pull source)
    # ------------------------------------------------------------------
    def manifest_of(self, snapshot_id: str) -> Dict[str, Any]:
        """The manifest of a published snapshot."""
        try:
            return read_manifest(self.store.resolve(snapshot_id))
        except SnapshotNotFoundError as error:
            raise NotFound(str(error))
        except SnapshotError as error:
            raise BadRequest(str(error))

    def section_of(self, snapshot_id: str, section: str) -> bytes:
        """One section's stored (wire) bytes."""
        manifest = self.manifest_of(snapshot_id)
        entry = manifest.get("sections", {}).get(section)
        if entry is None:
            raise NotFound(
                f"snapshot {snapshot_id} has no section "
                f"{section!r}")
        path = self.store.resolve(snapshot_id) / entry["file"]
        if not path.is_file():
            raise NotFound(f"snapshot section {path} is missing")
        return path.read_bytes()


# ----------------------------------------------------------------------
# client-side drivers
# ----------------------------------------------------------------------
def push_snapshot(client: Any, snapshot_dir: Union[str, Path]
                  ) -> Dict[str, Any]:
    """Ship a local snapshot directory into a remote service's store.

    ``client`` is a :class:`~repro.service.client.ServiceClient` (or
    anything with its ``request``/``request_raw`` shape) pointed at
    the receiving service. Drives begin → section PUTs → commit; any
    failure aborts the remote staging before re-raising, so a torn
    push leaves the remote store untouched. Returns the final
    ``{"snapshot", ...}`` payload (``complete: True`` short-circuits
    when the remote store already held the content).
    """
    snapshot_dir = Path(snapshot_dir)
    manifest = json.loads(
        (snapshot_dir / MANIFEST_NAME).read_text(encoding="utf-8"))
    begin = client.request("POST", "/admin/snapshot",
                           {"manifest": manifest}, idempotent=True)
    if begin.get("complete"):
        return begin
    snapshot_id = begin["snapshot"]
    try:
        for name in begin.get("sections_needed", []):
            entry = manifest["sections"][name]
            stored = (snapshot_dir / entry["file"]).read_bytes()
            client.request_raw(
                "PUT", f"/admin/snapshot/{snapshot_id}/{name}",
                stored, idempotent=True)
        return client.request(
            "POST", f"/admin/snapshot/{snapshot_id}/commit", {},
            idempotent=True)
    except BaseException:
        try:
            client.request("DELETE",
                           f"/admin/snapshot/{snapshot_id}")
        except Exception:
            pass             # best effort; staging dies with the box
        raise


def fetch_snapshot(client: Any, snapshot_id: str,
                   store: SnapshotStore) -> Path:
    """Mirror a remote snapshot into a local store over GETs.

    The pull direction of :func:`push_snapshot`: fetch the manifest,
    ingest each section's stored bytes (checksum-verified locally),
    and publish atomically. Returns the local snapshot directory.
    """
    manifest = client.request(
        "GET", f"/admin/snapshot/{snapshot_id}/manifest")
    ingest = store.ingest(manifest)
    try:
        for name in ingest.sections_needed:
            body, _ = client.request_raw(
                "GET", f"/admin/snapshot/{snapshot_id}/{name}")
            ingest.write_section(name, body)
        return ingest.commit()
    except BaseException:
        ingest.abort()
        raise


def route_snapshot_transfer(transfer: Optional[SnapshotTransfer],
                            method: str, parts: Tuple[str, ...],
                            body: bytes
                            ) -> Tuple[str, Union[str, bytes], str]:
    """Dispatch one ``/admin/snapshot...`` request.

    Returns ``(template, payload, content_type)`` for the service's
    ``handle`` plumbing; raises the service error taxonomy otherwise.
    ``transfer`` may be ``None`` — services without a configured
    snapshot store answer 400 rather than 404, so a misconfigured
    fleet is distinguishable from a bad URL.
    """
    if transfer is None:
        raise BadRequest(
            "snapshot transfer is not available: the service has no "
            "snapshot store (serve with --snapshot <store>)")
    json_type = "application/json; charset=utf-8"
    if method == "POST" and len(parts) == 2:
        payload = _transfer_body(body)
        return ("/admin/snapshot",
                json.dumps(transfer.begin(payload)), json_type)
    if method == "POST" and len(parts) == 4 and parts[3] == "commit":
        return ("/admin/snapshot/{id}/commit",
                json.dumps(transfer.commit(parts[2])), json_type)
    if method == "PUT" and len(parts) == 4:
        return ("/admin/snapshot/{id}/{section}",
                json.dumps(transfer.receive(parts[2], parts[3],
                                            body)), json_type)
    if method == "DELETE" and len(parts) == 3:
        return ("/admin/snapshot/{id}",
                json.dumps(transfer.abort(parts[2])), json_type)
    if method == "GET" and len(parts) == 4 \
            and parts[3] == "manifest":
        return ("/admin/snapshot/{id}/manifest",
                json.dumps(transfer.manifest_of(parts[2])),
                json_type)
    if method == "GET" and len(parts) == 4:
        return ("/admin/snapshot/{id}/{section}",
                transfer.section_of(parts[2], parts[3]),
                OCTET_CONTENT_TYPE)
    raise NotFound(f"no route {method} /{'/'.join(parts)}")


def _transfer_body(body: bytes) -> Dict[str, Any]:
    """The begin-transfer body as a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise BadRequest(
            f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


def snapshot_store_of(source: Optional[Union[str, Path]]
                      ) -> Optional[Path]:
    """The snapshot-store root implied by a serve-time source.

    A store root (has a ``LATEST`` pointer, or is a bare/empty
    directory) is itself; a snapshot directory implies its parent
    (the conventional ``store/<id>`` layout). ``None`` stays
    ``None`` — the service then refuses transfer requests.
    """
    if source is None:
        return None
    source = Path(source)
    if (source / MANIFEST_NAME).is_file():
        return source.parent
    return source
