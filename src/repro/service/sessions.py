"""Interactive PDk sessions: leased streams with TTL and generation
checks.

The paper's Exp-3 headline is that PDk enlarges ``k`` at run time for
free — 50 more answers after the first 200 cost exactly 50 more
``Next()`` calls. Serving that over HTTP needs server-side state: a
:class:`SessionManager` leases one
:class:`~repro.engine.stream.ProjectedTopKStream` (heap + can-list
intact) per session id, so ``POST /sessions/{id}/next`` resumes where
the previous call stopped instead of re-running Algorithm 6 and
re-seeding the heap.

Two things can make a retained stream *wrong* rather than merely old,
and both invalidate the lease:

* **TTL expiry** — leases are dropped ``ttl_seconds`` after last use,
  bounding the memory held for clients that walked away;
* **generation bump** — a stream enumerates the graph as it was at
  creation. After :meth:`QueryEngine.apply_delta` (or any index swap)
  its answers may miss new nodes entirely, so every ``next`` compares
  the lease's recorded engine generation against the current one and
  a mismatch kills the lease. Clients see
  :class:`~repro.service.errors.SessionGone` (HTTP 410) and reopen —
  the fresh session re-projects once and re-warms the cache.

All methods are thread-safe: the manager locks its table, each lease
locks its stream (two ``next`` calls on one session serialize rather
than corrupt the heap).
"""

from __future__ import annotations

import secrets
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.community import Community
from repro.core.cost import AggregateSpec
from repro.engine.context import QueryContext
from repro.engine.engine import QueryEngine
from repro.exceptions import QueryError
from repro.service.errors import NotFound, Overloaded, SessionGone

#: Seconds of idleness after which a lease expires, by default.
DEFAULT_TTL_SECONDS = 300.0

#: Concurrent leases per manager, by default.
DEFAULT_MAX_SESSIONS = 64


@dataclass
class SessionStats:
    """Lifetime counters for one session manager."""

    created: int = 0
    closed: int = 0
    expired: int = 0
    stale_dropped: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat metric view (service ``/metrics`` consumes this)."""
        return {
            "sessions_created": float(self.created),
            "sessions_closed": float(self.closed),
            "sessions_expired": float(self.expired),
            "sessions_stale_dropped": float(self.stale_dropped),
        }


class SessionLease:
    """One leased stream plus the bookkeeping to police it."""

    def __init__(self, session_id: str, stream: Any,
                 context: QueryContext, generation: str,
                 keywords: Tuple[str, ...], rmax: float,
                 ttl_seconds: float, now: float) -> None:
        self.id = session_id
        self.stream = stream
        #: Cumulative instrumentation for the whole session — the
        #: ``project`` stage is charged at creation only, which is how
        #: clients observe that enlargement was free.
        self.context = context
        self.generation = generation
        self.keywords = keywords
        self.rmax = rmax
        self.ttl_seconds = ttl_seconds
        self.expires_at = now + ttl_seconds
        self.lock = threading.Lock()

    def touch(self, now: float) -> None:
        """Push expiry out by one TTL from ``now`` (sliding lease)."""
        self.expires_at = now + self.ttl_seconds

    def expired(self, now: float) -> bool:
        """True once the lease has sat unused past its TTL."""
        return now >= self.expires_at


class SessionManager:
    """Leases PDk streams from one engine and polices their validity.

    ``clock`` is injectable (monotonic seconds) so expiry is testable
    without sleeping.
    """

    def __init__(self, engine: QueryEngine,
                 ttl_seconds: float = DEFAULT_TTL_SECONDS,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if ttl_seconds <= 0:
            raise QueryError(
                f"ttl_seconds must be positive, got {ttl_seconds}")
        if max_sessions <= 0:
            raise QueryError(
                f"max_sessions must be positive, got {max_sessions}")
        self.engine = engine
        self.ttl_seconds = ttl_seconds
        self.max_sessions = max_sessions
        self.stats = SessionStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: Dict[str, SessionLease] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(self, keywords: Sequence[str], rmax: float,
               aggregate: AggregateSpec = "sum",
               ttl_seconds: Optional[float] = None) -> SessionLease:
        """Open a session: project (or hit the cache), seed the heap.

        The expensive work — Algorithm 6 plus the first ``BestCore``
        seeding — happens here, once; every later ``next`` only pops
        the heap. Raises :class:`Overloaded` at the lease cap.
        """
        self.sweep()
        with self._lock:
            if len(self._leases) >= self.max_sessions:
                raise Overloaded(
                    f"session table full ({self.max_sessions} leases)")
        context = QueryContext()
        generation = self.engine.generation
        stream = self.engine.top_k_stream(
            list(keywords), rmax, aggregate=aggregate, context=context)
        lease = SessionLease(
            session_id=secrets.token_hex(8), stream=stream,
            context=context, generation=generation,
            keywords=tuple(keywords), rmax=float(rmax),
            ttl_seconds=(self.ttl_seconds if ttl_seconds is None
                         else float(ttl_seconds)),
            now=self._clock())
        with self._lock:
            self._leases[lease.id] = lease
            self.stats.created += 1
        return lease

    def next(self, session_id: str, k: int
             ) -> Tuple[List[Community], SessionLease]:
        """Up to ``k`` further answers from a live, current lease.

        Raises :class:`NotFound` for an unknown id and
        :class:`SessionGone` for an expired or generation-stale lease
        (the lease is dropped on the spot in both Gone cases).
        """
        if k < 0:
            raise QueryError(f"k must be >= 0, got {k}")
        lease = self._checked_out(session_id)
        with lease.lock:
            # Re-check staleness under the lease lock: a delta applied
            # while we waited must not slip a stale batch through.
            if self.engine.generation != lease.generation:
                self._drop(lease.id)
                self.stats.stale_dropped += 1
                raise SessionGone(
                    f"session {session_id} is stale: the graph/index "
                    f"changed (generation {lease.generation} -> "
                    f"{self.engine.generation}); open a new session")
            communities = lease.stream.take(k)
            lease.touch(self._clock())
        return communities, lease

    def close(self, session_id: str) -> None:
        """Release a lease explicitly (idempotent for unknown ids)."""
        with self._lock:
            if self._leases.pop(session_id, None) is not None:
                self.stats.closed += 1

    def sweep(self) -> int:
        """Drop every expired lease; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            dead = [sid for sid, lease in self._leases.items()
                    if lease.expired(now)]
            for sid in dead:
                del self._leases[sid]
            self.stats.expired += len(dead)
        return len(dead)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Live leases right now (expired-but-unswept ones included)."""
        with self._lock:
            return len(self._leases)

    def get(self, session_id: str) -> SessionLease:
        """The live lease for an id (validity-checked, not touched)."""
        return self._checked_out(session_id)

    # ------------------------------------------------------------------
    def _checked_out(self, session_id: str) -> SessionLease:
        now = self._clock()
        with self._lock:
            lease = self._leases.get(session_id)
        if lease is None:
            raise NotFound(f"no session {session_id!r}")
        if lease.expired(now):
            self._drop(session_id)
            self.stats.expired += 1
            raise SessionGone(
                f"session {session_id} expired after "
                f"{lease.ttl_seconds:g}s idle; open a new session")
        if self.engine.generation != lease.generation:
            self._drop(session_id)
            self.stats.stale_dropped += 1
            raise SessionGone(
                f"session {session_id} is stale: the graph/index "
                f"changed (generation {lease.generation} -> "
                f"{self.engine.generation}); open a new session")
        return lease

    def _drop(self, session_id: str) -> None:
        with self._lock:
            self._leases.pop(session_id, None)
