"""One JSON vocabulary for community answers and instrumentation.

The CLI's ``--json`` flag and every HTTP endpoint emit the same
shapes, produced here and nowhere else, so a client parsing
``python -m repro query --json`` output can parse a ``POST /query``
response with the same code:

* :func:`community_to_dict` — one answer: ``core``, ``cost``,
  ``centers``, ``pnodes``, ``nodes``, ``edges`` (and ``labels`` when a
  graph is supplied to resolve them);
* :func:`context_to_dict` — a :class:`~repro.engine.QueryContext`:
  per-stage ``timings`` (seconds), ``counters``, ``total_seconds``;
* :func:`spec_to_dict` — the query as executed;
* :func:`results_to_dict` — the full response envelope tying the
  three together.

Everything returned is plain lists/dicts/scalars, safe for
``json.dumps`` with no custom encoder.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.core.community import Community
from repro.engine.context import QueryContext
from repro.engine.spec import QuerySpec
from repro.graph.database_graph import DatabaseGraph


def community_to_dict(community: Community,
                      dbg: Optional[DatabaseGraph] = None
                      ) -> Dict[str, Any]:
    """One community as JSON-safe primitives.

    With ``dbg``, a ``labels`` map (node id, as a string key, to the
    node's label) is included so clients can render answers the way
    :meth:`Community.describe` does.
    """
    payload: Dict[str, Any] = {
        "core": list(community.core),
        "cost": community.cost,
        "centers": list(community.centers),
        "pnodes": list(community.pnodes),
        "nodes": list(community.nodes),
        "edges": [[u, v, w] for u, v, w in community.edges],
    }
    if dbg is not None:
        payload["labels"] = {
            str(u): dbg.label_of(u) for u in community.nodes}
    return payload


def context_to_dict(context: QueryContext) -> Dict[str, Any]:
    """A query context's timings and counters, JSON-safe."""
    return {
        "timings": {name: float(seconds)
                    for name, seconds in context.timings.items()},
        "counters": {name: int(value)
                     for name, value in context.counters.items()},
        "total_seconds": context.total_seconds,
    }


def spec_to_dict(spec: QuerySpec) -> Dict[str, Any]:
    """The executed query, echoed back for client-side bookkeeping."""
    return {
        "keywords": list(spec.keywords),
        "rmax": spec.rmax,
        "mode": spec.mode,
        "k": spec.k,
        "algorithm": spec.algorithm,
        "aggregate": spec.aggregate,
    }


def results_to_dict(results: Sequence[Community],
                    dbg: Optional[DatabaseGraph] = None,
                    context: Optional[QueryContext] = None,
                    spec: Optional[QuerySpec] = None,
                    elapsed_seconds: Optional[float] = None,
                    cached: Optional[bool] = None,
                    ) -> Dict[str, Any]:
    """The response envelope: answers plus optional query/stats echo.

    ``cached`` (when supplied) reports whether the answer was served
    entirely from the engine's generation-keyed result cache — a pure
    prefix lookup with no enumeration work.
    """
    payload: Dict[str, Any] = {
        "count": len(results),
        "communities": [community_to_dict(c, dbg) for c in results],
    }
    if cached is not None:
        payload["cached"] = bool(cached)
    if spec is not None:
        payload["query"] = spec_to_dict(spec)
    if context is not None:
        payload["stats"] = context_to_dict(context)
    if elapsed_seconds is not None:
        payload["elapsed_seconds"] = float(elapsed_seconds)
    return payload


def dumps(payload: Dict[str, Any], indent: Optional[int] = None) -> str:
    """Canonical JSON rendering (sorted keys, stable across runs)."""
    return json.dumps(payload, indent=indent, sort_keys=True)


def communities_from_dicts(payload: Sequence[Dict[str, Any]]
                           ) -> List[Community]:
    """Rebuild :class:`Community` objects from their JSON form.

    The client uses this so service answers expose the same dataclass
    API as in-process answers (``labels`` is presentation-only and is
    dropped).
    """
    return [
        Community(
            core=tuple(entry["core"]),
            cost=float(entry["cost"]),
            centers=tuple(entry["centers"]),
            pnodes=tuple(entry["pnodes"]),
            nodes=tuple(entry["nodes"]),
            edges=tuple((u, v, float(w))
                        for u, v, w in entry.get("edges", [])),
        )
        for entry in payload
    ]
