"""Ring-buffer query log: the service's record of what is hot.

Every ``/query`` and ``/batch`` spec the service admits is recorded
here under its canonical :meth:`~repro.engine.spec.QuerySpec.
cache_key` — the same normalization the result cache uses, so two
requests that collide in the cache collide in the log too (keyword
order and case, ``0.5`` vs ``0.50`` rmax spellings). The log answers
one question: *which specs should a fresh generation's result cache
be warmed with?*

Two consumers:

* the service itself, right after ``POST /admin/reload`` adopts a new
  generation — it mines its own log and replays the top-N specs into
  the (freshly invalidated) result cache before the next client asks;
* the offline miner (``python -m repro warm`` /
  :mod:`repro.analysis.hot_keys`) via ``GET /admin/querylog``.

The buffer is a fixed-size ring (default 4096 entries): old traffic
ages out as new traffic arrives, so the "hot" set tracks the recent
workload, not all history. Aggregated counts are maintained
incrementally — :meth:`top` is O(distinct keys log n), not a replay.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.engine.spec import QuerySpec

#: Default ring capacity — enough to see a real workload's head
#: without unbounded growth.
DEFAULT_QUERYLOG_CAPACITY = 4096


def spec_payload(spec: QuerySpec) -> Dict[str, Any]:
    """A spec as the JSON-safe dict the log stores and serves.

    The shape matches the ``/query`` request body, so a miner can
    replay an entry verbatim as a warming query.
    """
    return {
        "keywords": list(spec.keywords),
        "rmax": float(spec.rmax),
        "mode": spec.mode,
        "k": spec.k,
        "algorithm": spec.algorithm,
        "aggregate": spec.aggregate,
    }


class QueryLog:
    """Thread-safe ring buffer of normalized query specs."""

    def __init__(self,
                 capacity: int = DEFAULT_QUERYLOG_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(
                f"querylog capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Deque[str] = deque()
        #: key -> (live count in ring, representative spec payload).
        #: Insertion-ordered so ties in :meth:`top` break toward the
        #: key seen first.
        self._entries: "OrderedDict[str, Tuple[int, Dict[str, Any]]]" \
            = OrderedDict()
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, spec: QuerySpec) -> None:
        """Log one admitted spec (evicting the oldest if full)."""
        key = spec.cache_key()
        payload = spec_payload(spec)
        with self._lock:
            self._recorded += 1
            if len(self._ring) >= self.capacity:
                oldest = self._ring.popleft()
                count, kept = self._entries[oldest]
                if count <= 1:
                    del self._entries[oldest]
                else:
                    self._entries[oldest] = (count - 1, kept)
            self._ring.append(key)
            if key in self._entries:
                count, _ = self._entries[key]
                self._entries[key] = (count + 1, payload)
            else:
                self._entries[key] = (1, payload)

    def top(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The hottest specs, most-frequent first.

        Each row is ``{"key", "count", "query"}`` where ``query`` is
        a replayable request payload. Ties keep first-seen order.
        """
        with self._lock:
            rows = [
                {"key": key, "count": count, "query": dict(payload)}
                for key, (count, payload) in self._entries.items()
            ]
        rows.sort(key=lambda row: -row["count"])
        if n is not None:
            rows = rows[:max(0, int(n))]
        return rows

    def top_specs(self, n: Optional[int] = None) -> List[QuerySpec]:
        """The hottest specs rebuilt as :class:`QuerySpec` objects."""
        specs = []
        for row in self.top(n):
            q = row["query"]
            specs.append(QuerySpec(
                keywords=q["keywords"], rmax=q["rmax"],
                mode=q["mode"], k=q["k"], algorithm=q["algorithm"],
                aggregate=q["aggregate"]))
        return specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total specs ever recorded (including aged-out ones)."""
        with self._lock:
            return self._recorded

    def as_dict(self) -> Dict[str, Any]:
        """Log shape for ``GET /admin/querylog`` and ``/healthz``."""
        with self._lock:
            size = len(self._ring)
            distinct = len(self._entries)
            recorded = self._recorded
        return {
            "capacity": self.capacity,
            "size": size,
            "distinct": distinct,
            "recorded": recorded,
        }
