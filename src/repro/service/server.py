"""The community-query service: threaded HTTP/JSON over one engine.

:class:`CommunityService` puts a network front on
:class:`~repro.engine.QueryEngine` using only the standard library
(``http.server.ThreadingHTTPServer``). Endpoints:

* ``POST /query`` — one-shot COMM-all / COMM-k; body mirrors
  :class:`~repro.engine.QuerySpec` (``keywords``, ``rmax``, ``k`` or
  ``mode``, ``algorithm``, ``aggregate``, ``deadline_seconds``,
  ``labels``);
* ``POST /batch`` — a list of such queries in one request, answered
  in order; with a :class:`~repro.parallel.ParallelQueryEngine` the
  entries execute concurrently across the worker processes;
* ``POST /sessions`` — open an interactive PDk session (projection +
  heap seeding happen here, once);
* ``POST /sessions/{id}/next`` — enlarge ``k``: up to ``k`` further
  ranked answers with **no** re-projection or re-seeding (the leased
  stream resumes); ``410 Gone`` once the lease expired or the graph
  changed under it;
* ``DELETE /sessions/{id}`` — release a lease early;
* ``POST /admin/reload`` — atomically swap the engine onto the newest
  published snapshot (from the configured ``snapshot_source`` or a
  ``path`` in the body); in-flight queries finish on the artifact they
  started with, open sessions from the old artifact answer ``410``,
  and the adopted generation's result cache is re-warmed with the
  query log's hottest specs before the response returns;
* ``POST /admin/delta`` — online ingestion: a validated
  :class:`~repro.text.maintenance.GraphDelta` body is appended to the
  delta WAL (when one is attached) *before* the engine applies it —
  the acknowledgment (the returned ``lsn``) is durable. Malformed
  deltas (duplicate node ids, unknown edge endpoints, NaN/negative
  weights) answer a typed 400 before touching either;
* ``GET /admin/querylog`` — the ring-buffer ledger of admitted query
  specs (normalized keys + counts), for offline hot-key mining
  (``python -m repro warm``);
* ``GET /metrics`` — Prometheus text format (stage timings, cache and
  shedding counters, queue depth, latency histograms, active snapshot
  id + load timestamp);
* ``GET /healthz`` — liveness plus the current engine generation and
  snapshot id.

Every query-executing route passes through the
:class:`~repro.service.admission.AdmissionController`: a full queue
sheds with ``429`` immediately, and the per-request deadline both
bounds the wait (``503``) and flows into ``QuerySpec.budget_seconds``
so the BU/TD baselines self-censor. Connection threads (unbounded,
cheap — they mostly block on the admission future) are therefore
decoupled from query threads (bounded, hot).

Routing and handling live on :meth:`CommunityService.handle`, which is
plain ``(method, path, body) -> (status, template, payload)`` — unit
tests exercise it without a socket; the integration suite drives the
real server through :class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.engine.context import QueryContext
from repro.engine.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import (
    QueryError,
    ServiceError,
    SnapshotError,
    SnapshotNotFoundError,
    WorkerError,
)
from repro.snapshot.snapshot import load_snapshot
from repro.snapshot.store import locate_snapshot
from repro.wal.records import parse_delta
from repro.service.admission import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_WORKERS,
    AdmissionController,
)
from repro.service.errors import BadRequest, NotFound, ShuttingDown
from repro.service.http import (
    SnapshotTransfer,
    route_snapshot_transfer,
    snapshot_store_of,
)
from repro.service.metrics import ServiceMetrics, prefixed, split_rates
from repro.service.querylog import DEFAULT_QUERYLOG_CAPACITY, QueryLog
from repro.service.serialize import (
    community_to_dict,
    context_to_dict,
    results_to_dict,
)
from repro.service.sessions import (
    DEFAULT_MAX_SESSIONS,
    DEFAULT_TTL_SECONDS,
    SessionLease,
    SessionManager,
)

#: Content type for the Prometheus exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Seconds :meth:`CommunityService.shutdown` waits for in-flight and
#: queued work before tearing the admission pool down hard.
DEFAULT_DRAIN_SECONDS = 5.0

#: ``Retry-After`` value (seconds) sent with 429/503 sheds.
RETRY_AFTER_SECONDS = 1

#: How many of the query log's hottest specs the service replays into
#: the result cache right after a reload adopts a new generation.
DEFAULT_WARM_TOP = 8

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: One response: status, metric path template, body (text for
#: JSON/metrics, raw bytes for snapshot sections), content type.
Response = Tuple[int, str, Union[str, bytes], str]


def _parse_body(body: bytes) -> Dict[str, Any]:
    """The request body as a JSON object (empty body -> ``{}``)."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise BadRequest(f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


def _keywords_of(payload: Dict[str, Any]) -> List[str]:
    """The ``keywords`` field: a list, or a comma-separated string."""
    keywords = payload.get("keywords")
    if isinstance(keywords, str):
        keywords = [kw.strip() for kw in keywords.split(",")
                    if kw.strip()]
    if not isinstance(keywords, list) or not keywords \
            or not all(isinstance(kw, str) for kw in keywords):
        raise BadRequest(
            "'keywords' must be a non-empty list of strings "
            "(or a comma-separated string)")
    return keywords


def _float_of(payload: Dict[str, Any], name: str,
              required: bool = True,
              default: Optional[float] = None) -> Optional[float]:
    """A numeric field, validated."""
    if name not in payload:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return default
    value = payload[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{name!r} must be a number")
    return float(value)


def _int_of(payload: Dict[str, Any], name: str,
            default: Optional[int] = None) -> Optional[int]:
    """An integer field, validated."""
    if name not in payload:
        return default
    value = payload[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{name!r} must be an integer")
    return value


def _served_from_cache(context: QueryContext) -> bool:
    """Whether a query was answered purely from the result cache.

    True only for a pure prefix lookup: at least one result-cache hit
    and neither a miss nor an extension — i.e. zero enumeration work
    happened anywhere (parent or pool worker; worker counters merge
    into the same context).
    """
    return (context.counter("result_cache_hits") > 0
            and context.counter("result_cache_misses") == 0
            and context.counter("result_cache_extensions") == 0)


def _context_delta(before_timings: Dict[str, float],
                   before_counters: Dict[str, int],
                   context: QueryContext) -> QueryContext:
    """What ``context`` accumulated since the snapshot was taken.

    Session contexts are cumulative (that is how clients verify
    enlargement is free), so the service folds per-call *deltas* into
    the global metrics to avoid double counting.
    """
    delta = QueryContext()
    for name, seconds in context.timings.items():
        gained = seconds - before_timings.get(name, 0.0)
        if gained > 0:
            delta.add_time(name, gained)
    for name, value in context.counters.items():
        gained = value - before_counters.get(name, 0)
        if gained > 0:
            delta.count(name, gained)
    return delta


class ServiceHandler(BaseHTTPRequestHandler):
    """Per-connection glue: read body, delegate, write response.

    All routing and semantics live on the owning
    :class:`CommunityService` (``self.server.service``); this class
    only speaks HTTP.
    """

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:            # noqa: N802 — http.server API
        """Route GET requests."""
        self._dispatch("GET")

    def do_POST(self) -> None:           # noqa: N802
        """Route POST requests."""
        self._dispatch("POST")

    def do_DELETE(self) -> None:         # noqa: N802
        """Route DELETE requests."""
        self._dispatch("DELETE")

    def do_PUT(self) -> None:            # noqa: N802
        """Route PUT requests (snapshot section uploads)."""
        self._dispatch("PUT")

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log (metrics cover it)."""

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        service: "CommunityService" = self.server.service  # type: ignore[attr-defined]
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, template, payload, content_type = service.handle(
            method, self.path, body)
        data = (payload if isinstance(payload, bytes)
                else payload.encode("utf-8"))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if status in (429, 503):
            # Both shed classes are transient: tell clients when to
            # come back, so their retry loops need not guess.
            self.send_header("Retry-After", str(RETRY_AFTER_SECONDS))
        self.end_headers()
        self.wfile.write(data)


class CommunityService:
    """One engine served over HTTP, with admission control.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :attr:`url`). The service is a context manager::

        with CommunityService(engine).start() as service:
            client = ServiceClient(service.url)
            ...
    """

    def __init__(self, engine: QueryEngine,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: int = DEFAULT_WORKERS,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 session_ttl: float = DEFAULT_TTL_SECONDS,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 default_deadline: Optional[float] = None,
                 snapshot_source: Optional[Union[str, Path]] = None,
                 drain_seconds: float = DEFAULT_DRAIN_SECONDS,
                 snapshot_mode: str = "copy",
                 warm_top: int = DEFAULT_WARM_TOP,
                 querylog_capacity: int = DEFAULT_QUERYLOG_CAPACITY,
                 wal: Optional[Any] = None
                 ) -> None:
        self.engine = engine
        self.default_deadline = default_deadline
        #: The delta write-ahead log (an open
        #: :class:`~repro.wal.log.WriteAheadLog`) or ``None`` —
        #: without one ``/admin/delta`` still works but acknowledged
        #: deltas die with the process.
        self.wal = wal
        #: The :class:`~repro.wal.compact.Compactor` when background
        #: compaction is on (``serve --compact-interval``); surfaced
        #: in ``/healthz`` and ``/metrics``.
        self.compactor: Optional[Any] = None
        #: Serializes delta acknowledgment (WAL append + engine
        #: apply) against compaction commits, so no delta is logged
        #: against a base that is being checkpointed away mid-append.
        self.ingest_lock = threading.Lock()
        #: How many hot specs to replay into the result cache after a
        #: generation swap (``0`` disables post-reload warming).
        self.warm_top = warm_top
        #: Ring buffer of admitted ``/query``/``/batch`` specs — the
        #: source both the post-reload warming pass and the offline
        #: miner (``GET /admin/querylog``) draw from.
        self.querylog = QueryLog(capacity=querylog_capacity)
        #: Graceful-shutdown budget: how long :meth:`shutdown` lets
        #: queued + in-flight work finish before tearing down hard.
        self.drain_seconds = drain_seconds
        #: Where ``POST /admin/reload`` looks for the newest published
        #: snapshot: a snapshot directory or a store root.
        self.snapshot_source = snapshot_source
        #: Materialization requested for admin reload loads
        #: (``"copy"`` / ``"mmap"`` / ``"auto"``) — should match how
        #: the engine itself was loaded, so a reload never silently
        #: changes the serving mode.
        self.snapshot_mode = snapshot_mode
        #: Cross-box transfer state (``/admin/snapshot...`` routes);
        #: ``None`` when no snapshot store is derivable, in which
        #: case those routes answer 400.
        store_root = snapshot_store_of(snapshot_source)
        self.snapshot_transfer = (SnapshotTransfer(store_root)
                                  if store_root is not None else None)
        self.admission = AdmissionController(
            workers=workers, queue_depth=queue_depth,
            default_deadline=default_deadline)
        self.sessions = SessionManager(
            engine, ttl_seconds=session_ttl, max_sessions=max_sessions)
        self.metrics = ServiceMetrics()
        self._httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self._httpd.daemon_threads = True                 # type: ignore[attr-defined]
        self._httpd.service = self                        # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CommunityService":
        """Serve on a background thread; returns ``self`` (chainable)."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="repro-service-accept")
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._httpd.serve_forever()

    def shutdown(self, drain_seconds: Optional[float] = None) -> None:
        """Graceful stop: drain in-flight work, then tear down.

        Sequence: stop admitting (new submissions shed ``503
        ShuttingDown`` + ``Retry-After``), let queued and in-flight
        jobs finish for up to ``drain_seconds`` (default: the
        constructor's :attr:`drain_seconds`), then close the listener
        and fail whatever is left. A request admitted before SIGTERM
        therefore completes normally as long as it fits the drain
        budget.

        Safe on a service that never served a socket (tests drive
        :meth:`handle` directly): ``HTTPServer.shutdown`` blocks
        forever unless ``serve_forever`` is running, so it is only
        called when serving actually started.
        """
        if drain_seconds is None:
            drain_seconds = self.drain_seconds
        drained = self.admission.drain(drain_seconds)
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.admission.shutdown()
        #: Whether the last shutdown finished all admitted work inside
        #: the drain budget (callers/ops scripts can assert on it).
        self.drained_clean = drained

    def __enter__(self) -> "CommunityService":
        """Context-manager entry (the server need not be started)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: always shut down."""
        self.shutdown()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes) -> Response:
        """Serve one request; never raises.

        Returns ``(status, path_template, body, content_type)``. The
        template (e.g. ``/sessions/{id}/next``) keys the latency
        histograms, so metric cardinality stays bounded however many
        session ids exist.
        """
        start = time.perf_counter()
        parts = tuple(p for p in path.split("?", 1)[0].split("/") if p)
        template = path
        try:
            faults.hit("service.request")
            template, result, content_type = self._route(
                method, parts, body)
            status, payload = 200, result
        except ServiceError as error:
            status = error.status
            template = self._error_template(template, parts)
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except WorkerError as error:
            # A pool worker crashed or blew its lease mid-request. The
            # request is lost but the *service* is healthy (the
            # watchdog respawned the worker), so this is transient
            # unavailability: 503 + Retry-After, not a 500.
            status = 503
            template = self._error_template(template, parts)
            payload = json.dumps({"error": str(error), "status": 503})
            content_type = JSON_CONTENT_TYPE
        except QueryError as error:
            status = 400
            template = self._error_template(template, parts)
            payload = json.dumps({"error": str(error), "status": 400})
            content_type = JSON_CONTENT_TYPE
        except Exception as error:  # noqa: BLE001 — boundary: any bug
            # becomes a 500 response rather than a dead connection.
            status = 500
            template = self._error_template(template, parts)
            payload = json.dumps({"error": str(error), "status": 500})
            content_type = JSON_CONTENT_TYPE
        self.metrics.observe_request(template, status,
                                     time.perf_counter() - start)
        return status, template, payload, content_type

    def _route(self, method: str, parts: Tuple[str, ...],
               body: bytes) -> Tuple[str, str, str]:
        """Dispatch to a handler; returns (template, body, type)."""
        if method == "GET" and parts == ("metrics",):
            return "/metrics", self.render_metrics(), \
                METRICS_CONTENT_TYPE
        if method == "GET" and parts == ("healthz",):
            return "/healthz", json.dumps(self._health()), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("admin", "reload"):
            return "/admin/reload", \
                json.dumps(self._admin_reload(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("admin", "delta"):
            return "/admin/delta", \
                json.dumps(self._admin_delta(body)), \
                JSON_CONTENT_TYPE
        if method == "GET" and parts == ("admin", "querylog"):
            return "/admin/querylog", \
                json.dumps(self._admin_querylog()), \
                JSON_CONTENT_TYPE
        if parts[:2] == ("admin", "snapshot"):
            return route_snapshot_transfer(
                self.snapshot_transfer, method, parts, body)
        if method == "POST" and parts == ("query",):
            return "/query", json.dumps(self._query(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("batch",):
            return "/batch", json.dumps(self._batch(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("sessions",):
            return "/sessions", \
                json.dumps(self._session_create(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and len(parts) == 3 \
                and parts[0] == "sessions" and parts[2] == "next":
            return "/sessions/{id}/next", \
                json.dumps(self._session_next(parts[1], body)), \
                JSON_CONTENT_TYPE
        if method == "DELETE" and len(parts) == 2 \
                and parts[0] == "sessions":
            self.sessions.close(parts[1])
            return "/sessions/{id}", json.dumps({"closed": True}), \
                JSON_CONTENT_TYPE
        raise NotFound(f"no route {method} /{'/'.join(parts)}")

    @staticmethod
    def _error_template(template: str, parts: Tuple[str, ...]) -> str:
        """A bounded-cardinality metric label for failed requests."""
        if template.startswith("/") and "{" in template:
            return template          # routing already templated it
        if parts == ("admin", "reload"):
            return "/admin/reload"
        if parts == ("admin", "delta"):
            return "/admin/delta"
        if parts[:2] == ("admin", "snapshot"):
            if len(parts) == 4:
                return ("/admin/snapshot/{id}/commit"
                        if parts[3] == "commit"
                        else "/admin/snapshot/{id}/{section}")
            if len(parts) == 3:
                return "/admin/snapshot/{id}"
            return "/admin/snapshot"
        if parts[:1] == ("sessions",) and len(parts) == 3:
            return "/sessions/{id}/next"
        if parts[:1] == ("sessions",) and len(parts) == 2:
            return "/sessions/{id}"
        return "/" + "/".join(parts[:1]) if parts else "/"

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        """Liveness payload.

        ``status`` is ``"ok"`` normally and ``"degraded"`` once the
        pool's crash-storm breaker opened (the service still answers,
        on fewer workers) — orchestrators alert on it without parsing
        metrics."""
        health = {
            "status": "ok",
            "generation": self.engine.generation,
            "snapshot": self.engine.snapshot_id,
            "snapshot_mode": getattr(self.engine, "snapshot_mode",
                                     None),
            # Delta divergence is surfaced whether or not a WAL is
            # attached: a dirty engine with no WAL is exactly the
            # state an operator must notice (a restart loses it).
            "dirty": bool(getattr(self.engine, "dirty", False)),
            "deltas_applied": int(getattr(self.engine,
                                          "deltas_applied", 0)),
            "sessions": self.sessions.count,
            "queued": self.admission.queued,
            "in_flight": self.admission.in_flight,
        }
        if self.wal is not None:
            wal_block = dict(self.wal.as_dict(), enabled=True,
                             dirty=health["dirty"])
            if self.compactor is not None:
                wal_block["compaction"] = self.compactor.as_dict()
                if self.compactor.degraded:
                    health["status"] = "degraded"
            health["wal"] = wal_block
        results = getattr(self.engine, "results", None)
        if results is not None:
            health["result_cache"] = results.as_dict()
        health["querylog"] = self.querylog.as_dict()
        pool = getattr(self.engine, "pool", None)
        if pool is not None:
            health["pool_workers"] = pool.workers
            health["pool_alive"] = pool.alive
            health["pool_degraded"] = pool.degraded
            if pool.degraded:
                health["status"] = "degraded"
        return health

    def _admin_reload(self, body: bytes) -> Dict[str, Any]:
        """``POST /admin/reload``: swap onto the newest snapshot.

        Resolves the configured :attr:`snapshot_source` (or a ``path``
        supplied in the body) — a snapshot directory or a store root,
        in which case the store's ``latest`` wins — loads it with
        checksum verification, and atomically swaps the engine onto
        it. A ``snapshot`` id in the body resolves against the
        service's own snapshot store instead: the cross-box form,
        used after a :func:`~repro.service.http.push_snapshot`, so no
        filesystem path crosses a box boundary. In-flight queries
        finish on the artifact they started with; a reload to a
        content-identical snapshot is a no-op that keeps the cache
        warm and open sessions valid.
        """
        faults.hit("service.reload")
        payload = _parse_body(body)
        snapshot_id = payload.get("snapshot")
        if snapshot_id is not None:
            if self.snapshot_transfer is None:
                raise BadRequest(
                    "cannot reload by snapshot id: the service has "
                    "no snapshot store (serve with --snapshot)")
            try:
                source: Any = self.snapshot_transfer.store.resolve(
                    str(snapshot_id))
            except SnapshotNotFoundError as error:
                raise NotFound(str(error))
        else:
            source = payload.get("path") or self.snapshot_source
        if source is None:
            raise BadRequest(
                "no snapshot source configured; serve with a "
                "--snapshot source or supply 'path' in the body")
        try:
            snapshot = load_snapshot(locate_snapshot(source),
                                     mode=self.snapshot_mode)
        except SnapshotNotFoundError as error:
            raise NotFound(str(error))
        except SnapshotError as error:
            raise BadRequest(str(error))
        with self.ingest_lock:
            superseded = 0
            if self.wal is not None:
                # Record the supersede point *before* the swap: pool
                # workers replay the WAL as part of their reload, and
                # without a checkpoint naming the incoming snapshot
                # they would refuse it as foreign history. If the
                # swap fails and rolls back, the stale checkpoint is
                # harmless for replay of the previous snapshot but
                # the log should be compacted or the service
                # restarted (see OPERATIONS.md).
                lsn_before = self.wal.lsn
                if self.engine.generation != snapshot.id:
                    self.wal.append_checkpoint(snapshot.id,
                                               lsn_before)
            try:
                changed = self.engine.swap_snapshot(snapshot)
            except SnapshotError as error:
                # The engine already rolled everyone back to the
                # previous snapshot; report the failure without
                # pretending the request was malformed.
                raise ServiceError(str(error))
            if self.wal is not None and changed:
                # The adopted snapshot supersedes everything logged
                # before it — drop the folded prefix.
                superseded = self.wal.truncate(lsn_before)
        # An adopted new generation starts with an empty result cache
        # — re-warm it with the workload's observed head before the
        # next client asks, so the first post-reload repeats are hits.
        warmed = self.warm() if changed else 0
        result = {
            "reloaded": changed,
            "snapshot": snapshot.id,
            "generation": self.engine.generation,
            "loaded_at": self.engine.snapshot_loaded_at,
            "warmed": warmed,
        }
        if self.wal is not None:
            result["wal_superseded"] = superseded
            result["wal_lsn"] = self.wal.lsn
        return result

    def _admin_delta(self, body: bytes) -> Dict[str, Any]:
        """``POST /admin/delta``: ingest one graph delta, durably.

        Body: ``{"nodes": [...], "edges": [[u, v, w], ...],
        "banks_reweight": false}`` — the
        :class:`~repro.text.maintenance.GraphDelta` wire form.
        Validation happens first (typed 400 before any side effect),
        then, under the ingest lock, the delta is appended to the WAL
        — fsynced per the serving policy — and only then applied to
        the engine: an acknowledged LSN is always recoverable. On a
        :class:`~repro.parallel.ParallelQueryEngine` the apply also
        fans the delta out to every pool worker.
        """
        faults.hit("service.delta")
        payload = _parse_body(body)
        banks = payload.get("banks_reweight", False)
        if not isinstance(banks, bool):
            raise BadRequest("'banks_reweight' must be a boolean")
        delta = parse_delta(payload, base_nodes=self.engine.dbg.n)
        with self.ingest_lock:
            lsn = None
            if self.wal is not None:
                lsn = self.wal.append_delta(
                    delta,
                    base=getattr(self.engine, "base_snapshot_id",
                                 None),
                    banks_reweight=banks)
            self.engine.apply_delta(delta, banks, lsn=lsn)
        # Sessions opened against the pre-delta generation now answer
        # 410 on their next call; that is the same contract a reload
        # imposes, and clients already handle it.
        result = {
            "lsn": lsn,
            "nodes_added": delta.node_count(),
            "edges_added": len(delta.new_edges),
            "generation": self.engine.generation,
            "dirty": getattr(self.engine, "dirty", True),
            "deltas_applied": getattr(self.engine, "deltas_applied",
                                      0),
        }
        if self.wal is not None:
            result["pending_deltas"] = self.wal.pending_count
        return result

    def _admin_querylog(self) -> Dict[str, Any]:
        """``GET /admin/querylog``: the hot-spec ledger, for miners."""
        return {
            "querylog": self.querylog.as_dict(),
            "top": self.querylog.top(),
        }

    def warm(self, specs: Optional[List[QuerySpec]] = None,
             top: Optional[int] = None) -> int:
        """Replay specs into the engine's result cache (best effort).

        With no ``specs``, mines this service's own query log for its
        ``top`` (default :attr:`warm_top`) hottest entries. Returns
        how many specs were actually computed into the cache (already
        -warm and uncacheable specs don't count). Warming is an
        optimization: any failure degrades to a cold cache, never to
        a failed request.
        """
        if specs is None:
            limit = self.warm_top if top is None else top
            if not limit:
                return 0
            specs = self.querylog.top_specs(limit)
        if not specs:
            return 0
        warm = getattr(self.engine, "warm", None)
        if warm is None:
            return 0
        try:
            return int(warm(list(specs)))
        except Exception:  # noqa: BLE001 — warming must never take
            # the service down; a cold cache just recomputes.
            return 0

    @staticmethod
    def _spec_of(payload: Dict[str, Any]) -> QuerySpec:
        """A validated :class:`QuerySpec` from one query payload."""
        keywords = _keywords_of(payload)
        rmax = _float_of(payload, "rmax")
        k = _int_of(payload, "k")
        mode = payload.get("mode") or ("topk" if k is not None
                                       else "all")
        return QuerySpec(
            tuple(keywords), rmax, mode=mode, k=k,
            algorithm=payload.get("algorithm", "pd"),
            aggregate=payload.get("aggregate", "sum"),
            budget_seconds=_float_of(payload, "budget_seconds",
                                     required=False))

    @staticmethod
    def _clamp_budget(spec: QuerySpec,
                      remaining: Optional[float]) -> QuerySpec:
        """Tighten the spec's budget to the admission deadline."""
        if remaining is not None and (
                spec.budget_seconds is None
                or remaining < spec.budget_seconds):
            return replace(spec, budget_seconds=remaining)
        return spec

    def _query(self, body: bytes) -> Dict[str, Any]:
        """``POST /query``: one-shot COMM-all / COMM-k."""
        payload = _parse_body(body)
        spec = self._spec_of(payload)
        deadline = _float_of(payload, "deadline_seconds",
                             required=False,
                             default=self.default_deadline)
        want_labels = bool(payload.get("labels", False))
        context = QueryContext()
        start = time.perf_counter()

        def job(remaining: Optional[float]) -> Any:
            return self.engine.execute(
                self._clamp_budget(spec, remaining), context)

        results = self.admission.run(job, deadline)
        self.metrics.observe_context(context)
        self.querylog.record(spec)
        return results_to_dict(
            results,
            dbg=self.engine.dbg if want_labels else None,
            context=context, spec=spec,
            elapsed_seconds=time.perf_counter() - start,
            cached=_served_from_cache(context))

    def _batch(self, body: bytes) -> Dict[str, Any]:
        """``POST /batch``: fan a list of queries across the pool.

        Body: ``{"queries": [<query payload>, ...]}`` plus optional
        batch-wide ``deadline_seconds``/``labels``. The batch is one
        admission job (one queue slot, one deadline) but its queries
        run **concurrently** when the engine is a
        :class:`~repro.parallel.ParallelQueryEngine` — that is the
        whole point: one HTTP round-trip keeps every worker process
        busy. Results come back in request order, one standard query
        envelope per entry, each with its own per-query stats.

        On a plain in-process engine the batch degrades gracefully to
        a sequential loop with identical semantics.
        """
        payload = _parse_body(body)
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise BadRequest(
                "'queries' must be a non-empty list of query objects")
        if not all(isinstance(q, dict) for q in queries):
            raise BadRequest("every batch entry must be an object")
        specs = [self._spec_of(query) for query in queries]
        deadline = _float_of(payload, "deadline_seconds",
                             required=False,
                             default=self.default_deadline)
        want_labels = bool(payload.get("labels", False))
        contexts = [QueryContext() for _ in specs]
        start = time.perf_counter()

        def job(remaining: Optional[float]) -> List[Any]:
            run_specs = [self._clamp_budget(spec, remaining)
                         for spec in specs]
            fan_out = getattr(self.engine, "execute_batch", None)
            if fan_out is not None:
                return fan_out(run_specs, contexts)
            return [self.engine.execute(spec, ctx)
                    for spec, ctx in zip(run_specs, contexts)]

        all_results = self.admission.run(job, deadline)
        elapsed = time.perf_counter() - start
        dbg = self.engine.dbg if want_labels else None
        envelopes = []
        for spec, context, results in zip(specs, contexts,
                                          all_results):
            self.metrics.observe_context(context)
            self.querylog.record(spec)
            envelopes.append(results_to_dict(
                results, dbg=dbg, context=context, spec=spec,
                cached=_served_from_cache(context)))
        return {
            "queries": len(envelopes),
            "results": envelopes,
            "elapsed_seconds": elapsed,
        }

    def _session_create(self, body: bytes) -> Dict[str, Any]:
        """``POST /sessions``: lease an interactive PDk stream."""
        payload = _parse_body(body)
        keywords = _keywords_of(payload)
        rmax = _float_of(payload, "rmax")
        aggregate = payload.get("aggregate", "sum")
        ttl = _float_of(payload, "ttl_seconds", required=False)
        deadline = _float_of(payload, "deadline_seconds",
                             required=False,
                             default=self.default_deadline)

        def job(remaining: Optional[float]) -> SessionLease:
            return self.sessions.create(keywords, rmax,
                                        aggregate=aggregate,
                                        ttl_seconds=ttl)

        lease = self.admission.run(job, deadline)
        # The creation context starts empty, so the whole thing is the
        # delta to fold into the service-wide metrics.
        self.metrics.observe_context(lease.context)
        return {
            "session": lease.id,
            "generation": lease.generation,
            "ttl_seconds": lease.ttl_seconds,
            "keywords": list(lease.keywords),
            "rmax": lease.rmax,
            "stats": context_to_dict(lease.context),
        }

    def _session_next(self, session_id: str,
                      body: bytes) -> Dict[str, Any]:
        """``POST /sessions/{id}/next``: enlarge k, no recomputation."""
        payload = _parse_body(body)
        k = _int_of(payload, "k", default=10)
        deadline = _float_of(payload, "deadline_seconds",
                             required=False,
                             default=self.default_deadline)
        want_labels = bool(payload.get("labels", False))

        def job(remaining: Optional[float]) -> Any:
            lease = self.sessions.get(session_id)
            before_t = dict(lease.context.timings)
            before_c = dict(lease.context.counters)
            communities, lease = self.sessions.next(session_id, k)
            self.metrics.observe_context(
                _context_delta(before_t, before_c, lease.context))
            return communities, lease

        communities, lease = self.admission.run(job, deadline)
        dbg = self.engine.dbg if want_labels else None
        return {
            "session": lease.id,
            "generation": lease.generation,
            "returned": len(communities),
            "emitted": lease.stream.emitted,
            "exhausted": lease.stream.exhausted,
            "communities": [community_to_dict(c, dbg)
                            for c in communities],
            "stats": context_to_dict(lease.context),
        }

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """One Prometheus scrape of the whole service."""
        cache_counters, cache_gauges = split_rates(
            self.engine.cache.stats.as_dict(), ("cache_hit_rate",))
        counters = prefixed(cache_counters, prefix="repro_projection_",
                            suffix="_total")
        counters.update(prefixed(self.admission.stats.as_dict(),
                                 prefix="repro_", suffix="_total"))
        counters.update(prefixed(self.sessions.stats.as_dict(),
                                 prefix="repro_", suffix="_total"))
        gauges = prefixed(cache_gauges, prefix="repro_projection_")
        results = getattr(self.engine, "results", None)
        if results is not None:
            rc_counters, rc_gauges = split_rates(
                results.as_dict(), ("result_cache_hit_rate",))
            # Occupancy/capacity are instantaneous values, not
            # monotone counters — keep them out of the _total family
            # (bytes stays there: the dashboards key on
            # repro_result_cache_bytes_total).
            for name in ("result_cache_entries",
                         "result_cache_capacity_bytes"):
                if name in rc_counters:
                    rc_gauges[name] = rc_counters.pop(name)
            counters.update(prefixed(rc_counters, prefix="repro_",
                                     suffix="_total"))
            gauges.update(prefixed(rc_gauges, prefix="repro_"))
        gauges.update({
            "repro_queue_depth": float(self.admission.queued),
            "repro_in_flight": float(self.admission.in_flight),
            "repro_sessions_active": float(self.sessions.count),
            "repro_engine_generation": float(
                self.engine.generation_epoch),
            "repro_projection_cache_size": float(
                len(self.engine.cache)),
            "repro_engine_dirty": float(
                bool(getattr(self.engine, "dirty", False))),
        })
        counters["repro_engine_deltas_applied_total"] = float(
            getattr(self.engine, "deltas_applied", 0))
        if self.wal is not None:
            counters.update({
                "repro_wal_appends_total": float(self.wal.appends),
                "repro_wal_fsyncs_total": float(self.wal.fsyncs),
                "repro_wal_truncations_total": float(
                    self.wal.truncations),
                "repro_wal_replayed_records_total": float(
                    self.wal.replayed),
            })
            gauges.update({
                "repro_wal_lsn": float(self.wal.lsn),
                "repro_wal_pending_deltas": float(
                    self.wal.pending_count),
                "repro_wal_bytes": float(self.wal.wal_bytes),
            })
        if self.compactor is not None:
            counters["repro_wal_compactions_total"] = float(
                self.compactor.compactions)
            counters["repro_wal_compaction_failures_total"] = float(
                self.compactor.failures)
            counters["repro_wal_folded_deltas_total"] = float(
                self.compactor.folded)
            gauges["repro_wal_compaction_degraded"] = float(
                bool(self.compactor.degraded))
        infos: Dict[str, Any] = {}
        if self.engine.snapshot_id is not None:
            mode = getattr(self.engine, "snapshot_mode", None)
            infos["repro_snapshot_info"] = {
                "snapshot_id": self.engine.snapshot_id,
                "mode": mode or "unknown"}
            gauges["repro_snapshot_loaded_timestamp_seconds"] = \
                float(self.engine.snapshot_loaded_at or 0.0)
            gauges["repro_snapshot_mmap"] = (
                1.0 if mode == "mmap" else 0.0)
        self._worker_metrics(counters, gauges, infos)
        return self.metrics.render(counters=counters, gauges=gauges,
                                   infos=infos)

    def _worker_metrics(self, counters: Dict[str, float],
                        gauges: Dict[str, float],
                        infos: Dict[str, Any]) -> None:
        """Fold pool-worker observability into one scrape.

        Engines without a pool contribute nothing. With a
        :class:`~repro.parallel.ParallelQueryEngine`:

        * ``repro_worker_info{worker,pid,snapshot_id,generation}`` —
          one identity row per worker, which is how the reload smoke
          test asserts every worker adopted the new snapshot;
        * ``repro_worker_*_total`` — the workers' private projection
          cache and Dijkstra-memo counters, summed (per-stage wall
          clock needs no special handling: workers report timings per
          query and the service folds them into
          ``repro_stage_seconds_total`` exactly as in-process
          execution does);
        * ``repro_pool_workers`` / ``repro_pool_workers_alive`` /
          ``repro_pool_respawns_total`` — pool health.
        """
        stats_of = getattr(self.engine, "worker_stats", None)
        pool = getattr(self.engine, "pool", None)
        if stats_of is None or pool is None:
            return
        per_worker = stats_of()
        rows = []
        summed: Dict[str, float] = {}
        for stats in per_worker:
            rows.append({
                "worker": str(stats.get("worker")),
                "pid": str(stats.get("pid", "")),
                "snapshot_id": str(stats.get("snapshot_id", "")),
                "generation": str(stats.get("generation", "")),
                "alive": str(bool(stats.get("alive"))).lower(),
            })
            for name, value in stats.items():
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    continue
                if name in ("worker", "pid"):
                    continue
                summed[name] = summed.get(name, 0.0) + float(value)
        infos["repro_worker_info"] = rows
        worker_counters, worker_gauges = split_rates(
            summed, ("cache_hit_rate", "result_cache_hit_rate"))
        counters.update(prefixed(worker_counters,
                                 prefix="repro_worker_",
                                 suffix="_total"))
        gauges.update(prefixed(worker_gauges, prefix="repro_worker_"))
        gauges["repro_pool_workers"] = float(pool.workers)
        gauges["repro_pool_workers_alive"] = float(pool.alive)
        gauges["repro_pool_degraded"] = float(
            bool(getattr(pool, "degraded", False)))
        counters["repro_pool_respawns_total"] = float(pool.respawns)
        # Alias kept alongside respawns_total: dashboards built on the
        # conventional restart counter name need no relabeling.
        counters["repro_worker_restarts_total"] = float(pool.respawns)
        counters["repro_pool_timeouts_total"] = float(
            getattr(pool, "timeouts", 0))
