"""Keyword tokenization for tuple text.

The paper treats a tuple as "containing" a keyword when the keyword
appears in its text attributes, located via a full-text index ([1] in
the paper). This tokenizer defines that containment relation for the
whole library: lowercase, alphanumeric token runs, optional stopword
removal and minimum length.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Set

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A small, conventional English stopword list. Kept deliberately short:
#: the paper's own keyword sets include words like "all", so aggressive
#: stopword removal would change the workload semantics.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in",
    "is", "it", "of", "on", "or", "that", "the", "to", "with",
})


class Tokenizer:
    """Configurable text -> keyword-set tokenizer."""

    def __init__(self, stopwords: Iterable[str] = (),
                 min_length: int = 1) -> None:
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self._stopwords = frozenset(w.lower() for w in stopwords)
        self._min_length = min_length

    def tokens(self, text: str) -> List[str]:
        """All tokens of ``text`` in order, filters applied."""
        result = []
        for match in _TOKEN_RE.finditer(text.lower()):
            token = match.group()
            if len(token) < self._min_length:
                continue
            if token in self._stopwords:
                continue
            result.append(token)
        return result

    def keyword_set(self, text: str) -> Set[str]:
        """Distinct keywords of ``text``."""
        return set(self.tokens(text))

    def __call__(self, text: str) -> Set[str]:
        return self.keyword_set(text)


#: The library-wide default: no stopwords, no length filter — keyword
#: containment is purely "the token occurs in the text", matching the
#: paper's usage where single common words are valid query keywords.
DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> Set[str]:
    """Tokenize with the library default tokenizer."""
    return DEFAULT_TOKENIZER.keyword_set(text)
