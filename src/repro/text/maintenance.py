"""Incremental maintenance: append tuples, update the index in place.

The paper builds its inverted indexes once (355 s for DBLP) — but real
databases grow. This module supports *append-only* growth: new tuple
nodes and new reference edges arrive, and the community index is
updated without re-walking every keyword.

Soundness argument (why local recomputation is safe):

* any *new* path ``u -> … -> W_w`` of weight ``<= R`` must cross a new
  or re-weighted edge; the first such edge's head ``h`` then reaches
  ``W_w`` within ``R`` in the new graph (non-negative weights). So the
  keywords needing recomputation are exactly those whose keyword nodes
  are forward-reachable within ``R`` from the heads of new/changed
  edges, plus the keywords of the new nodes themselves. One bounded
  multi-source Dijkstra finds them.
* affected keywords get exact fresh postings; unaffected keywords keep
  their old postings, which can only be *supersets* after a change
  (BANKS re-weighting increases weights, shrinking true neighbor
  sets). Superset postings are harmless: the query-time projection
  (Algorithm 6) recomputes real distances and prunes them, so query
  answers stay exact — the index just gets less tight until the next
  :func:`rebuild <repro.text.inverted_index.CommunityIndex.build>`.

The equivalence (updated index answers ≡ fresh-rebuild answers) is
property-tested in ``tests/property/test_maintenance_props.py``.

Each applied delta advances the index ``generation`` counter
(:attr:`CommunityIndex.generation`); the execution engine's projection
cache keys its entries on index generation, so applying a delta
through :meth:`repro.engine.QueryEngine.apply_delta` (or the
:class:`~repro.core.search.CommunitySearch` facade) automatically
evicts every pre-delta projection — cached answers can never lag a
grown graph (``tests/property/test_projection_cache_props.py``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph, Provenance
from repro.graph.dijkstra import bounded_dijkstra
from repro.text.inverted_index import (
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
)

Edge = Tuple[int, int, float]


@dataclass
class GraphDelta:
    """An append-only batch: new nodes and new directed edges.

    ``new_nodes`` entries are ``(keywords, label, provenance)``; their
    ids are assigned densely after the existing nodes, in order. Edge
    endpoints may reference both old and new ids.
    """

    new_nodes: List[Tuple[Set[str], str, Optional[Provenance]]] = \
        field(default_factory=list)
    new_edges: List[Edge] = field(default_factory=list)

    def node_count(self) -> int:
        """Number of new nodes in this delta."""
        return len(self.new_nodes)


def extend_database_graph(dbg: DatabaseGraph, delta: GraphDelta,
                          banks_reweight: bool = False
                          ) -> Tuple[DatabaseGraph, Set[int]]:
    """Apply a delta; return the new graph and the *changed heads*.

    Changed heads are the targets of new edges plus (with
    ``banks_reweight``) every node whose in-degree — and therefore the
    BANKS weight of *all* its in-edges — changed. They seed the
    affected-keyword scan in :func:`update_index`.

    With ``banks_reweight`` the new edges' weights are ignored and the
    whole edge set is re-weighted as ``log2(1 + N_in(v))``, matching
    :func:`repro.rdb.graph_builder.build_database_graph`.
    """
    n_old = dbg.n
    n_new = n_old + delta.node_count()
    for u, v, w in delta.new_edges:
        if not (0 <= u < n_new and 0 <= v < n_new):
            raise GraphError(
                f"delta edge ({u}, {v}) outside extended node range "
                f"0..{n_new - 1}")
        if w < 0:
            raise GraphError(f"negative delta edge weight {w}")

    old_edges = list(dbg.graph.edges())
    changed_heads: Set[int] = {v for _, v, _ in delta.new_edges}

    if banks_reweight:
        in_degree = [0] * n_new
        for _, v, _ in old_edges:
            in_degree[v] += 1
        for _, v, _ in delta.new_edges:
            in_degree[v] += 1
        all_edges = []
        for u, v, w_old in old_edges:
            w_new = math.log2(1 + in_degree[v])
            if w_new != w_old:
                # weight drift (new in-edges, or the base graph was
                # not BANKS-weighted): every path through v changes
                changed_heads.add(v)
            all_edges.append((u, v, w_new))
        all_edges.extend(
            (u, v, math.log2(1 + in_degree[v]))
            for u, v, _ in delta.new_edges)
    else:
        all_edges = old_edges + list(delta.new_edges)

    graph = CompiledGraph.from_edges(n_new, all_edges)
    keywords = [dbg.keywords_of(u) for u in range(n_old)] + [
        set(kws) for kws, _, _ in delta.new_nodes]
    labels = [dbg.label_of(u) for u in range(n_old)] + [
        label for _, label, _ in delta.new_nodes]
    provenance = [dbg.provenance_of(u) for u in range(n_old)] + [
        prov for _, _, prov in delta.new_nodes]
    return DatabaseGraph(graph, keywords, labels, provenance), \
        changed_heads


def affected_keywords(new_dbg: DatabaseGraph, delta: GraphDelta,
                      changed_heads: Iterable[int], radius: float,
                      base_node_count: int) -> Set[str]:
    """Keywords whose postings may gain entries from the delta."""
    affected: Set[str] = set()
    for kws, _, _ in delta.new_nodes:
        affected |= set(kws)
    heads = set(changed_heads)
    if heads:
        reach = bounded_dijkstra(new_dbg.graph.forward, heads, radius)
        for node in reach:
            affected |= new_dbg.keywords_of(node)
    del base_node_count  # kept for signature clarity/extension
    return affected


def update_index(index: CommunityIndex, new_dbg: DatabaseGraph,
                 delta: GraphDelta, changed_heads: Iterable[int]
                 ) -> CommunityIndex:
    """Produce an updated :class:`CommunityIndex` for the grown graph.

    Affected keywords are recomputed exactly; all others keep their
    previous (never under-complete) postings. The returned index wraps
    ``new_dbg``; ``build_seconds`` accumulates the incremental cost.
    """
    start = time.perf_counter()
    radius = index.radius
    base_n = index.dbg.n
    affected = affected_keywords(new_dbg, delta, changed_heads,
                                 radius, base_n)

    node_postings: Dict[str, List[int]] = {
        kw: list(index.node_index.nodes(kw))
        for kw in index.node_index.keywords()
    }
    edge_postings: Dict[str, List[Edge]] = {
        kw: list(index.edge_index.edges(kw))
        for kw in index.node_index.keywords()
    }

    # exact recompute for each affected keyword
    graph = new_dbg.graph
    indptr = graph.forward.indptr
    targets = graph.forward.targets
    weights = graph.forward.weights
    for kw in sorted(affected):
        seeds = new_dbg.nodes_with_keyword(kw)
        node_postings[kw] = sorted(seeds)
        if not seeds:
            edge_postings[kw] = []
            continue
        reached = set(
            bounded_dijkstra(graph.reverse, seeds, radius).distances())
        edges: List[Edge] = []
        for u in reached:
            for idx in range(indptr[u], indptr[u + 1]):
                v = int(targets[idx])
                if v in reached:
                    edges.append((u, v, float(weights[idx])))
        edges.sort()
        edge_postings[kw] = edges

    elapsed = time.perf_counter() - start
    return CommunityIndex(
        new_dbg,
        NodeInvertedIndex(node_postings),
        EdgeInvertedIndex(edge_postings, radius),
        radius,
        index.build_seconds + elapsed,
        generation=index.generation + 1,
    )


def apply_delta(index: CommunityIndex, delta: GraphDelta,
                banks_reweight: bool = False
                ) -> Tuple[DatabaseGraph, CommunityIndex]:
    """Grow the graph and update the index in one step."""
    new_dbg, changed_heads = extend_database_graph(
        index.dbg, delta, banks_reweight)
    new_index = update_index(index, new_dbg, delta, changed_heads)
    return new_dbg, new_index
