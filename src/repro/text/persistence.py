"""Serialization of the community index (Section VI's two inverted
indexes), JSON with optional gzip.

The paper builds its indexes once per database (355 s for DBLP) and
then answers every query from them; persisting the build is the
production workflow. The on-disk payload stores both posting maps and
the radius; the graph itself is stored separately
(:mod:`repro.graph.io`) and re-attached at load time.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.text.inverted_index import (
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
)

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_index(index: CommunityIndex, path: PathLike) -> None:
    """Write the index postings to ``path`` (``.gz`` to compress)."""
    node_postings = {
        kw: index.node_index.nodes(kw)
        for kw in index.node_index.keywords()
    }
    edge_postings = {
        kw: [[u, v, w] for u, v, w in index.edge_index.edges(kw)]
        for kw in index.node_index.keywords()
    }
    payload = {
        "format": "repro.community_index",
        "version": FORMAT_VERSION,
        "radius": index.radius,
        "build_seconds": index.build_seconds,
        "node_postings": node_postings,
        "edge_postings": edge_postings,
    }
    path = Path(path)
    with _open(path, "w") as handle:
        json.dump(payload, handle)


def load_index(path: PathLike, dbg: DatabaseGraph) -> CommunityIndex:
    """Read an index written by :func:`save_index` for graph ``dbg``.

    The caller is responsible for pairing the file with the graph it
    was built from (node ids are meaningless otherwise); a cheap
    sanity check rejects postings outside the graph's node range.
    """
    path = Path(path)
    with _open(path, "r") as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.community_index":
        raise QueryError(f"{path} is not a repro community index file")
    if payload.get("version") != FORMAT_VERSION:
        raise QueryError(
            f"unsupported index format version "
            f"{payload.get('version')!r} (expected {FORMAT_VERSION})")

    node_postings = {
        kw: [int(u) for u in nodes]
        for kw, nodes in payload["node_postings"].items()
    }
    for kw, nodes in node_postings.items():
        if nodes and (min(nodes) < 0 or max(nodes) >= dbg.n):
            raise QueryError(
                f"index posting for {kw!r} references node outside "
                f"the supplied graph (n={dbg.n}); wrong graph?")
    edge_postings = {
        kw: [(int(u), int(v), float(w)) for u, v, w in edges]
        for kw, edges in payload["edge_postings"].items()
    }
    radius = float(payload["radius"])
    return CommunityIndex(
        dbg,
        NodeInvertedIndex(node_postings),
        EdgeInvertedIndex(edge_postings, radius),
        radius,
        float(payload.get("build_seconds", 0.0)),
    )
