"""Legacy single-file index serialization (JSON, optionally gzipped).

A compatibility shim over :mod:`repro.snapshot.codec` (payload
encoding) and :mod:`repro.ioutil` (versioned-JSON container): the
paper builds its indexes once per database (355 s for DBLP) and then
answers every query from them, and this format persists that build as
one JSON file. New code should prefer snapshots
(:mod:`repro.snapshot`), which bundle the graph with the index under
checksums; this format stays for files written by earlier releases
and for graph-less tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.ioutil import dump_versioned_json, load_versioned_json
from repro.snapshot.codec import index_from_payload, index_payload
from repro.text.inverted_index import CommunityIndex

FORMAT_NAME = "repro.community_index"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_index(index: CommunityIndex, path: PathLike) -> None:
    """Write the index postings to ``path`` (``.gz`` to compress).

    Both posting maps are dumped over the union of the node- and
    edge-index keyword sets — a keyword present in only one of the
    two (possible with an explicit build vocabulary) survives the
    round trip.
    """
    dump_versioned_json(index_payload(index), Path(path),
                        FORMAT_NAME, FORMAT_VERSION)


def load_index(path: PathLike, dbg: DatabaseGraph) -> CommunityIndex:
    """Read an index written by :func:`save_index` for graph ``dbg``.

    The caller is responsible for pairing the file with the graph it
    was built from (node ids are meaningless otherwise); a cheap
    sanity check rejects postings outside the graph's node range.
    """
    payload = load_versioned_json(Path(path), FORMAT_NAME,
                                  FORMAT_VERSION, QueryError)
    return index_from_payload(payload, dbg)
