"""Full-text machinery: tokenizer and the paper's two inverted indexes.

Section VI of the paper indexes the database graph with ``invertedN``
(keyword -> nodes containing it) and ``invertedE`` (keyword -> edges
whose endpoints both lie within radius ``R`` of some node containing
it). :class:`~repro.text.inverted_index.CommunityIndex` bundles both and
records build statistics; graph projection (Algorithm 6) is implemented
on top of it in :mod:`repro.core.projection`.
"""

from repro.text.inverted_index import (
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
)
from repro.text.maintenance import GraphDelta, apply_delta, update_index
from repro.text.persistence import load_index, save_index
from repro.text.tokenizer import Tokenizer, tokenize

__all__ = [
    "CommunityIndex",
    "EdgeInvertedIndex",
    "GraphDelta",
    "NodeInvertedIndex",
    "Tokenizer",
    "apply_delta",
    "load_index",
    "save_index",
    "tokenize",
    "update_index",
]
