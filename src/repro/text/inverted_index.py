"""The paper's two inverted indexes: ``invertedN`` and ``invertedE``.

Section VI: for each keyword ``w``,

* ``invertedN[w]`` stores the nodes ``V_w`` containing ``w``;
* ``invertedE[w]`` stores the edges ``(u, v)`` such that *both*
  endpoints are within ``R`` of at least one node in ``V_w`` — where
  "within R" means the endpoint can *reach* a ``V_w`` node along a path
  of total weight ``<= R`` (centers and path nodes reach keyword nodes,
  per Definition 2.1), computed with one bounded reverse multi-source
  Dijkstra per keyword.

``R`` is the largest ``Rmax`` users may ask for; any query with
``Rmax <= R`` answered on the projected graph (Algorithm 6) returns
exactly the communities of the full graph.

:class:`CommunityIndex` bundles both indexes plus build-time statistics
(elapsed seconds, entry counts, approximate size in bytes) so the
benchmark harness can report the same index numbers the paper quotes in
Section VII.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra

Edge = Tuple[int, int, float]


class NodeInvertedIndex:
    """``invertedN``: keyword -> sorted node ids containing it."""

    def __init__(self, postings: Dict[str, List[int]]) -> None:
        self._postings = postings

    @classmethod
    def build(cls, dbg: DatabaseGraph,
              keywords: Optional[Iterable[str]] = None
              ) -> "NodeInvertedIndex":
        """Scan the graph once and collect postings.

        With ``keywords`` given, only that vocabulary is indexed (used
        when the benchmark vocabulary is known up front); otherwise the
        full vocabulary is indexed.
        """
        # Explicit vocabularies are case-folded like everything else
        # (graph keywords and query keywords already are), so a
        # benchmark passing "XML" indexes the folded postings.
        wanted = None if keywords is None \
            else {kw.casefold() for kw in keywords}
        postings: Dict[str, List[int]] = {}
        for node in range(dbg.n):
            for kw in dbg.keywords_of(node):
                if wanted is not None and kw not in wanted:
                    continue
                postings.setdefault(kw, []).append(node)
        for nodes in postings.values():
            nodes.sort()
        return cls(postings)

    def nodes(self, keyword: str) -> List[int]:
        """Posting list for ``keyword`` (empty when absent)."""
        return self._postings.get(keyword, [])

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._postings

    def keywords(self) -> List[str]:
        """All indexed keywords, sorted."""
        return sorted(self._postings)

    def entry_count(self) -> int:
        """Total postings across all keywords."""
        return sum(len(v) for v in self._postings.values())

    def frequency(self, keyword: str, total_tuples: int) -> float:
        """Keyword frequency (the paper's KWF): postings / tuples."""
        if total_tuples <= 0:
            raise QueryError("total_tuples must be positive")
        return len(self.nodes(keyword)) / total_tuples


class EdgeInvertedIndex:
    """``invertedE``: keyword -> edges with both endpoints within R."""

    def __init__(self, postings: Dict[str, List[Edge]], radius: float) -> None:
        self._postings = postings
        self.radius = radius

    @classmethod
    def build(cls, dbg: DatabaseGraph, node_index: NodeInvertedIndex,
              radius: float,
              keywords: Optional[Iterable[str]] = None
              ) -> "EdgeInvertedIndex":
        """One bounded reverse Dijkstra per keyword, then induced edges."""
        if radius < 0:
            raise QueryError(f"index radius must be >= 0, got {radius}")
        vocab = sorted({kw.casefold() for kw in keywords}) \
            if keywords is not None else node_index.keywords()
        postings: Dict[str, List[Edge]] = {}
        graph = dbg.graph
        indptr = graph.forward.indptr
        targets = graph.forward.targets
        weights = graph.forward.weights
        for kw in vocab:
            seeds = node_index.nodes(kw)
            if not seeds:
                postings[kw] = []
                continue
            reached: Set[int] = set(
                bounded_dijkstra(graph.reverse, seeds, radius).distances())
            edges: List[Edge] = []
            for u in reached:
                for idx in range(indptr[u], indptr[u + 1]):
                    v = int(targets[idx])
                    if v in reached:
                        edges.append((u, v, float(weights[idx])))
            edges.sort()
            postings[kw] = edges
        return cls(postings, radius)

    def edges(self, keyword: str) -> List[Edge]:
        """Edge posting list for ``keyword`` (empty when absent)."""
        return self._postings.get(keyword, [])

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._postings

    def keywords(self) -> List[str]:
        """All indexed keywords, sorted (may differ from the node
        index's set when the index was built over an explicit
        vocabulary)."""
        return sorted(self._postings)

    def entry_count(self) -> int:
        """Total edge postings across all keywords."""
        return sum(len(v) for v in self._postings.values())


class ArrayNodeInvertedIndex(NodeInvertedIndex):
    """``invertedN`` served out of flat posting arrays, on demand.

    The mmap snapshot path: instead of materializing every posting
    list at load, this variant keeps the snapshot's flat node-posting
    column (a read-only int64 view over the mapped ``postings.bin``)
    plus the per-keyword ``(id, count)`` directory, and slices a
    keyword's postings out of the column on first request — decoded to
    a plain Python list (so callers see the exact types the dict-backed
    index returns) and memoized.

    Keyword *names* resolve lazily through ``resolve_vocab`` (the
    snapshot's sorted vocabulary, usually behind the same parse-once
    payload as the lazy graph metadata), so opening the index costs no
    JSON parse at all. Vocab ids are assigned in sorted-name order,
    hence an id-sorted directory is also name-sorted and
    :meth:`keywords` needs no re-sort.
    """

    def __init__(self, keyword_ids: List[int], counts: List[int],
                 flat, resolve_vocab) -> None:
        # No super().__init__: the dict the base class wraps is
        # replaced by the (directory, flat column) pair; every method
        # touching ``_postings`` is overridden.
        self._ids = keyword_ids
        self._counts = counts
        self._starts: List[int] = []
        total = 0
        for count in counts:
            self._starts.append(total)
            total += count
        self._total = total
        self._flat = flat
        self._resolve_vocab = resolve_vocab
        self._names: Optional[List[str]] = None
        self._pos: Optional[Dict[str, int]] = None
        self._memo: Dict[str, List[int]] = {}

    def _positions(self) -> Dict[str, int]:
        pos = self._pos
        if pos is None:
            vocab = self._resolve_vocab()
            self._names = [vocab[i] for i in self._ids]
            pos = self._pos = {
                name: j for j, name in enumerate(self._names)}
        return pos

    def nodes(self, keyword: str) -> List[int]:
        """Posting list for ``keyword``, sliced/decoded on demand."""
        got = self._memo.get(keyword)
        if got is None:
            slot = self._positions().get(keyword)
            if slot is None:
                return []
            start = self._starts[slot]
            got = self._memo[keyword] = \
                self._flat[start:start + self._counts[slot]].tolist()
        return got

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._positions()

    def keywords(self) -> List[str]:
        """All indexed keywords (already name-sorted; see above)."""
        self._positions()
        return list(self._names)

    def entry_count(self) -> int:
        """Total postings across all keywords (from the directory)."""
        return self._total


class ArrayEdgeInvertedIndex(EdgeInvertedIndex):
    """``invertedE`` served out of flat ``u``/``v``/``w`` columns.

    Mirror of :class:`ArrayNodeInvertedIndex` for the edge postings:
    three parallel read-only views (sources, targets, weights) sliced
    per keyword on first request and decoded to the same
    ``(int, int, float)`` tuples the dict-backed index stores.
    """

    def __init__(self, keyword_ids: List[int], counts: List[int],
                 flat_u, flat_v, flat_w, radius: float,
                 resolve_vocab) -> None:
        self.radius = radius
        self._ids = keyword_ids
        self._counts = counts
        self._starts: List[int] = []
        total = 0
        for count in counts:
            self._starts.append(total)
            total += count
        self._total = total
        self._flat_u = flat_u
        self._flat_v = flat_v
        self._flat_w = flat_w
        self._resolve_vocab = resolve_vocab
        self._names: Optional[List[str]] = None
        self._pos: Optional[Dict[str, int]] = None
        self._memo: Dict[str, List[Edge]] = {}

    def _positions(self) -> Dict[str, int]:
        pos = self._pos
        if pos is None:
            vocab = self._resolve_vocab()
            self._names = [vocab[i] for i in self._ids]
            pos = self._pos = {
                name: j for j, name in enumerate(self._names)}
        return pos

    def edges(self, keyword: str) -> List[Edge]:
        """Edge posting list for ``keyword``, sliced/decoded on
        demand."""
        got = self._memo.get(keyword)
        if got is None:
            slot = self._positions().get(keyword)
            if slot is None:
                return []
            start = self._starts[slot]
            stop = start + self._counts[slot]
            got = self._memo[keyword] = list(zip(
                self._flat_u[start:stop].tolist(),
                self._flat_v[start:stop].tolist(),
                self._flat_w[start:stop].tolist()))
        return got

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._positions()

    def keywords(self) -> List[str]:
        """All indexed keywords (already name-sorted; see above)."""
        self._positions()
        return list(self._names)

    def entry_count(self) -> int:
        """Total edge postings across all keywords."""
        return self._total


class CommunityIndex:
    """Both inverted indexes plus build statistics.

    This is what a deployment persists per database; queries only ever
    touch the index, never the full ``G_D`` (Section VI: "the entire
    G_D can be constructed using the two inverted indexes").
    """

    def __init__(self, dbg: DatabaseGraph, node_index: NodeInvertedIndex,
                 edge_index: EdgeInvertedIndex, radius: float,
                 build_seconds: float, generation: int = 0) -> None:
        self.dbg = dbg
        self.node_index = node_index
        self.edge_index = edge_index
        self.radius = radius
        self.build_seconds = build_seconds
        #: Maintenance lineage: 0 for a fresh build, +1 per applied
        #: :class:`~repro.text.maintenance.GraphDelta`. The engine's
        #: projection cache uses index changes to stale-check entries;
        #: this counter makes the lineage observable in stats/reports.
        self.generation = generation

    @classmethod
    def build(cls, dbg: DatabaseGraph, radius: float,
              keywords: Optional[Iterable[str]] = None) -> "CommunityIndex":
        """Build both indexes for the given maximum radius ``R``."""
        start = time.perf_counter()
        node_index = NodeInvertedIndex.build(dbg, keywords)
        edge_index = EdgeInvertedIndex.build(dbg, node_index, radius,
                                             keywords)
        elapsed = time.perf_counter() - start
        return cls(dbg, node_index, edge_index, radius, elapsed)

    # ------------------------------------------------------------------
    # lookups used by Algorithm 6
    # ------------------------------------------------------------------
    def nodes(self, keyword: str) -> List[int]:
        """``getNode(invertedN, k)`` of Algorithm 6."""
        return self.node_index.nodes(keyword)

    def edges(self, keyword: str) -> List[Edge]:
        """``getEdge(invertedE, k)`` of Algorithm 6."""
        return self.edge_index.edges(keyword)

    def require_keyword(self, keyword: str) -> None:
        """Raise :class:`QueryError` when a keyword has no postings."""
        if not self.node_index.nodes(keyword):
            raise QueryError(
                f"keyword {keyword!r} does not occur in the database")

    # ------------------------------------------------------------------
    # statistics (paper §VII reports build time and index size)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate serialized index size.

        Counted the way an on-disk layout would store it: 8 bytes per
        node posting, 24 per edge posting (two endpoints + weight).
        """
        return (8 * self.node_index.entry_count()
                + 24 * self.edge_index.entry_count())

    def stats(self) -> Dict[str, object]:
        """Build/size statistics for reporting."""
        return {
            "radius": self.radius,
            "keywords": len(self.node_index.keywords()),
            "node_postings": self.node_index.entry_count(),
            "edge_postings": self.edge_index.entry_count(),
            "size_bytes": self.size_bytes(),
            "build_seconds": self.build_seconds,
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return (f"CommunityIndex(radius={self.radius}, "
                f"keywords={len(self.node_index.keywords())}, "
                f"size={self.size_bytes()}B)")


def python_object_size(index: CommunityIndex) -> int:
    """In-memory footprint estimate of the index (sys.getsizeof based)."""
    total = 0
    for kw in index.node_index.keywords():
        total += sys.getsizeof(index.node_index.nodes(kw))
        total += sys.getsizeof(index.edge_index.edges(kw))
    return total
