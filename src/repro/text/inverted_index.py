"""The paper's two inverted indexes: ``invertedN`` and ``invertedE``.

Section VI: for each keyword ``w``,

* ``invertedN[w]`` stores the nodes ``V_w`` containing ``w``;
* ``invertedE[w]`` stores the edges ``(u, v)`` such that *both*
  endpoints are within ``R`` of at least one node in ``V_w`` — where
  "within R" means the endpoint can *reach* a ``V_w`` node along a path
  of total weight ``<= R`` (centers and path nodes reach keyword nodes,
  per Definition 2.1), computed with one bounded reverse multi-source
  Dijkstra per keyword.

``R`` is the largest ``Rmax`` users may ask for; any query with
``Rmax <= R`` answered on the projected graph (Algorithm 6) returns
exactly the communities of the full graph.

:class:`CommunityIndex` bundles both indexes plus build-time statistics
(elapsed seconds, entry counts, approximate size in bytes) so the
benchmark harness can report the same index numbers the paper quotes in
Section VII.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra

Edge = Tuple[int, int, float]


class NodeInvertedIndex:
    """``invertedN``: keyword -> sorted node ids containing it."""

    def __init__(self, postings: Dict[str, List[int]]) -> None:
        self._postings = postings

    @classmethod
    def build(cls, dbg: DatabaseGraph,
              keywords: Optional[Iterable[str]] = None
              ) -> "NodeInvertedIndex":
        """Scan the graph once and collect postings.

        With ``keywords`` given, only that vocabulary is indexed (used
        when the benchmark vocabulary is known up front); otherwise the
        full vocabulary is indexed.
        """
        wanted = None if keywords is None else set(keywords)
        postings: Dict[str, List[int]] = {}
        for node in range(dbg.n):
            for kw in dbg.keywords_of(node):
                if wanted is not None and kw not in wanted:
                    continue
                postings.setdefault(kw, []).append(node)
        for nodes in postings.values():
            nodes.sort()
        return cls(postings)

    def nodes(self, keyword: str) -> List[int]:
        """Posting list for ``keyword`` (empty when absent)."""
        return self._postings.get(keyword, [])

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._postings

    def keywords(self) -> List[str]:
        """All indexed keywords, sorted."""
        return sorted(self._postings)

    def entry_count(self) -> int:
        """Total postings across all keywords."""
        return sum(len(v) for v in self._postings.values())

    def frequency(self, keyword: str, total_tuples: int) -> float:
        """Keyword frequency (the paper's KWF): postings / tuples."""
        if total_tuples <= 0:
            raise QueryError("total_tuples must be positive")
        return len(self.nodes(keyword)) / total_tuples


class EdgeInvertedIndex:
    """``invertedE``: keyword -> edges with both endpoints within R."""

    def __init__(self, postings: Dict[str, List[Edge]], radius: float) -> None:
        self._postings = postings
        self.radius = radius

    @classmethod
    def build(cls, dbg: DatabaseGraph, node_index: NodeInvertedIndex,
              radius: float,
              keywords: Optional[Iterable[str]] = None
              ) -> "EdgeInvertedIndex":
        """One bounded reverse Dijkstra per keyword, then induced edges."""
        if radius < 0:
            raise QueryError(f"index radius must be >= 0, got {radius}")
        vocab = list(keywords) if keywords is not None \
            else node_index.keywords()
        postings: Dict[str, List[Edge]] = {}
        graph = dbg.graph
        indptr = graph.forward.indptr
        targets = graph.forward.targets
        weights = graph.forward.weights
        for kw in vocab:
            seeds = node_index.nodes(kw)
            if not seeds:
                postings[kw] = []
                continue
            reached: Set[int] = set(
                bounded_dijkstra(graph.reverse, seeds, radius).distances())
            edges: List[Edge] = []
            for u in reached:
                for idx in range(indptr[u], indptr[u + 1]):
                    v = targets[idx]
                    if v in reached:
                        edges.append((u, v, weights[idx]))
            edges.sort()
            postings[kw] = edges
        return cls(postings, radius)

    def edges(self, keyword: str) -> List[Edge]:
        """Edge posting list for ``keyword`` (empty when absent)."""
        return self._postings.get(keyword, [])

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._postings

    def keywords(self) -> List[str]:
        """All indexed keywords, sorted (may differ from the node
        index's set when the index was built over an explicit
        vocabulary)."""
        return sorted(self._postings)

    def entry_count(self) -> int:
        """Total edge postings across all keywords."""
        return sum(len(v) for v in self._postings.values())


class CommunityIndex:
    """Both inverted indexes plus build statistics.

    This is what a deployment persists per database; queries only ever
    touch the index, never the full ``G_D`` (Section VI: "the entire
    G_D can be constructed using the two inverted indexes").
    """

    def __init__(self, dbg: DatabaseGraph, node_index: NodeInvertedIndex,
                 edge_index: EdgeInvertedIndex, radius: float,
                 build_seconds: float, generation: int = 0) -> None:
        self.dbg = dbg
        self.node_index = node_index
        self.edge_index = edge_index
        self.radius = radius
        self.build_seconds = build_seconds
        #: Maintenance lineage: 0 for a fresh build, +1 per applied
        #: :class:`~repro.text.maintenance.GraphDelta`. The engine's
        #: projection cache uses index changes to stale-check entries;
        #: this counter makes the lineage observable in stats/reports.
        self.generation = generation

    @classmethod
    def build(cls, dbg: DatabaseGraph, radius: float,
              keywords: Optional[Iterable[str]] = None) -> "CommunityIndex":
        """Build both indexes for the given maximum radius ``R``."""
        start = time.perf_counter()
        node_index = NodeInvertedIndex.build(dbg, keywords)
        edge_index = EdgeInvertedIndex.build(dbg, node_index, radius,
                                             keywords)
        elapsed = time.perf_counter() - start
        return cls(dbg, node_index, edge_index, radius, elapsed)

    # ------------------------------------------------------------------
    # lookups used by Algorithm 6
    # ------------------------------------------------------------------
    def nodes(self, keyword: str) -> List[int]:
        """``getNode(invertedN, k)`` of Algorithm 6."""
        return self.node_index.nodes(keyword)

    def edges(self, keyword: str) -> List[Edge]:
        """``getEdge(invertedE, k)`` of Algorithm 6."""
        return self.edge_index.edges(keyword)

    def require_keyword(self, keyword: str) -> None:
        """Raise :class:`QueryError` when a keyword has no postings."""
        if not self.node_index.nodes(keyword):
            raise QueryError(
                f"keyword {keyword!r} does not occur in the database")

    # ------------------------------------------------------------------
    # statistics (paper §VII reports build time and index size)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate serialized index size.

        Counted the way an on-disk layout would store it: 8 bytes per
        node posting, 24 per edge posting (two endpoints + weight).
        """
        return (8 * self.node_index.entry_count()
                + 24 * self.edge_index.entry_count())

    def stats(self) -> Dict[str, object]:
        """Build/size statistics for reporting."""
        return {
            "radius": self.radius,
            "keywords": len(self.node_index.keywords()),
            "node_postings": self.node_index.entry_count(),
            "edge_postings": self.edge_index.entry_count(),
            "size_bytes": self.size_bytes(),
            "build_seconds": self.build_seconds,
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return (f"CommunityIndex(radius={self.radius}, "
                f"keywords={len(self.node_index.keywords())}, "
                f"size={self.size_bytes()}B)")


def python_object_size(index: CommunityIndex) -> int:
    """In-memory footprint estimate of the index (sys.getsizeof based)."""
    total = 0
    for kw in index.node_index.keywords():
        total += sys.getsizeof(index.node_index.nodes(kw))
        total += sys.getsizeof(index.edge_index.edges(kw))
    return total
