"""The immutable snapshot artifact: one directory from build to serve.

A **snapshot** is the unit a deployment ships: the database graph
``G_D``, its :class:`~repro.text.inverted_index.CommunityIndex` (the
paper's two inverted indexes, built once — 355 s for DBLP in Section
VI) and the keyword vocabulary, bundled under a content manifest so a
worker's startup is a checksum-verified *load* instead of a rebuild.

On-disk layout (one directory per snapshot)::

    <dir>/
      manifest.json        format, version, id, created_at, counts,
                           build provenance, per-section SHA-256
      graph.bin[.gz]       forward CSR: indptr | targets | weights
      nodes.json[.gz]      labels, provenance, vocab, per-node
                           keyword ids
      index.json[.gz]      radius, build seconds, posting directory
      postings.bin[.gz]    node postings | edge (u | v | w) columns

Binary sections are little-endian ``int64``/``float64`` columns —
loading is ``np.frombuffer`` + one vectorized reverse-CSR pass
(:meth:`~repro.graph.csr.CompiledGraph.from_csr`), which is what makes
snapshot loads several times faster than parsing the legacy JSON edge
list. Sections may be gzip-compressed (``compress=True``); checksums
and the snapshot id are computed over the *uncompressed* payload, so
the id is a pure function of content.

The snapshot **id** (``sn-`` + 12 hex chars) digests every section,
which gives the engine a durable cache-invalidation generation: two
workers loading the same snapshot agree on the id, and republishing
identical content republishes the same snapshot.

Errors follow the taxonomy in :mod:`repro.exceptions`:
:class:`~repro.exceptions.SnapshotNotFoundError` (nothing there),
:class:`~repro.exceptions.SnapshotFormatError` /
:class:`~repro.exceptions.SnapshotVersionError` (not a readable
snapshot) and :class:`~repro.exceptions.SnapshotIntegrityError`
(damaged payload: bad checksum, truncation, undecodable section).
"""

from __future__ import annotations

import datetime
import gzip
import hashlib
import json
import mmap as _mmap
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import faults
from repro.exceptions import (
    GraphError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    SnapshotVersionError,
)
from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph, LazyDatabaseGraph
from repro.snapshot.codec import decode_provenance, encode_provenance
from repro.text.inverted_index import (
    ArrayEdgeInvertedIndex,
    ArrayNodeInvertedIndex,
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
)

FORMAT_NAME = "repro.snapshot"
FORMAT_VERSION = 1

#: The manifest file name inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

PathLike = Union[str, Path]

_INT = np.dtype("<i8")
_FLOAT = np.dtype("<f8")


def _utcnow() -> str:
    """The current UTC time as an ISO-8601 string.

    Microsecond precision: the store orders snapshots by
    ``created_at``, and two publishes can land within one second.
    """
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S.%fZ")


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8")


class Snapshot:
    """One loaded (or just-written) snapshot artifact.

    Bundles the manifest with the materialized
    :class:`~repro.graph.database_graph.DatabaseGraph` and (when the
    snapshot carries one) the
    :class:`~repro.text.inverted_index.CommunityIndex`, plus the path
    it lives at.
    """

    def __init__(self, path: Path, manifest: Dict[str, Any],
                 dbg: DatabaseGraph,
                 index: Optional[CommunityIndex],
                 mode: str = "copy") -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.dbg = dbg
        self.index = index
        #: How the artifact was materialized: ``"copy"`` (private
        #: Python objects, the legacy path) or ``"mmap"`` (read-only
        #: array views over the mapped section files). A just-written
        #: snapshot wraps the in-memory objects it was built from and
        #: reports ``"copy"``.
        self.mode = mode

    @property
    def id(self) -> str:
        """Content-derived snapshot id (``sn-`` + 12 hex chars)."""
        return self.manifest["id"]

    @property
    def created_at(self) -> str:
        """ISO-8601 UTC build time (informational, not hashed)."""
        return self.manifest["created_at"]

    @property
    def provenance(self) -> Dict[str, Any]:
        """Free-form build provenance (dataset, radius, builder...)."""
        return self.manifest.get("provenance", {})

    @property
    def counts(self) -> Dict[str, int]:
        """Node/edge/vocabulary/posting counts from the manifest."""
        return self.manifest["counts"]

    @property
    def radius(self) -> Optional[float]:
        """The bundled index's radius ``R`` (``None`` if no index)."""
        if self.index is None:
            return None
        return self.index.radius

    def __repr__(self) -> str:
        return (f"Snapshot(id={self.id!r}, nodes="
                f"{self.counts['nodes']}, edges={self.counts['edges']}"
                f", index={self.index is not None}, "
                f"mode={self.mode!r})")


# ----------------------------------------------------------------------
# section encoders
# ----------------------------------------------------------------------
def _graph_section(dbg: DatabaseGraph) -> bytes:
    """Forward CSR as ``indptr | targets | weights`` columns."""
    forward = dbg.graph.forward
    return b"".join((
        np.asarray(forward.indptr, dtype=_INT).tobytes(),
        np.asarray(forward.targets, dtype=_INT).tobytes(),
        np.asarray(forward.weights, dtype=_FLOAT).tobytes(),
    ))


def _nodes_section(dbg: DatabaseGraph, vocab: List[str]) -> bytes:
    """Labels, provenance, vocabulary and per-node keyword ids."""
    vocab_ids = {kw: i for i, kw in enumerate(vocab)}
    return _json_bytes({
        "labels": [dbg.label_of(u) for u in range(dbg.n)],
        "provenance": [encode_provenance(dbg.provenance_of(u))
                       for u in range(dbg.n)],
        "vocab": vocab,
        "node_keywords": [
            sorted(vocab_ids[kw] for kw in dbg.keywords_of(u))
            for u in range(dbg.n)],
    })


def _index_sections(index: CommunityIndex,
                    vocab: List[str]) -> Dict[str, bytes]:
    """The index directory (JSON) plus the postings columns (binary).

    Keyword membership is stored separately per inverted index — a
    keyword may appear in only one of the two maps (e.g. an explicit
    build vocabulary containing a word absent from the graph), and an
    *empty* posting list is distinct from an absent keyword.
    """
    vocab_ids = {kw: i for i, kw in enumerate(vocab)}
    node_kws = index.node_index.keywords()
    edge_kws = index.edge_index.keywords()
    parts: List[bytes] = []
    node_counts: List[int] = []
    for kw in node_kws:
        nodes = index.node_index.nodes(kw)
        node_counts.append(len(nodes))
        parts.append(np.asarray(nodes, dtype=_INT).tobytes())
    edge_counts: List[int] = []
    edge_u: List[bytes] = []
    edge_v: List[bytes] = []
    edge_w: List[bytes] = []
    for kw in edge_kws:
        edges = index.edge_index.edges(kw)
        edge_counts.append(len(edges))
        us = np.fromiter((e[0] for e in edges), dtype=_INT,
                         count=len(edges))
        vs = np.fromiter((e[1] for e in edges), dtype=_INT,
                         count=len(edges))
        ws = np.fromiter((e[2] for e in edges), dtype=_FLOAT,
                         count=len(edges))
        edge_u.append(us.tobytes())
        edge_v.append(vs.tobytes())
        edge_w.append(ws.tobytes())
    directory = _json_bytes({
        "radius": index.radius,
        "build_seconds": index.build_seconds,
        "node_keywords": [vocab_ids[kw] for kw in node_kws],
        "node_counts": node_counts,
        "edge_keywords": [vocab_ids[kw] for kw in edge_kws],
        "edge_counts": edge_counts,
    })
    postings = b"".join(parts) + b"".join(edge_u) \
        + b"".join(edge_v) + b"".join(edge_w)
    return {"index": directory, "postings": postings}


def snapshot_vocab(dbg: DatabaseGraph,
                   index: Optional[CommunityIndex]) -> List[str]:
    """The snapshot's keyword vocabulary, sorted.

    The graph vocabulary unioned with both posting maps' keyword sets
    (an index built over an explicit word list may reference keywords
    no node carries).
    """
    vocab = set(dbg.vocabulary())
    if index is not None:
        vocab.update(index.node_index.keywords())
        vocab.update(index.edge_index.keywords())
    return sorted(vocab)


# ----------------------------------------------------------------------
# write
# ----------------------------------------------------------------------
def write_snapshot(path: PathLike, dbg: DatabaseGraph,
                   index: Optional[CommunityIndex] = None,
                   provenance: Optional[Dict[str, Any]] = None,
                   compress: bool = False) -> Snapshot:
    """Write one snapshot directory at ``path`` and return it.

    ``path`` must not already contain a snapshot (publishing with
    overwrite/atomicity semantics is
    :meth:`repro.snapshot.store.SnapshotStore.publish`'s job).
    ``compress`` gzips the section payloads; the manifest stays plain
    JSON either way, and checksums cover the uncompressed bytes.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    if (path / MANIFEST_NAME).exists():
        raise SnapshotFormatError(
            f"{path} already holds a snapshot; write to a fresh "
            f"directory (or publish through a SnapshotStore)")

    vocab = snapshot_vocab(dbg, index)
    payloads: Dict[str, bytes] = {
        "graph": _graph_section(dbg),
        "nodes": _nodes_section(dbg, vocab),
    }
    if index is not None:
        payloads.update(_index_sections(index, vocab))

    sections: Dict[str, Dict[str, Any]] = {}
    digest = hashlib.sha256()
    digest.update(f"{FORMAT_NAME}:{FORMAT_VERSION}".encode())
    for name in sorted(payloads):
        data = payloads[name]
        sha = hashlib.sha256(data).hexdigest()
        digest.update(name.encode())
        digest.update(sha.encode())
        suffix = ".json" if name in ("nodes", "index") else ".bin"
        filename = f"{name}{suffix}" + (".gz" if compress else "")
        stored = gzip.compress(data, mtime=0) if compress else data
        (path / filename).write_bytes(stored)
        sections[name] = {
            "file": filename,
            "sha256": sha,
            "bytes": len(data),
            "gzip": compress,
        }

    counts = {
        "nodes": dbg.n,
        "edges": dbg.m,
        "vocab": len(vocab),
        "node_postings": (index.node_index.entry_count()
                          if index is not None else 0),
        "edge_postings": (index.edge_index.entry_count()
                          if index is not None else 0),
    }
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "id": f"sn-{digest.hexdigest()[:12]}",
        "created_at": _utcnow(),
        "provenance": dict(provenance or {}),
        "has_index": index is not None,
        "counts": counts,
        "sections": sections,
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return Snapshot(path, manifest, dbg, index)


# ----------------------------------------------------------------------
# read
# ----------------------------------------------------------------------
def read_manifest(path: PathLike) -> Dict[str, Any]:
    """The manifest of the snapshot at ``path``, header-checked."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotNotFoundError(f"no snapshot at {path} "
                                    f"(missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text(
            encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(
            f"unreadable snapshot manifest {manifest_path}: "
            f"{exc}") from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != FORMAT_NAME:
        raise SnapshotFormatError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest")
    if manifest.get("version") != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"unsupported snapshot version "
            f"{manifest.get('version')!r} (expected {FORMAT_VERSION})")
    return manifest


def _read_section(path: Path, manifest: Dict[str, Any], name: str,
                  verify: bool) -> bytes:
    """One section's uncompressed bytes, optionally checksum-checked."""
    entry = manifest["sections"].get(name)
    if entry is None:
        raise SnapshotFormatError(
            f"snapshot {manifest.get('id')} has no {name!r} section")
    section_path = path / entry["file"]
    if not section_path.is_file():
        raise SnapshotIntegrityError(
            f"snapshot section {section_path} is missing")
    raw = section_path.read_bytes()
    if entry.get("gzip"):
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError, ValueError) as exc:
            raise SnapshotIntegrityError(
                f"snapshot section {section_path} is corrupt "
                f"(gzip: {exc})") from exc
    # Failpoint: simulate on-disk damage (bit rot, torn write) after
    # decompression so the checksum below is what catches it — the
    # exact production detection path.
    raw = faults.corrupt(f"snapshot.section.{name}",
                         faults.corrupt("snapshot.section", raw))
    if len(raw) != entry["bytes"]:
        raise SnapshotIntegrityError(
            f"snapshot section {section_path} is truncated: "
            f"{len(raw)} bytes, manifest says {entry['bytes']}")
    if verify:
        sha = hashlib.sha256(raw).hexdigest()
        if sha != entry["sha256"]:
            raise SnapshotIntegrityError(
                f"snapshot section {section_path} failed its "
                f"checksum (sha256 {sha[:12]}..., manifest "
                f"{entry['sha256'][:12]}...)")
    return raw


def _split(data: bytes, *specs) -> List[np.ndarray]:
    """Slice concatenated columns ``(dtype, count)`` out of ``data``."""
    arrays: List[np.ndarray] = []
    offset = 0
    for dtype, count in specs:
        size = dtype.itemsize * count
        if offset + size > len(data):
            raise SnapshotIntegrityError(
                "snapshot binary section is shorter than its "
                "manifest counts imply")
        arrays.append(np.frombuffer(data, dtype=dtype, count=count,
                                    offset=offset))
        offset += size
    if offset != len(data):
        raise SnapshotIntegrityError(
            "snapshot binary section has trailing bytes beyond its "
            "manifest counts")
    return arrays


def _decode_graph(manifest: Dict[str, Any], graph_data: bytes,
                  nodes_data: bytes) -> DatabaseGraph:
    """Rebuild the :class:`DatabaseGraph` from its two sections."""
    n = manifest["counts"]["nodes"]
    m = manifest["counts"]["edges"]
    indptr, targets, weights = _split(
        graph_data, (_INT, n + 1), (_INT, m), (_FLOAT, m))
    try:
        graph = CompiledGraph.from_csr(n, indptr, targets, weights)
    except GraphError as exc:
        raise SnapshotIntegrityError(
            f"snapshot graph section is inconsistent: {exc}") from exc
    try:
        nodes = json.loads(nodes_data.decode("utf-8"))
        vocab = nodes["vocab"]
        keywords = [[vocab[i] for i in ids]
                    for ids in nodes["node_keywords"]]
        provenance = [decode_provenance(entry)
                      for entry in nodes["provenance"]]
        labels = nodes["labels"]
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        raise SnapshotIntegrityError(
            f"snapshot nodes section is undecodable: {exc}") from exc
    try:
        return DatabaseGraph(graph, keywords, labels, provenance)
    except GraphError as exc:
        raise SnapshotIntegrityError(
            f"snapshot node sections disagree with the graph: "
            f"{exc}") from exc


def _decode_index(dbg: DatabaseGraph, vocab: List[str],
                  index_data: bytes,
                  postings_data: bytes) -> CommunityIndex:
    """Rebuild the :class:`CommunityIndex` from its two sections."""
    try:
        directory = json.loads(index_data.decode("utf-8"))
        node_kws = [vocab[i] for i in directory["node_keywords"]]
        edge_kws = [vocab[i] for i in directory["edge_keywords"]]
        node_counts = [int(c) for c in directory["node_counts"]]
        edge_counts = [int(c) for c in directory["edge_counts"]]
        radius = float(directory["radius"])
        build_seconds = float(directory.get("build_seconds", 0.0))
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        raise SnapshotIntegrityError(
            f"snapshot index section is undecodable: {exc}") from exc
    if len(node_counts) != len(node_kws) \
            or len(edge_counts) != len(edge_kws):
        raise SnapshotIntegrityError(
            "snapshot index directory counts do not align with its "
            "keyword lists")
    total_nodes = sum(node_counts)
    total_edges = sum(edge_counts)
    node_flat, edge_u, edge_v, edge_w = _split(
        postings_data, (_INT, total_nodes), (_INT, total_edges),
        (_INT, total_edges), (_FLOAT, total_edges))

    node_postings: Dict[str, List[int]] = {}
    offset = 0
    for kw, count in zip(node_kws, node_counts):
        node_postings[kw] = node_flat[offset:offset + count].tolist()
        offset += count
    edge_postings: Dict[str, List] = {}
    offset = 0
    us, vs, ws = edge_u.tolist(), edge_v.tolist(), edge_w.tolist()
    for kw, count in zip(edge_kws, edge_counts):
        edge_postings[kw] = list(zip(us[offset:offset + count],
                                     vs[offset:offset + count],
                                     ws[offset:offset + count]))
        offset += count
    for kw, nodes in node_postings.items():
        if nodes and (min(nodes) < 0 or max(nodes) >= dbg.n):
            raise SnapshotIntegrityError(
                f"snapshot posting for {kw!r} references node "
                f"outside the bundled graph (n={dbg.n})")
    return CommunityIndex(
        dbg, NodeInvertedIndex(node_postings),
        EdgeInvertedIndex(edge_postings, radius), radius,
        build_seconds)


def snapshot_is_mappable(manifest: Dict[str, Any]) -> bool:
    """True when every section can be memory-mapped (no gzip)."""
    return not any(entry.get("gzip")
                   for entry in manifest["sections"].values())


def _map_section(path: Path, manifest: Dict[str, Any], name: str,
                 verify: bool):
    """One section as a read-only mapped buffer, checksum-checked.

    Returns an ``mmap.mmap`` (or ``b""`` for an empty section) whose
    pages every process mapping the same file shares through the page
    cache. The same failpoints as :func:`_read_section` apply: with
    fault injection armed, the buffer content is copied through
    :func:`repro.faults.corrupt` so chaos tests exercise the identical
    detection path (checksum mismatch -> typed integrity error), at
    the cost of the copy — production runs never take that branch.
    """
    entry = manifest["sections"].get(name)
    if entry is None:
        raise SnapshotFormatError(
            f"snapshot {manifest.get('id')} has no {name!r} section")
    if entry.get("gzip"):
        raise SnapshotFormatError(
            f"snapshot section {name!r} is gzip-compressed and "
            f"cannot be memory-mapped")
    section_path = path / entry["file"]
    if not section_path.is_file():
        raise SnapshotIntegrityError(
            f"snapshot section {section_path} is missing")
    if section_path.stat().st_size == 0:
        data = b""
    else:
        with open(section_path, "rb") as handle:
            data = _mmap.mmap(handle.fileno(), 0,
                              access=_mmap.ACCESS_READ)
    if faults.is_armed():
        data = faults.corrupt(f"snapshot.section.{name}",
                              faults.corrupt("snapshot.section",
                                             bytes(data)))
    if len(data) != entry["bytes"]:
        raise SnapshotIntegrityError(
            f"snapshot section {section_path} is truncated: "
            f"{len(data)} bytes, manifest says {entry['bytes']}")
    if verify:
        sha = hashlib.sha256(data).hexdigest()
        if sha != entry["sha256"]:
            raise SnapshotIntegrityError(
                f"snapshot section {section_path} failed its "
                f"checksum (sha256 {sha[:12]}..., manifest "
                f"{entry['sha256'][:12]}...)")
    return data


def _load_mmap(path: Path, manifest: Dict[str, Any], verify: bool
               ) -> Tuple[DatabaseGraph, Optional[CommunityIndex]]:
    """Open the snapshot as read-only views over mapped sections.

    The graph's forward CSR and both posting columns become
    ``np.frombuffer`` views of the mapped files — zero copies, shared
    page-cache pages across workers. ``nodes.json`` is *not* parsed
    here: its decode (plus per-node keyword/provenance
    materialization) happens lazily on first metadata access, which is
    what makes worker spawn O(ms). Checksums are still verified
    eagerly over the mapped bytes, so integrity detection is identical
    to copy mode.
    """
    graph_buf = _map_section(path, manifest, "graph", verify)
    nodes_buf = _map_section(path, manifest, "nodes", verify)
    n = manifest["counts"]["nodes"]
    m = manifest["counts"]["edges"]
    indptr, targets, weights = _split(
        graph_buf, (_INT, n + 1), (_INT, m), (_FLOAT, m))
    try:
        graph = CompiledGraph.from_csr_arrays(n, indptr, targets,
                                              weights)
    except GraphError as exc:
        raise SnapshotIntegrityError(
            f"snapshot graph section is inconsistent: {exc}") from exc

    payload_box: List[tuple] = []

    def nodes_payload() -> tuple:
        """Parse ``nodes.json`` once, shared by graph and indexes."""
        if not payload_box:
            try:
                nodes = json.loads(bytes(nodes_buf).decode("utf-8"))
                vocab = nodes["vocab"]
                node_kws = nodes["node_keywords"]
                labels = nodes["labels"]
                provenance = nodes["provenance"]
            except (ValueError, KeyError, TypeError) as exc:
                raise SnapshotIntegrityError(
                    f"snapshot nodes section is undecodable: "
                    f"{exc}") from exc
            if len(node_kws) != n or len(labels) != n \
                    or len(provenance) != n:
                raise SnapshotIntegrityError(
                    f"snapshot node sections disagree with the "
                    f"graph: {len(labels)} labels / {len(node_kws)} "
                    f"keyword lists / {len(provenance)} provenance "
                    f"entries for {n} nodes")
            vocab_size = len(vocab)
            if any(i < 0 or i >= vocab_size
                   for ids in node_kws for i in ids):
                raise SnapshotIntegrityError(
                    "snapshot nodes section references a keyword id "
                    "outside its vocabulary")
            payload_box.append((vocab, node_kws, labels, provenance))
        return payload_box[0]

    dbg: DatabaseGraph = LazyDatabaseGraph(graph, nodes_payload,
                                           decode_provenance)
    index: Optional[CommunityIndex] = None
    if manifest.get("has_index"):
        index_buf = _map_section(path, manifest, "index", verify)
        postings_buf = _map_section(path, manifest, "postings",
                                    verify)
        try:
            directory = json.loads(bytes(index_buf).decode("utf-8"))
            node_kw_ids = [int(i) for i in directory["node_keywords"]]
            edge_kw_ids = [int(i) for i in directory["edge_keywords"]]
            node_counts = [int(c) for c in directory["node_counts"]]
            edge_counts = [int(c) for c in directory["edge_counts"]]
            radius = float(directory["radius"])
            build_seconds = float(directory.get("build_seconds", 0.0))
        except (ValueError, KeyError, TypeError) as exc:
            raise SnapshotIntegrityError(
                f"snapshot index section is undecodable: "
                f"{exc}") from exc
        if len(node_counts) != len(node_kw_ids) \
                or len(edge_counts) != len(edge_kw_ids):
            raise SnapshotIntegrityError(
                "snapshot index directory counts do not align with "
                "its keyword lists")
        total_nodes = sum(node_counts)
        total_edges = sum(edge_counts)
        node_flat, edge_u, edge_v, edge_w = _split(
            postings_buf, (_INT, total_nodes), (_INT, total_edges),
            (_INT, total_edges), (_FLOAT, total_edges))
        if total_nodes and (node_flat.min() < 0
                            or node_flat.max() >= n):
            raise SnapshotIntegrityError(
                f"snapshot posting references node outside the "
                f"bundled graph (n={n})")

        def resolve_vocab() -> List[str]:
            return nodes_payload()[0]

        index = CommunityIndex(
            dbg,
            ArrayNodeInvertedIndex(node_kw_ids, node_counts,
                                   node_flat, resolve_vocab),
            ArrayEdgeInvertedIndex(edge_kw_ids, edge_counts, edge_u,
                                   edge_v, edge_w, radius,
                                   resolve_vocab),
            radius, build_seconds)
    return dbg, index


#: Accepted ``load_snapshot`` modes. ``"auto"`` maps when the
#: artifact allows it and silently falls back to copy otherwise.
SNAPSHOT_MODES = ("copy", "mmap", "auto")


def load_snapshot(path: PathLike, verify: bool = True,
                  mode: str = "copy") -> Snapshot:
    """Load the snapshot directory at ``path``.

    With ``verify`` (the default, and what every production path
    uses) each section's SHA-256 is recomputed against the manifest
    before decoding; a flipped byte anywhere raises
    :class:`~repro.exceptions.SnapshotIntegrityError`.

    ``mode`` selects the materialization: ``"copy"`` (default)
    deserializes every section into private Python objects, exactly
    as before; ``"mmap"`` maps the uncompressed section files and
    wraps read-only array views (raising
    :class:`~repro.exceptions.SnapshotFormatError` when a section is
    gzip-compressed); ``"auto"`` picks mmap when possible and falls
    back to copy. Query results are identical across modes.
    """
    if mode not in SNAPSHOT_MODES:
        raise ValueError(
            f"unknown snapshot mode {mode!r}; "
            f"expected one of {SNAPSHOT_MODES}")
    path = Path(path)
    faults.hit("snapshot.load")
    manifest = read_manifest(path)
    use_mmap = False
    if mode == "mmap":
        if not snapshot_is_mappable(manifest):
            raise SnapshotFormatError(
                f"snapshot {manifest['id']} has gzip-compressed "
                f"sections and cannot be memory-mapped; rebuild it "
                f"without --compress or load with mode='copy'")
        use_mmap = True
    elif mode == "auto":
        use_mmap = snapshot_is_mappable(manifest)
    if use_mmap:
        dbg, index = _load_mmap(path, manifest, verify)
        return Snapshot(path, manifest, dbg, index, mode="mmap")
    graph_data = _read_section(path, manifest, "graph", verify)
    nodes_data = _read_section(path, manifest, "nodes", verify)
    dbg = _decode_graph(manifest, graph_data, nodes_data)
    index: Optional[CommunityIndex] = None
    if manifest.get("has_index"):
        vocab = json.loads(nodes_data.decode("utf-8"))["vocab"]
        index_data = _read_section(path, manifest, "index", verify)
        postings_data = _read_section(path, manifest, "postings",
                                      verify)
        index = _decode_index(dbg, vocab, index_data, postings_data)
    return Snapshot(path, manifest, dbg, index, mode="copy")


def verify_snapshot(path: PathLike) -> Dict[str, Any]:
    """Check every section checksum and decode the snapshot.

    Returns the manifest on success; raises the matching
    :class:`~repro.exceptions.SnapshotError` subclass otherwise.
    """
    return load_snapshot(path, verify=True).manifest
