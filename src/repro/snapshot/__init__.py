"""Snapshot lifecycle: one immutable artifact from build to serve.

The package behind the repo's build-once/query-forever workflow
(paper Section VI builds the DBLP index once in 355 s; everything
after is queries). ``repro.snapshot`` turns that built state into a
content-addressed artifact that moves unchanged through the pipeline:

* :mod:`repro.snapshot.snapshot` — the on-disk format: write, load,
  verify, manifest;
* :mod:`repro.snapshot.store` — publishing: atomic rename into a
  store directory, ``latest`` pointer, pruning;
* :mod:`repro.snapshot.codec` — payload encodings shared with the
  legacy single-file formats.

The snapshot id doubles as the engine's cache-invalidation generation
(see :meth:`repro.engine.engine.QueryEngine.swap_snapshot`).
"""

from repro.snapshot.snapshot import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SNAPSHOT_MODES,
    Snapshot,
    load_snapshot,
    read_manifest,
    snapshot_is_mappable,
    verify_snapshot,
    write_snapshot,
)
from repro.snapshot.store import SnapshotStore, locate_snapshot

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SNAPSHOT_MODES",
    "Snapshot",
    "SnapshotStore",
    "load_snapshot",
    "locate_snapshot",
    "read_manifest",
    "snapshot_is_mappable",
    "verify_snapshot",
    "write_snapshot",
]
