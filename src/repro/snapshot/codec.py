"""Canonical payload encoding shared by snapshots and legacy files.

One module owns the translation between in-memory artifacts
(:class:`~repro.graph.database_graph.DatabaseGraph`,
:class:`~repro.text.inverted_index.CommunityIndex`) and their
JSON-able payload dictionaries. The legacy single-file formats
(:mod:`repro.graph.io`, :mod:`repro.text.persistence`) are thin shims
over these functions, and the snapshot reader/writer
(:mod:`repro.snapshot.snapshot`) reuses the same provenance and
posting encodings for its sections — so a graph round-trips
identically whichever container it travels in.

Notable here: :func:`index_payload` unions the node- and edge-index
keyword sets. The pre-snapshot writer iterated only
``node_index.keywords()`` when dumping ``edge_postings``, silently
dropping any keyword present solely in the edge index (possible when
an index is built over an explicit vocabulary containing words absent
from the graph).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.exceptions import QueryError
from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph, Provenance
from repro.text.inverted_index import (
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
)


def encode_pk(pk: object) -> object:
    """A primary key as JSON-able data (tuples become lists)."""
    if isinstance(pk, tuple):
        return [encode_pk(part) for part in pk]
    return pk


def decode_pk(pk: object) -> object:
    """Restore composite-key tuples JSON turned into lists."""
    if isinstance(pk, list):
        return tuple(decode_pk(part) for part in pk)
    return pk


def encode_provenance(entry: Optional[Provenance]) -> Optional[List]:
    """One node's ``(table, pk)`` provenance as JSON-able data."""
    if entry is None:
        return None
    return [entry[0], encode_pk(entry[1])]


def decode_provenance(entry: Optional[List]) -> Optional[Provenance]:
    """Inverse of :func:`encode_provenance`."""
    if entry is None:
        return None
    return (entry[0], decode_pk(entry[1]))


# ----------------------------------------------------------------------
# database graph <-> payload
# ----------------------------------------------------------------------
def graph_payload(dbg: DatabaseGraph) -> Dict[str, Any]:
    """``dbg`` as the legacy JSON payload (sans format header)."""
    return {
        "n": dbg.n,
        "edges": [[u, v, w] for u, v, w in dbg.graph.edges()],
        "keywords": [sorted(dbg.keywords_of(u)) for u in range(dbg.n)],
        "labels": [dbg.label_of(u) for u in range(dbg.n)],
        "provenance": [encode_provenance(dbg.provenance_of(u))
                       for u in range(dbg.n)],
    }


def graph_from_payload(payload: Dict[str, Any]) -> DatabaseGraph:
    """Inverse of :func:`graph_payload`."""
    graph = CompiledGraph.from_edges(
        payload["n"],
        [(u, v, w) for u, v, w in payload["edges"]])
    return DatabaseGraph(
        graph,
        [set(kws) for kws in payload["keywords"]],
        payload["labels"],
        [decode_provenance(entry) for entry in payload["provenance"]],
    )


# ----------------------------------------------------------------------
# community index <-> payload
# ----------------------------------------------------------------------
def index_payload(index: CommunityIndex) -> Dict[str, Any]:
    """``index`` postings as the legacy JSON payload.

    Both posting maps are dumped over the *union* of the node- and
    edge-index keyword sets, so a keyword present in only one of the
    two survives the round trip.
    """
    keywords = sorted(set(index.node_index.keywords())
                      | set(index.edge_index.keywords()))
    return {
        "radius": index.radius,
        "build_seconds": index.build_seconds,
        "node_postings": {
            kw: index.node_index.nodes(kw) for kw in keywords},
        "edge_postings": {
            kw: [[u, v, w] for u, v, w in index.edge_index.edges(kw)]
            for kw in keywords},
    }


def index_from_payload(payload: Dict[str, Any],
                       dbg: DatabaseGraph) -> CommunityIndex:
    """Inverse of :func:`index_payload`, re-attached to ``dbg``.

    A cheap sanity check rejects node postings outside the graph's
    node range — the symptom of pairing an index file with the wrong
    graph — plus NaN and negative edge weights, which no valid build
    can produce but a hand-edited or damaged file can. Each posting
    is validated in the same pass that converts it, rather than
    re-scanning every list with ``min``/``max`` afterwards.
    """
    n = dbg.n
    node_postings: Dict[str, List[int]] = {}
    for kw, nodes in payload["node_postings"].items():
        converted = []
        for u in nodes:
            u = int(u)
            if not 0 <= u < n:
                raise QueryError(
                    f"index posting for {kw!r} references node {u} "
                    f"outside the supplied graph (n={n}); wrong "
                    f"graph?")
            converted.append(u)
        node_postings[kw] = converted
    edge_postings: Dict[str, List] = {}
    for kw, edges in payload["edge_postings"].items():
        converted_edges = []
        for u, v, w in edges:
            w = float(w)
            if w != w:  # NaN
                raise QueryError(
                    f"index edge posting for {kw!r} carries a NaN "
                    f"weight")
            if w < 0:
                raise QueryError(
                    f"index edge posting for {kw!r} carries a "
                    f"negative weight ({w})")
            converted_edges.append((int(u), int(v), w))
        edge_postings[kw] = converted_edges
    radius = float(payload["radius"])
    return CommunityIndex(
        dbg,
        NodeInvertedIndex(node_postings),
        EdgeInvertedIndex(edge_postings, radius),
        radius,
        float(payload.get("build_seconds", 0.0)),
    )
