"""Snapshot store: atomic publish, ``latest`` resolution, pruning.

A :class:`SnapshotStore` is a directory of published snapshots, one
subdirectory per snapshot id, plus a ``LATEST`` pointer file::

    store/
      LATEST               one line: the id of the newest snapshot
      sn-1a2b3c4d5e6f/     a snapshot directory (see repro.snapshot)
      sn-aabbccddeeff/

Publishing is crash-safe: the snapshot is written to a temporary
sibling directory and moved into place with one ``os.replace``-style
rename, then ``LATEST`` is repointed the same way. A reader never
observes a half-written snapshot — it either sees the old ``LATEST``
or the new one.

Because snapshot ids are content-derived, publishing identical content
twice is idempotent: the second publish sees the id already present
and only repoints ``LATEST``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import SnapshotNotFoundError
from repro.graph.database_graph import DatabaseGraph
from repro.snapshot.snapshot import (
    MANIFEST_NAME,
    Snapshot,
    load_snapshot,
    read_manifest,
    write_snapshot,
)
from repro.text.inverted_index import CommunityIndex

PathLike = Union[str, Path]

_LATEST = "LATEST"


class SnapshotStore:
    """A directory of immutable snapshots with a ``latest`` pointer."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(self, dbg: DatabaseGraph,
                index: Optional[CommunityIndex] = None,
                provenance: Optional[Dict[str, Any]] = None,
                compress: bool = False) -> Snapshot:
        """Write a snapshot into the store and repoint ``latest``.

        The artifact is staged in a temporary directory inside the
        store (same filesystem, so the final rename is atomic) and
        moved to ``<root>/<id>`` only once fully written. Republishing
        content already in the store just repoints ``latest``.
        """
        staging = Path(tempfile.mkdtemp(prefix=".staging-",
                                        dir=str(self.root)))
        try:
            snapshot = write_snapshot(staging, dbg, index=index,
                                      provenance=provenance,
                                      compress=compress)
            final = self.root / snapshot.id
            if final.exists():
                # Content-identical snapshot already published.
                shutil.rmtree(staging)
            else:
                os.replace(staging, final)
            snapshot.path = final
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._point_latest(snapshot.id)
        return snapshot

    def _point_latest(self, snapshot_id: str) -> None:
        """Atomically repoint the ``LATEST`` file at ``snapshot_id``."""
        fd, tmp = tempfile.mkstemp(prefix=".latest-",
                                   dir=str(self.root))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(snapshot_id + "\n")
            os.replace(tmp, self.root / _LATEST)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # resolve / load
    # ------------------------------------------------------------------
    def latest_id(self) -> str:
        """The id ``latest`` points at.

        Raises :class:`~repro.exceptions.SnapshotNotFoundError` when
        the store has never published.
        """
        pointer = self.root / _LATEST
        if not pointer.is_file():
            raise SnapshotNotFoundError(
                f"store {self.root} has no published snapshot")
        snapshot_id = pointer.read_text(encoding="utf-8").strip()
        if not snapshot_id:
            raise SnapshotNotFoundError(
                f"store {self.root} has an empty {_LATEST} pointer")
        return snapshot_id

    def resolve(self, ref: str = "latest") -> Path:
        """The directory of snapshot ``ref`` (an id, or ``latest``)."""
        snapshot_id = self.latest_id() if ref == "latest" else ref
        path = self.root / snapshot_id
        if not (path / MANIFEST_NAME).is_file():
            raise SnapshotNotFoundError(
                f"store {self.root} has no snapshot {snapshot_id!r}")
        return path

    def load(self, ref: str = "latest",
             verify: bool = True) -> Snapshot:
        """Load snapshot ``ref`` (checksum-verified by default)."""
        return load_snapshot(self.resolve(ref), verify=verify)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def list(self) -> List[Dict[str, Any]]:
        """Manifests of every published snapshot, newest first.

        Ordering is by ``created_at`` (build time) then id; the entry
        currently pointed at by ``latest`` carries ``"latest": True``.
        """
        try:
            latest = self.latest_id()
        except SnapshotNotFoundError:
            latest = None
        manifests = []
        for child in self.root.iterdir():
            if not child.is_dir() or child.name.startswith("."):
                continue
            if not (child / MANIFEST_NAME).is_file():
                continue
            manifest = dict(read_manifest(child))
            manifest["latest"] = manifest["id"] == latest
            manifests.append(manifest)
        manifests.sort(key=lambda mf: (mf["created_at"], mf["id"]),
                       reverse=True)
        return manifests

    def prune(self, keep: int = 2) -> List[str]:
        """Delete all but the ``keep`` newest snapshots.

        The ``latest`` snapshot is never deleted regardless of age.
        Returns the ids removed.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        removed: List[str] = []
        for manifest in self.list()[keep:]:
            if manifest["latest"]:
                continue
            shutil.rmtree(self.root / manifest["id"])
            removed.append(manifest["id"])
        return removed

    def __repr__(self) -> str:
        return f"SnapshotStore(root={str(self.root)!r})"


def locate_snapshot(path: PathLike) -> Path:
    """Resolve ``path`` to a concrete snapshot directory.

    Accepts a snapshot directory itself, or a store root — in which
    case the store's ``latest`` snapshot is resolved. This is what CLI
    commands use so ``--snapshot`` works with either layout.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).is_file():
        return path
    if (path / _LATEST).is_file():
        return SnapshotStore(path).resolve("latest")
    raise SnapshotNotFoundError(
        f"{path} is neither a snapshot directory nor a snapshot store")
