"""Snapshot store: atomic publish, ``latest`` resolution, pruning.

A :class:`SnapshotStore` is a directory of published snapshots, one
subdirectory per snapshot id, plus a ``LATEST`` pointer file::

    store/
      LATEST               one line: the id of the newest snapshot
      sn-1a2b3c4d5e6f/     a snapshot directory (see repro.snapshot)
      sn-aabbccddeeff/

Publishing is crash-safe: the snapshot is written to a temporary
sibling directory and moved into place with one ``os.replace``-style
rename, then ``LATEST`` is repointed the same way. A reader never
observes a half-written snapshot — it either sees the old ``LATEST``
or the new one.

Because snapshot ids are content-derived, publishing identical content
twice is idempotent: the second publish sees the id already present
and only repoints ``LATEST``.

**Cross-box ingest.** :meth:`SnapshotStore.ingest` accepts a snapshot
manifest produced elsewhere and returns a :class:`SnapshotIngest`
that receives the section payloads one at a time (the wire form: the
stored bytes, gzip frames included), verifying each against the
manifest's length and SHA-256 before it touches the store. The
transfer stages in a hidden sibling directory and only an explicit
:meth:`SnapshotIngest.commit` renames it into place — a torn or
corrupted transfer never becomes visible, which is what lets a router
push shard snapshots to backends with no shared filesystem.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import faults
from repro.exceptions import (
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
)
from repro.graph.database_graph import DatabaseGraph
from repro.snapshot.snapshot import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    Snapshot,
    load_snapshot,
    read_manifest,
    write_snapshot,
)
from repro.text.inverted_index import CommunityIndex

PathLike = Union[str, Path]

_LATEST = "LATEST"


class SnapshotStore:
    """A directory of immutable snapshots with a ``latest`` pointer."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(self, dbg: DatabaseGraph,
                index: Optional[CommunityIndex] = None,
                provenance: Optional[Dict[str, Any]] = None,
                compress: bool = False) -> Snapshot:
        """Write a snapshot into the store and repoint ``latest``.

        The artifact is staged in a temporary directory inside the
        store (same filesystem, so the final rename is atomic) and
        moved to ``<root>/<id>`` only once fully written. Republishing
        content already in the store just repoints ``latest``.
        """
        staging = Path(tempfile.mkdtemp(prefix=".staging-",
                                        dir=str(self.root)))
        try:
            snapshot = write_snapshot(staging, dbg, index=index,
                                      provenance=provenance,
                                      compress=compress)
            final = self.root / snapshot.id
            if final.exists():
                # Content-identical snapshot already published.
                shutil.rmtree(staging)
            else:
                os.replace(staging, final)
            snapshot.path = final
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._point_latest(snapshot.id)
        return snapshot

    def _point_latest(self, snapshot_id: str) -> None:
        """Atomically repoint the ``LATEST`` file at ``snapshot_id``."""
        fd, tmp = tempfile.mkstemp(prefix=".latest-",
                                   dir=str(self.root))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(snapshot_id + "\n")
            os.replace(tmp, self.root / _LATEST)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # cross-box ingest
    # ------------------------------------------------------------------
    def ingest(self, manifest: Dict[str, Any]) -> "SnapshotIngest":
        """Begin receiving a snapshot built elsewhere.

        ``manifest`` is the remote snapshot's ``manifest.json`` as a
        dict; its format, version, and content-derived id are
        validated up front (the id is recomputed from the section
        checksums, so a tampered manifest is rejected before any
        bytes move). Returns a :class:`SnapshotIngest` to feed the
        section payloads into.
        """
        return SnapshotIngest(self, manifest)

    # ------------------------------------------------------------------
    # resolve / load
    # ------------------------------------------------------------------
    def latest_id(self) -> str:
        """The id ``latest`` points at.

        Raises :class:`~repro.exceptions.SnapshotNotFoundError` when
        the store has never published.
        """
        pointer = self.root / _LATEST
        if not pointer.is_file():
            raise SnapshotNotFoundError(
                f"store {self.root} has no published snapshot")
        snapshot_id = pointer.read_text(encoding="utf-8").strip()
        if not snapshot_id:
            raise SnapshotNotFoundError(
                f"store {self.root} has an empty {_LATEST} pointer")
        return snapshot_id

    def resolve(self, ref: str = "latest") -> Path:
        """The directory of snapshot ``ref`` (an id, or ``latest``)."""
        snapshot_id = self.latest_id() if ref == "latest" else ref
        path = self.root / snapshot_id
        if not (path / MANIFEST_NAME).is_file():
            raise SnapshotNotFoundError(
                f"store {self.root} has no snapshot {snapshot_id!r}")
        return path

    def load(self, ref: str = "latest",
             verify: bool = True) -> Snapshot:
        """Load snapshot ``ref`` (checksum-verified by default)."""
        return load_snapshot(self.resolve(ref), verify=verify)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def list(self) -> List[Dict[str, Any]]:
        """Manifests of every published snapshot, newest first.

        Ordering is by ``created_at`` (build time) then id; the entry
        currently pointed at by ``latest`` carries ``"latest": True``.
        """
        try:
            latest = self.latest_id()
        except SnapshotNotFoundError:
            latest = None
        manifests = []
        for child in self.root.iterdir():
            if not child.is_dir() or child.name.startswith("."):
                continue
            if not (child / MANIFEST_NAME).is_file():
                continue
            manifest = dict(read_manifest(child))
            manifest["latest"] = manifest["id"] == latest
            manifests.append(manifest)
        manifests.sort(key=lambda mf: (mf["created_at"], mf["id"]),
                       reverse=True)
        return manifests

    def prune(self, keep: int = 2,
              wal: Optional[PathLike] = None) -> List[str]:
        """Delete all but the ``keep`` newest snapshots.

        The ``latest`` snapshot is never deleted regardless of age.
        With ``wal`` given (the path of a delta write-ahead log), the
        snapshots the log still depends on — its replay base and the
        base of every pending delta — are also kept regardless of
        age: deleting one would turn the next ``serve --wal`` restart
        into an unrecoverable error. Returns the ids removed.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        protected: set = set()
        if wal is not None:
            from repro.wal.log import protected_snapshots
            protected = protected_snapshots(wal)
        removed: List[str] = []
        for manifest in self.list()[keep:]:
            if manifest["latest"] or manifest["id"] in protected:
                continue
            shutil.rmtree(self.root / manifest["id"])
            removed.append(manifest["id"])
        return removed

    def __repr__(self) -> str:
        return f"SnapshotStore(root={str(self.root)!r})"


class SnapshotIngest:
    """One in-flight snapshot transfer into a :class:`SnapshotStore`.

    Sections arrive in their *stored* (wire) form — gzip frames when
    the manifest says so — and are verified section by section:
    decompress, check the byte length, check the SHA-256 against the
    manifest. Everything stages under a hidden directory inside the
    store; :meth:`commit` atomically renames it into place and
    repoints ``LATEST``, :meth:`abort` discards it. A crashed or
    failed transfer is invisible to readers either way.
    """

    def __init__(self, store: SnapshotStore,
                 manifest: Dict[str, Any]) -> None:
        if manifest.get("format") != FORMAT_NAME:
            raise SnapshotFormatError(
                f"ingest manifest is not a {FORMAT_NAME} manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise SnapshotFormatError(
                f"ingest manifest has unsupported version "
                f"{manifest.get('version')!r} "
                f"(expected {FORMAT_VERSION})")
        sections = manifest.get("sections") or {}
        digest = hashlib.sha256()
        digest.update(f"{FORMAT_NAME}:{FORMAT_VERSION}".encode())
        for name in sorted(sections):
            digest.update(name.encode())
            digest.update(sections[name]["sha256"].encode())
        derived = f"sn-{digest.hexdigest()[:12]}"
        if manifest.get("id") != derived:
            raise SnapshotFormatError(
                f"ingest manifest id {manifest.get('id')!r} does not "
                f"match its section checksums ({derived})")
        self.store = store
        self.manifest = dict(manifest)
        self.snapshot_id: str = manifest["id"]
        self._sections: Dict[str, Dict[str, Any]] = dict(sections)
        self._received: Dict[str, bool] = {}
        self._staging: Optional[Path] = Path(tempfile.mkdtemp(
            prefix=".ingest-", dir=str(store.root)))

    @property
    def sections_needed(self) -> List[str]:
        """Manifest sections not yet received, in manifest order."""
        return [name for name in sorted(self._sections)
                if name not in self._received]

    def write_section(self, name: str, stored: bytes) -> None:
        """Receive one section's wire bytes, verify, and stage it.

        ``stored`` is the on-disk form (compressed when the manifest
        flags it). Verification failures raise
        :class:`~repro.exceptions.SnapshotIntegrityError` and leave
        the ingest usable — the caller may re-send the section.
        """
        if self._staging is None:
            raise SnapshotIntegrityError(
                f"ingest of {self.snapshot_id} is already closed")
        entry = self._sections.get(name)
        if entry is None:
            raise SnapshotFormatError(
                f"snapshot {self.snapshot_id} has no {name!r} "
                f"section")
        # Failpoint: damage the payload in flight (a torn proxy, a
        # bad NIC) so the checksum below is what catches it — the
        # exact cross-box detection path.
        wire = faults.corrupt(f"snapshot.transfer.{name}",
                              faults.corrupt("snapshot.transfer",
                                             stored))
        raw = wire
        if entry.get("gzip"):
            try:
                raw = gzip.decompress(wire)
            except (OSError, EOFError, ValueError) as exc:
                raise SnapshotIntegrityError(
                    f"transferred section {name!r} of "
                    f"{self.snapshot_id} is corrupt (gzip: {exc})"
                ) from exc
        if len(raw) != entry["bytes"]:
            raise SnapshotIntegrityError(
                f"transferred section {name!r} of {self.snapshot_id} "
                f"is truncated: {len(raw)} bytes, manifest says "
                f"{entry['bytes']}")
        sha = hashlib.sha256(raw).hexdigest()
        if sha != entry["sha256"]:
            raise SnapshotIntegrityError(
                f"transferred section {name!r} of {self.snapshot_id} "
                f"failed its checksum (sha256 {sha[:12]}..., "
                f"manifest {entry['sha256'][:12]}...)")
        # Stage the stored (wire) form, so the staged file matches
        # the original artifact byte for byte.
        (self._staging / entry["file"]).write_bytes(wire)
        self._received[name] = True

    def commit(self) -> Path:
        """Publish the fully received snapshot atomically.

        Requires every manifest section; writes ``manifest.json``
        last (a reader recognizes a snapshot by its manifest, so the
        staging directory is never mistaken for one), renames into
        ``<root>/<id>``, and repoints ``LATEST``. Returns the final
        snapshot directory.
        """
        if self._staging is None:
            raise SnapshotIntegrityError(
                f"ingest of {self.snapshot_id} is already closed")
        missing = self.sections_needed
        if missing:
            raise SnapshotIntegrityError(
                f"ingest of {self.snapshot_id} is missing sections: "
                f"{', '.join(missing)}")
        (self._staging / MANIFEST_NAME).write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        final = self.store.root / self.snapshot_id
        if final.exists():
            # Content-identical snapshot already in the store.
            shutil.rmtree(self._staging)
        else:
            os.replace(self._staging, final)
        self._staging = None
        self.store._point_latest(self.snapshot_id)
        return final

    def abort(self) -> None:
        """Discard the staged transfer (idempotent)."""
        if self._staging is not None:
            shutil.rmtree(self._staging, ignore_errors=True)
            self._staging = None


def locate_snapshot(path: PathLike) -> Path:
    """Resolve ``path`` to a concrete snapshot directory.

    Accepts a snapshot directory itself, or a store root — in which
    case the store's ``latest`` snapshot is resolved. This is what CLI
    commands use so ``--snapshot`` works with either layout.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).is_file():
        return path
    if (path / _LATEST).is_file():
        return SnapshotStore(path).resolve("latest")
    raise SnapshotNotFoundError(
        f"{path} is neither a snapshot directory nor a snapshot store")
