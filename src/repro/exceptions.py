"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Subsystems refine it:

* graph construction and lookups raise :class:`GraphError`,
* the relational engine raises :class:`SchemaError` /
  :class:`IntegrityError`,
* query-time misuse (unknown keywords, bad parameters) raises
  :class:`QueryError`,
* the snapshot lifecycle (:mod:`repro.snapshot`) raises
  :class:`SnapshotError` subclasses distinguishing "not a snapshot"
  (:class:`SnapshotFormatError` / :class:`SnapshotVersionError`),
  "snapshot is damaged" (:class:`SnapshotIntegrityError`) and
  "snapshot does not exist" (:class:`SnapshotNotFoundError`),
* the HTTP service layer raises :class:`ServiceError` subclasses
  (see :mod:`repro.service.errors`), each carrying the HTTP status
  the server maps it to,
* the process worker pool (:mod:`repro.parallel`) raises
  :class:`WorkerError` for a task that failed inside a worker,
  :class:`WorkerCrashedError` when the worker process died outright,
  and :class:`WorkerTimeoutError` when the watchdog declared a worker
  hung (its per-request lease expired) and killed it,
* the failpoint subsystem (:mod:`repro.faults`) raises
  :class:`FaultInjectedError` when an armed ``raise`` failpoint fires
  (never in production — failpoints are inert unless armed),
* the write-ahead log (:mod:`repro.wal`) raises :class:`WalError`
  for misuse (an engine whose snapshot the log does not describe)
  and :class:`WalCorruptionError` for a log whose *middle* fails its
  frame checks — a torn tail is repaired silently, damage before
  intact records is not,
* delta ingestion rejects malformed :class:`~repro.text.maintenance.
  GraphDelta` payloads with :class:`DeltaValidationError` — a
  :class:`QueryError` subclass, so the HTTP boundary maps it to 400
  like any other bad request.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for graph construction and lookup errors."""


class NodeNotFoundError(GraphError):
    """A node id is outside the graph's node range."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} not in graph with {n} nodes")
        self.node = node
        self.n = n


class EdgeError(GraphError):
    """An edge is malformed (bad endpoints or a negative weight)."""


class SchemaError(ReproError):
    """A relational schema is malformed or used inconsistently."""


class IntegrityError(ReproError):
    """A row violates a primary-key or foreign-key constraint."""


class QueryError(ReproError):
    """A community query is malformed (bad keyword list, radius, or k)."""


class DeltaValidationError(QueryError):
    """A :class:`~repro.text.maintenance.GraphDelta` payload failed
    boundary validation: duplicate/out-of-sequence node ids, edges
    referencing unknown endpoints, NaN/infinite/negative weights, or
    plain type errors. Raised *before* anything is logged or applied;
    the service maps it to HTTP 400."""


class WalError(ReproError):
    """Base class for write-ahead-log failures (:mod:`repro.wal`)."""


class WalCorruptionError(WalError):
    """The WAL is damaged *before* its last intact record.

    A torn tail (an interrupted final append) is expected after a
    crash and is silently truncated on open; a CRC/frame/LSN failure
    with valid records after it means lost acknowledged writes, which
    must never be repaired silently."""


class SnapshotError(ReproError):
    """Base class for snapshot read/write/verify failures."""


class SnapshotFormatError(SnapshotError):
    """A file/directory is not a repro snapshot (or is malformed)."""


class SnapshotVersionError(SnapshotFormatError):
    """A snapshot's format version is not supported by this build."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot section is damaged: checksum mismatch, truncated
    payload, or undecodable content."""


class SnapshotNotFoundError(SnapshotError):
    """No snapshot exists at the given path / id / store reference."""


class ServiceError(ReproError):
    """Base class for service-layer failures.

    ``status`` is the HTTP status code the server responds with when
    this error escapes a handler; subclasses override it.
    ``retry_after`` is the server's ``Retry-After`` hint in seconds —
    the client fills it from the response header (``None`` when the
    server sent none or the error never crossed the wire).
    """

    status: int = 500
    retry_after: "float | None" = None


class WorkerError(ReproError):
    """A pool task raised inside its worker process.

    Carries the worker-side ``ExceptionType: message`` rendering; the
    worker itself survived and keeps serving.
    """


class WorkerCrashedError(WorkerError):
    """The worker process died (crash, kill, OOM) with tasks pending.

    The pool fails every future assigned to the dead worker with this
    error and respawns a replacement from the same snapshot."""


class WorkerTimeoutError(WorkerError):
    """A worker blew its per-request lease deadline and was killed.

    The watchdog detected a hung worker (stuck enumeration, deadlock,
    livelock), escalated ``terminate()`` to ``kill()``, respawned the
    slot, and failed every future leased to it with this error. The
    service maps it to HTTP 503 — the request *may* have been
    side-effect free but never answered."""


class FaultInjectedError(ReproError):
    """An armed ``raise`` failpoint fired (see :mod:`repro.faults`).

    Only ever raised when fault injection was explicitly armed via
    the ``REPRO_FAILPOINTS`` environment variable or the
    :func:`repro.faults.activate` API — production paths never see
    this error."""
