"""Immutable compiled graph in compressed-sparse-row (CSR) form.

The paper's algorithms are dominated by bounded Dijkstra scans in both
edge directions (``Neighbor()`` walks edges backwards, ``GetCommunity()``
walks both ways), so the compiled form keeps two CSR adjacencies — one
for out-edges and one for in-edges — built once from the same edge set.

The adjacency arrays are plain Python lists in the default (copy-mode)
build: the hot loop (heap-based Dijkstra) indexes single elements,
where list indexing is several times faster than numpy scalar
extraction. numpy is used only transiently for the ``O(m log m)`` sort
during construction.

The mmap snapshot path is the exception: :meth:`CompiledGraph.from_csr_arrays`
wraps *read-only numpy views* over a memory-mapped section directly —
no ``tolist()``, no re-packing — so every worker process shares one
physical copy of the adjacency through the page cache. The two
representations are interchangeable behind the same indexing protocol;
code that hands values out of the arrays converts them to Python
scalars at the boundary (``int()``/``float()``), so downstream results
are byte-identical whichever backing store produced them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EdgeError, NodeNotFoundError

Edge = Tuple[int, int, float]


class CSRAdjacency:
    """One direction of adjacency: ``indptr``, ``targets``, ``weights``.

    For node ``u``, its neighbors are
    ``targets[indptr[u]:indptr[u + 1]]`` with matching ``weights``.
    The three columns are either plain Python lists (copy mode) or
    read-only int64/float64 numpy views (mmap mode); both support the
    same single-element indexing the Dijkstra kernels rely on.
    """

    __slots__ = ("indptr", "targets", "weights")

    def __init__(self, indptr: Sequence[int], targets: Sequence[int],
                 weights: Sequence[float]) -> None:
        self.indptr = indptr
        self.targets = targets
        self.weights = weights

    def neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(neighbor, weight)`` pairs of node ``u``."""
        start, stop = self.indptr[u], self.indptr[u + 1]
        targets, weights = self.targets, self.weights
        for idx in range(start, stop):
            yield int(targets[idx]), float(weights[idx])

    def degree(self, u: int) -> int:
        """Number of edges leaving ``u`` in this direction."""
        return int(self.indptr[u + 1] - self.indptr[u])


def _sorted_csr_columns(n: int, src: np.ndarray, dst: np.ndarray,
                        wgt: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort edges by (source, target) and derive the indptr column."""
    order = np.lexsort((dst, src))
    dst, wgt = dst[order], wgt[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst, wgt


def _build_adjacency(n: int, src: np.ndarray, dst: np.ndarray,
                     wgt: np.ndarray) -> CSRAdjacency:
    """Sort edges by source and pack them into CSR lists."""
    indptr, dst, wgt = _sorted_csr_columns(n, src, dst, wgt)
    return CSRAdjacency(indptr.tolist(), dst.tolist(), wgt.tolist())


def _build_adjacency_arrays(n: int, src: np.ndarray, dst: np.ndarray,
                            wgt: np.ndarray) -> CSRAdjacency:
    """Like :func:`_build_adjacency`, but keep (read-only) arrays."""
    indptr, dst, wgt = _sorted_csr_columns(n, src, dst, wgt)
    for arr in (indptr, dst, wgt):
        arr.setflags(write=False)
    return CSRAdjacency(indptr, dst, wgt)


class CompiledGraph:
    """Frozen weighted digraph with forward and reverse CSR adjacency.

    Build one with :meth:`from_edges` or via
    :meth:`repro.graph.digraph.DiGraph.compile`. Parallel ``(u, v)``
    edges are collapsed to the minimum weight.
    """

    __slots__ = ("n", "m", "forward", "reverse", "_in_degree")

    def __init__(self, n: int, m: int, forward: CSRAdjacency,
                 reverse: CSRAdjacency) -> None:
        self.n = n
        self.m = m
        self.forward = forward
        self.reverse = reverse
        # Derived lazily on first in_degree() call: snapshot loads (the
        # worker-spawn path) never need it, and BANKS node scoring —
        # the one consumer — touches every node anyway.
        self._in_degree: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Sequence[Edge]) -> "CompiledGraph":
        """Compile ``(u, v, w)`` triples into a :class:`CompiledGraph`."""
        if n < 0:
            raise EdgeError(f"node count must be non-negative, got {n}")
        if not edges:
            empty = CSRAdjacency([0] * (n + 1), [], [])
            return cls(n, 0, empty, empty)

        src = np.fromiter((e[0] for e in edges), dtype=np.int64,
                          count=len(edges))
        dst = np.fromiter((e[1] for e in edges), dtype=np.int64,
                          count=len(edges))
        wgt = np.fromiter((e[2] for e in edges), dtype=np.float64,
                          count=len(edges))
        if len(src) and (src.min() < 0 or src.max() >= n):
            bad = int(src.min() if src.min() < 0 else src.max())
            raise NodeNotFoundError(bad, n)
        if len(dst) and (dst.min() < 0 or dst.max() >= n):
            bad = int(dst.min() if dst.min() < 0 else dst.max())
            raise NodeNotFoundError(bad, n)
        if len(wgt) and wgt.min() < 0:
            raise EdgeError("negative edge weight in edge list")

        # Collapse parallel edges, keeping the lightest one.
        order = np.lexsort((wgt, dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        keep = np.ones(len(src), dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst, wgt = src[keep], dst[keep], wgt[keep]

        forward = _build_adjacency(n, src, dst, wgt)
        reverse = _build_adjacency(n, dst, src, wgt)
        return cls(n, len(src), forward, reverse)

    @staticmethod
    def _validate_csr(n: int, indptr_arr: np.ndarray, dst: np.ndarray,
                      wgt: np.ndarray) -> int:
        """Shared forward-CSR validation; returns the edge count."""
        if n < 0:
            raise EdgeError(f"node count must be non-negative, got {n}")
        if len(indptr_arr) != n + 1 or indptr_arr[0] != 0:
            raise EdgeError(
                f"indptr must have {n + 1} entries starting at 0")
        if np.any(np.diff(indptr_arr) < 0):
            raise EdgeError("indptr must be non-decreasing")
        m = int(indptr_arr[-1])
        if len(dst) != m or len(wgt) != m:
            raise EdgeError(
                f"targets/weights must hold {m} entries "
                f"(got {len(dst)}/{len(wgt)})")
        if m and (dst.min() < 0 or dst.max() >= n):
            bad = int(dst.min() if dst.min() < 0 else dst.max())
            raise NodeNotFoundError(bad, n)
        if m and not wgt.min() >= 0:  # catches negatives *and* NaN
            raise EdgeError("negative or NaN edge weight in CSR arrays")
        return m

    @classmethod
    def from_csr(cls, n: int, indptr: Sequence[int],
                 targets: Sequence[int],
                 weights: Sequence[float]) -> "CompiledGraph":
        """Rebuild from a forward-CSR dump (already sorted, deduped).

        This is the copy-mode snapshot load path: the stored arrays
        *are* the compiled forward adjacency, so only the reverse
        adjacency is recomputed (one vectorized pass) — no per-edge
        Python tuples, no re-sorting, no parallel-edge collapsing.
        """
        indptr_arr = np.asarray(indptr, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        wgt = np.asarray(weights, dtype=np.float64)
        m = cls._validate_csr(n, indptr_arr, dst, wgt)
        forward = CSRAdjacency(indptr_arr.tolist(), dst.tolist(),
                               wgt.tolist())
        src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(indptr_arr))
        reverse = _build_adjacency(n, dst, src, wgt)
        return cls(n, m, forward, reverse)

    @classmethod
    def from_csr_arrays(cls, n: int, indptr: np.ndarray,
                        targets: np.ndarray,
                        weights: np.ndarray) -> "CompiledGraph":
        """Wrap forward-CSR *array views* without copying them.

        The mmap snapshot load path: ``indptr``/``targets``/``weights``
        are read-only little-endian views over the mapped ``graph.bin``
        section and become the forward adjacency as-is, so the hot
        arrays stay backed by the shared page cache. Only the reverse
        adjacency is derived (one vectorized pass into private,
        read-only arrays — it has a different sort order, so it cannot
        be a view of the section).
        """
        indptr_arr = np.asarray(indptr, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        wgt = np.asarray(weights, dtype=np.float64)
        m = cls._validate_csr(n, indptr_arr, dst, wgt)
        forward = CSRAdjacency(indptr_arr, dst, wgt)
        src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(indptr_arr))
        reverse = _build_adjacency_arrays(n, dst, src, wgt)
        return cls(n, m, forward, reverse)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        self._check_node(u)
        return self.forward.degree(u)

    def in_degree(self, u: int) -> int:
        """In-degree of ``u`` (``N_in`` in the BANKS weight formula)."""
        self._check_node(u)
        degrees = self._in_degree
        if degrees is None:
            indptr = np.asarray(self.reverse.indptr, dtype=np.int64)
            degrees = self._in_degree = np.diff(indptr).tolist()
        return degrees[u]

    def out_edges(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(v, w)`` for each edge ``u -> v``."""
        self._check_node(u)
        return self.forward.neighbors(u)

    def in_edges(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(v, w)`` for each edge ``v -> u``."""
        self._check_node(u)
        return self.reverse.neighbors(u)

    def edges(self) -> Iterator[Edge]:
        """Iterate all ``(u, v, w)`` triples in CSR order."""
        indptr = self.forward.indptr
        targets = self.forward.targets
        weights = self.forward.weights
        for u in range(self.n):
            for idx in range(indptr[u], indptr[u + 1]):
                yield u, int(targets[idx]), float(weights[idx])

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; raises :class:`EdgeError` if absent."""
        self._check_node(u)
        self._check_node(v)
        forward = self.forward
        targets = forward.targets
        for idx in range(forward.indptr[u], forward.indptr[u + 1]):
            if targets[idx] == v:
                return float(forward.weights[idx])
        raise EdgeError(f"no edge ({u}, {v})")

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        forward = self.forward
        targets = forward.targets
        return any(targets[idx] == v
                   for idx in range(forward.indptr[u],
                                    forward.indptr[u + 1]))

    def induced_edges(self, nodes: Sequence[int]) -> List[Edge]:
        """Edges of the subgraph induced by ``nodes`` (paper Def. 2.1:
        a community keeps *every* ``G_D`` edge between its nodes)."""
        node_set = set(nodes)
        result: List[Edge] = []
        indptr = self.forward.indptr
        targets = self.forward.targets
        weights = self.forward.weights
        for u in node_set:
            self._check_node(u)
            for idx in range(indptr[u], indptr[u + 1]):
                v = int(targets[idx])
                if v in node_set:
                    result.append((u, v, float(weights[idx])))
        result.sort()
        return result

    def __repr__(self) -> str:
        return f"CompiledGraph(n={self.n}, m={self.m})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise NodeNotFoundError(node, self.n)


def subgraph_mapping(nodes: Sequence[int]) -> Dict[int, int]:
    """Dense relabeling ``old id -> new id`` for a projected subgraph."""
    return {node: new for new, node in enumerate(sorted(set(nodes)))}
