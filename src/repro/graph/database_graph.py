"""Database graph: a compiled digraph whose nodes carry text.

The paper's ``G_D`` is a weighted digraph over tuples where each node
may contain keywords. :class:`DatabaseGraph` bundles the compiled
topology with per-node keyword sets, human-readable labels, and optional
provenance back to the originating relation/tuple, so results can be
rendered the way the paper's figures render them ("paper1", "Kate
Green", ...).

It is produced either by :func:`repro.rdb.graph_builder.build_database_graph`
from a relational database, or directly by the dataset generators and
tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.csr import CompiledGraph
from repro.graph.digraph import DiGraph

Provenance = Tuple[str, object]  # (table name, primary key)


class DatabaseGraph:
    """A compiled graph plus node keywords, labels, and provenance."""

    __slots__ = ("graph", "_keywords", "_labels", "_provenance")

    def __init__(self, graph: CompiledGraph,
                 keywords: Sequence[Iterable[str]],
                 labels: Optional[Sequence[str]] = None,
                 provenance: Optional[Sequence[Optional[Provenance]]] = None,
                 ) -> None:
        if len(keywords) != graph.n:
            raise GraphError(
                f"keyword list has {len(keywords)} entries for "
                f"{graph.n} nodes")
        if labels is not None and len(labels) != graph.n:
            raise GraphError(
                f"label list has {len(labels)} entries for {graph.n} nodes")
        if provenance is not None and len(provenance) != graph.n:
            raise GraphError(
                f"provenance list has {len(provenance)} entries for "
                f"{graph.n} nodes")
        self.graph = graph
        self._keywords: List[FrozenSet[str]] = [
            frozenset(kw) for kw in keywords]
        self._labels: List[str] = (
            list(labels) if labels is not None
            else [f"v{u}" for u in range(graph.n)])
        self._provenance: List[Optional[Provenance]] = (
            list(provenance) if provenance is not None
            else [None] * graph.n)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return self.graph.m

    def keywords_of(self, node: int) -> FrozenSet[str]:
        """The keyword set carried by ``node``."""
        self._check_node(node)
        return self._keywords[node]

    def label_of(self, node: int) -> str:
        """Human-readable label of ``node``."""
        self._check_node(node)
        return self._labels[node]

    def provenance_of(self, node: int) -> Optional[Provenance]:
        """``(table, primary key)`` the node came from, if known."""
        self._check_node(node)
        return self._provenance[node]

    # ------------------------------------------------------------------
    # keyword scans (tests and small graphs; queries use the inverted
    # index from repro.text instead)
    # ------------------------------------------------------------------
    def nodes_with_keyword(self, keyword: str) -> List[int]:
        """Linear scan for nodes containing ``keyword``."""
        return [u for u in range(self.n) if keyword in self._keywords[u]]

    def vocabulary(self) -> Set[str]:
        """All keywords appearing anywhere in the graph."""
        vocab: Set[str] = set()
        for kws in self._keywords:
            vocab.update(kws)
        return vocab

    # ------------------------------------------------------------------
    # projection support
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Sequence[int]
                         ) -> Tuple["DatabaseGraph", Dict[int, int]]:
        """Build the induced subgraph over ``nodes``.

        Returns the new :class:`DatabaseGraph` (densely relabeled) and
        the ``old id -> new id`` mapping. Keywords, labels, and
        provenance are carried over, so a query answered on the
        projection renders identically to one answered on ``G_D``.
        """
        ordered = sorted(set(nodes))
        mapping = {old: new for new, old in enumerate(ordered)}
        builder = DiGraph(len(ordered))
        for u, v, w in self.graph.induced_edges(ordered):
            builder.add_edge(mapping[u], mapping[v], w)
        sub = DatabaseGraph(
            builder.compile(),
            [self._keywords[old] for old in ordered],
            [self._labels[old] for old in ordered],
            [self._provenance[old] for old in ordered],
        )
        return sub, mapping

    def __repr__(self) -> str:
        return f"DatabaseGraph(n={self.n}, m={self.m})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise NodeNotFoundError(node, self.n)
