"""Database graph: a compiled digraph whose nodes carry text.

The paper's ``G_D`` is a weighted digraph over tuples where each node
may contain keywords. :class:`DatabaseGraph` bundles the compiled
topology with per-node keyword sets, human-readable labels, and optional
provenance back to the originating relation/tuple, so results can be
rendered the way the paper's figures render them ("paper1", "Kate
Green", ...).

It is produced either by :func:`repro.rdb.graph_builder.build_database_graph`
from a relational database, or directly by the dataset generators and
tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.csr import CompiledGraph
from repro.graph.digraph import DiGraph

Provenance = Tuple[str, object]  # (table name, primary key)


class DatabaseGraph:
    """A compiled graph plus node keywords, labels, and provenance."""

    __slots__ = ("graph", "_keywords", "_labels", "_provenance")

    def __init__(self, graph: CompiledGraph,
                 keywords: Sequence[Iterable[str]],
                 labels: Optional[Sequence[str]] = None,
                 provenance: Optional[Sequence[Optional[Provenance]]] = None,
                 ) -> None:
        if len(keywords) != graph.n:
            raise GraphError(
                f"keyword list has {len(keywords)} entries for "
                f"{graph.n} nodes")
        if labels is not None and len(labels) != graph.n:
            raise GraphError(
                f"label list has {len(labels)} entries for {graph.n} nodes")
        if provenance is not None and len(provenance) != graph.n:
            raise GraphError(
                f"provenance list has {len(provenance)} entries for "
                f"{graph.n} nodes")
        self.graph = graph
        # Keywords are case-folded at the boundary: the tokenizer
        # lowercases all extracted text, and QuerySpec case-folds all
        # query keywords, so the canonical vocabulary is folded — a
        # graph built with "XML" must answer a query for "xml".
        self._keywords: List[FrozenSet[str]] = [
            frozenset(k.casefold() for k in kw) for kw in keywords]
        self._labels: List[str] = (
            list(labels) if labels is not None
            else [f"v{u}" for u in range(graph.n)])
        self._provenance: List[Optional[Provenance]] = (
            list(provenance) if provenance is not None
            else [None] * graph.n)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return self.graph.m

    def keywords_of(self, node: int) -> FrozenSet[str]:
        """The keyword set carried by ``node``."""
        self._check_node(node)
        return self._keywords[node]

    def label_of(self, node: int) -> str:
        """Human-readable label of ``node``."""
        self._check_node(node)
        return self._labels[node]

    def provenance_of(self, node: int) -> Optional[Provenance]:
        """``(table, primary key)`` the node came from, if known."""
        self._check_node(node)
        return self._provenance[node]

    # ------------------------------------------------------------------
    # keyword scans (tests and small graphs; queries use the inverted
    # index from repro.text instead)
    # ------------------------------------------------------------------
    def nodes_with_keyword(self, keyword: str) -> List[int]:
        """Linear scan for nodes containing ``keyword``."""
        return [u for u in range(self.n) if keyword in self._keywords[u]]

    def vocabulary(self) -> Set[str]:
        """All keywords appearing anywhere in the graph."""
        vocab: Set[str] = set()
        for kws in self._keywords:
            vocab.update(kws)
        return vocab

    # ------------------------------------------------------------------
    # projection support
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Sequence[int]
                         ) -> Tuple["DatabaseGraph", Dict[int, int]]:
        """Build the induced subgraph over ``nodes``.

        Returns the new :class:`DatabaseGraph` (densely relabeled) and
        the ``old id -> new id`` mapping. Keywords, labels, and
        provenance are carried over, so a query answered on the
        projection renders identically to one answered on ``G_D``.
        """
        ordered = sorted(set(nodes))
        mapping = {old: new for new, old in enumerate(ordered)}
        builder = DiGraph(len(ordered))
        for u, v, w in self.graph.induced_edges(ordered):
            builder.add_edge(mapping[u], mapping[v], w)
        # Accessor methods (not the backing lists) so lazily-decoding
        # subclasses materialize exactly the nodes the projection
        # touches.
        sub = DatabaseGraph(
            builder.compile(),
            [self.keywords_of(old) for old in ordered],
            [self.label_of(old) for old in ordered],
            [self.provenance_of(old) for old in ordered],
        )
        return sub, mapping

    def __repr__(self) -> str:
        return f"DatabaseGraph(n={self.n}, m={self.m})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise NodeNotFoundError(node, self.n)


#: What a :class:`LazyDatabaseGraph` loader returns: ``(vocab,
#: node_keyword_ids, labels, raw_provenance)`` — the vocabulary, one
#: sorted vocab-id list per node, one label per node, and one
#: *encoded* provenance entry per node (decoded on access).
LazyPayload = Tuple[Sequence[str], Sequence[Sequence[int]],
                    Sequence[str], Sequence[object]]


class LazyDatabaseGraph(DatabaseGraph):
    """A :class:`DatabaseGraph` that decodes node metadata on demand.

    The mmap snapshot path uses this so worker spawn never pays the
    eager per-node work the base constructor does (``frozenset`` per
    node, provenance decode per node) — nor even the ``nodes.json``
    parse: ``loader`` is invoked once, on the first metadata access,
    and must return a :data:`LazyPayload`. Per-node keyword sets and
    provenance are then materialized node-by-node as queries touch
    them, memoized for reuse. All mutation happens behind accessor
    calls and is idempotent, so concurrent readers are safe under the
    GIL.

    ``provenance_decoder`` maps one raw payload entry to the
    ``(table, pk)`` tuple (``None`` passes through); injected by the
    caller to keep this module free of codec imports.
    """

    __slots__ = ("_loader", "_decode_prov", "_payload", "_kw_memo",
                 "_prov_memo", "_vocab_ids")

    def __init__(self, graph: CompiledGraph, loader,
                 provenance_decoder=None) -> None:
        # Deliberately does not chain to DatabaseGraph.__init__: the
        # whole point is to skip its eager per-node materialization.
        # The base class's _keywords/_labels/_provenance slots stay
        # unset; every method touching them is overridden here.
        self.graph = graph
        self._loader = loader
        self._decode_prov = provenance_decoder
        self._payload: Optional[LazyPayload] = None
        self._kw_memo: Dict[int, FrozenSet[str]] = {}
        self._prov_memo: Dict[int, Optional[Provenance]] = {}
        self._vocab_ids: Optional[Dict[str, int]] = None

    def _data(self) -> LazyPayload:
        payload = self._payload
        if payload is None:
            payload = self._loader()
            vocab, node_kws, labels, provenance = payload
            n = self.graph.n
            if len(node_kws) != n or len(labels) != n \
                    or len(provenance) != n:
                raise GraphError(
                    f"lazy node payload length mismatch: "
                    f"{len(node_kws)}/{len(labels)}/{len(provenance)} "
                    f"entries for {n} nodes")
            self._payload = payload
            self._loader = None  # free the closure (and its buffer)
        return payload

    # -- overridden accessors ------------------------------------------
    def keywords_of(self, node: int) -> FrozenSet[str]:
        """The keyword set of ``node``, decoded and memoized on
        first access."""
        self._check_node(node)
        memo = self._kw_memo
        kws = memo.get(node)
        if kws is None:
            vocab, node_kws, _, _ = self._data()
            kws = memo[node] = frozenset(
                vocab[i] for i in node_kws[node])
        return kws

    def label_of(self, node: int) -> str:
        """Human-readable label of ``node`` (payload-backed)."""
        self._check_node(node)
        return self._data()[2][node]

    def provenance_of(self, node: int) -> Optional[Provenance]:
        """``(table, pk)`` of ``node``, decoded and memoized on
        first access."""
        self._check_node(node)
        memo = self._prov_memo
        if node in memo:
            return memo[node]
        raw = self._data()[3][node]
        decoded = self._decode_prov(raw) if self._decode_prov else raw
        memo[node] = decoded
        return decoded

    def nodes_with_keyword(self, keyword: str) -> List[int]:
        """Linear scan over the *encoded* keyword-id lists — no
        per-node set materialization."""
        ids = self._vocab_ids
        if ids is None:
            vocab = self._data()[0]
            ids = self._vocab_ids = {
                kw: i for i, kw in enumerate(vocab)}
        kid = ids.get(keyword)
        if kid is None:
            return []
        node_kws = self._data()[1]
        return [u for u in range(self.n) if kid in node_kws[u]]

    def vocabulary(self) -> Set[str]:
        """Keywords carried by at least one node.

        The stored vocabulary may be a superset (it also covers
        index-only keywords), so membership is derived from the
        per-node id lists — matching the eager class's semantics,
        which keeps snapshot ids stable across load/re-write cycles.
        """
        vocab, node_kws, _, _ = self._data()
        used: Set[int] = set()
        for ids in node_kws:
            used.update(ids)
        return {vocab[i] for i in used}
