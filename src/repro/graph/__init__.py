"""Weighted directed graph substrate.

This subpackage provides the graph machinery the paper's algorithms run
on: a mutable :class:`~repro.graph.digraph.DiGraph` builder, an immutable
compiled form (:class:`~repro.graph.csr.CompiledGraph`) with forward and
reverse CSR adjacency, bounded multi-source Dijkstra
(:mod:`repro.graph.dijkstra`), a text-carrying
:class:`~repro.graph.database_graph.DatabaseGraph`, and random graph
generators for testing (:mod:`repro.graph.generators`).
"""

from repro.graph.csr import CompiledGraph, CSRAdjacency
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import (
    DistanceMap,
    bounded_dijkstra,
    flat_bounded_dijkstra,
    heap_bounded_dijkstra,
    single_source_distances,
)
from repro.graph.generators import gnp_random_digraph, power_law_digraph
from repro.graph.node_weights import node_weighted_view

__all__ = [
    "CSRAdjacency",
    "CompiledGraph",
    "DatabaseGraph",
    "DiGraph",
    "DistanceMap",
    "bounded_dijkstra",
    "flat_bounded_dijkstra",
    "gnp_random_digraph",
    "heap_bounded_dijkstra",
    "node_weighted_view",
    "power_law_digraph",
    "single_source_distances",
]
