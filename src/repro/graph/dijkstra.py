"""Bounded multi-source Dijkstra with nearest-source tracking.

Algorithm 2 of the paper computes neighbor sets by adding a virtual sink
``t`` with 0-weight edges from every keyword node and running Dijkstra
on the reversed graph; Algorithm 4 does the mirror trick with a virtual
source ``s``. Seeding a multi-source Dijkstra with every virtual
neighbor at distance 0 is mathematically identical and avoids mutating
the graph, so that is what :func:`bounded_dijkstra` implements.

Every search is *bounded*: nodes are settled only while their distance
is ``<= radius`` (the paper's ``Rmax``), which is what makes per-query
work proportional to the local neighborhood instead of the whole graph.

The returned :class:`DistanceMap` also records, per settled node, the
seed its shortest path starts from — the paper's ``src(N_i, u)`` — and
the distance — ``min(N_i, u)`` — which :func:`~repro.core.bestcore`
consumes directly.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, Iterable, Iterator, Tuple, Union

from repro.graph.csr import CompiledGraph, CSRAdjacency

Seed = Union[int, Tuple[int, float]]


class DistanceMap:
    """Shortest distances (and nearest seeds) from a set of sources.

    Supports ``node in dmap``, ``dmap[node]`` for the distance, and
    :meth:`source` for the seed the shortest path originates at. Only
    settled nodes (distance ``<= radius``) are present.
    """

    __slots__ = ("_dist", "_src")

    def __init__(self, dist: Dict[int, float], src: Dict[int, int]) -> None:
        self._dist = dist
        self._src = src

    def __contains__(self, node: int) -> bool:
        return node in self._dist

    def __getitem__(self, node: int) -> float:
        return self._dist[node]

    def __len__(self) -> int:
        return len(self._dist)

    def __iter__(self) -> Iterator[int]:
        return iter(self._dist)

    def get(self, node: int, default: float = math.inf) -> float:
        """Distance of ``node``, or ``default`` when unreached."""
        return self._dist.get(node, default)

    def source(self, node: int) -> int:
        """The seed node whose shortest path reaches ``node`` first."""
        return self._src[node]

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate ``(node, distance)`` pairs of settled nodes."""
        return self._dist.items()

    def distances(self) -> Dict[int, float]:
        """The underlying ``node -> distance`` dict (not a copy)."""
        return self._dist

    def sources(self) -> Dict[int, int]:
        """The underlying ``node -> seed`` dict (not a copy)."""
        return self._src


def _normalize_seeds(sources: Iterable[Seed]) -> Iterator[Tuple[int, float]]:
    for seed in sources:
        if isinstance(seed, tuple):
            yield seed[0], float(seed[1])
        else:
            yield seed, 0.0


def bounded_dijkstra(adjacency: CSRAdjacency, sources: Iterable[Seed],
                     radius: float = math.inf) -> DistanceMap:
    """Multi-source Dijkstra over one CSR direction, bounded by ``radius``.

    ``sources`` is an iterable of node ids (seeded at distance 0) or
    ``(node, distance)`` pairs. Ties between equal-distance paths are
    broken deterministically toward the smaller node id, which keeps the
    whole enumeration pipeline reproducible.
    """
    dist: Dict[int, float] = {}
    src: Dict[int, int] = {}
    heap: list = []
    pending: Dict[int, float] = {}

    for node, d0 in _normalize_seeds(sources):
        if d0 > radius:
            continue
        best = pending.get(node)
        if best is None or d0 < best:
            pending[node] = d0
            heappush(heap, (d0, node, node))

    indptr = adjacency.indptr
    targets = adjacency.targets
    weights = adjacency.weights

    while heap:
        d, u, origin = heappop(heap)
        if u in dist:
            continue  # stale heap entry
        dist[u] = d
        src[u] = origin
        start, stop = indptr[u], indptr[u + 1]
        for idx in range(start, stop):
            v = targets[idx]
            if v in dist:
                continue
            nd = d + weights[idx]
            if nd > radius:
                continue
            best = pending.get(v)
            if best is None or nd < best:
                pending[v] = nd
                heappush(heap, (nd, v, origin))

    return DistanceMap(dist, src)


def single_source_distances(graph: CompiledGraph, source: int,
                            radius: float = math.inf,
                            reverse: bool = False) -> DistanceMap:
    """Bounded Dijkstra from one node.

    With ``reverse=True`` the search walks in-edges, so the result maps
    each node ``u`` to ``dist(u, source)`` in the original graph — the
    orientation ``Neighbor()`` and center discovery need.
    """
    adjacency = graph.reverse if reverse else graph.forward
    return bounded_dijkstra(adjacency, [source], radius)


def multi_source_distances(graph: CompiledGraph, sources: Iterable[Seed],
                           radius: float = math.inf,
                           reverse: bool = False) -> DistanceMap:
    """Bounded Dijkstra from several nodes (virtual-node trick)."""
    adjacency = graph.reverse if reverse else graph.forward
    return bounded_dijkstra(adjacency, sources, radius)
