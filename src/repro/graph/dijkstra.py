"""Bounded multi-source Dijkstra with nearest-source tracking.

Algorithm 2 of the paper computes neighbor sets by adding a virtual sink
``t`` with 0-weight edges from every keyword node and running Dijkstra
on the reversed graph; Algorithm 4 does the mirror trick with a virtual
source ``s``. Seeding a multi-source Dijkstra with every virtual
neighbor at distance 0 is mathematically identical and avoids mutating
the graph, so that is what :func:`bounded_dijkstra` implements.

Every search is *bounded*: nodes are settled only while their distance
is ``<= radius`` (the paper's ``Rmax``), which is what makes per-query
work proportional to the local neighborhood instead of the whole graph.

The returned :class:`DistanceMap` also records, per settled node, the
seed its shortest path starts from — the paper's ``src(N_i, u)`` — and
the distance — ``min(N_i, u)`` — which :func:`~repro.core.bestcore`
consumes directly.

Two kernels implement the same contract:

* :func:`heap_bounded_dijkstra` — the reference: tentative distances in
  a ``pending`` dict, settled nodes in a ``dist`` dict. Simple, and the
  oracle the property tests compare against.
* :func:`flat_bounded_dijkstra` — the production kernel: tentative
  distances, settled flags and freshness stamps live in reusable
  *flat arrays indexed by node id*, so the per-edge relaxation loop
  does three list indexings instead of two dict probes. The arrays are
  **epoch-stamped**: each search bumps a counter and treats any entry
  carrying an older stamp as absent, which makes "clearing" the
  scratch O(1) and lets one thread reuse the same arrays for every
  query it ever runs (they only grow, to the largest graph seen).
  Scratch is thread-local, so the threaded service and the process
  worker pool both get isolated arrays for free.

Both kernels push the identical ``(distance, node, origin)`` entries
into the identical heap, so distances, settled sets **and tie-breaks**
(smaller node id first, then smaller origin) agree exactly —
``tests/property/test_flat_dijkstra_props.py`` holds them to that.

:func:`bounded_dijkstra` is the public entry every caller uses
(``neighbor.py``, ``getcommunity.py``, ``projection.py``, the BU/TD
baselines); it runs the flat kernel behind a small **duplicate-search
memo**. Tracing the Fig. 9/11 COMM-all sweeps shows ~70 % of all
bounded searches are exact repeats — ``GetCommunity()`` re-derives the
same per-knode distance map for every community sharing that knode —
so the memo turns the dominant repeated searches into two dict copies.
It is exact and invalidation-free: compiled adjacencies are immutable
(index maintenance builds *new* graphs), keys are
``(adjacency identity, normalized seeds, radius)``, each entry pins
its adjacency so the identity stays valid, and every call — hit or
miss — returns freshly-copied dicts, so callers can never alias or
poison memoized state. The memo is thread-local (no locks) and
bounded both in entries (:data:`MEMO_CAPACITY`) and per-entry size
(:data:`MEMO_MAX_NODES`, so whole-graph index-build scans don't pin
megabytes).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from heapq import heappop, heappush
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.graph.csr import CompiledGraph, CSRAdjacency

Seed = Union[int, Tuple[int, float]]


class DistanceMap:
    """Shortest distances (and nearest seeds) from a set of sources.

    Supports ``node in dmap``, ``dmap[node]`` for the distance, and
    :meth:`source` for the seed the shortest path originates at. Only
    settled nodes (distance ``<= radius``) are present.
    """

    __slots__ = ("_dist", "_src")

    def __init__(self, dist: Dict[int, float], src: Dict[int, int]) -> None:
        self._dist = dist
        self._src = src

    def __contains__(self, node: int) -> bool:
        return node in self._dist

    def __getitem__(self, node: int) -> float:
        return self._dist[node]

    def __len__(self) -> int:
        return len(self._dist)

    def __iter__(self) -> Iterator[int]:
        return iter(self._dist)

    def get(self, node: int, default: float = math.inf) -> float:
        """Distance of ``node``, or ``default`` when unreached."""
        return self._dist.get(node, default)

    def source(self, node: int) -> int:
        """The seed node whose shortest path reaches ``node`` first."""
        return self._src[node]

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate ``(node, distance)`` pairs of settled nodes."""
        return self._dist.items()

    def distances(self) -> Dict[int, float]:
        """The underlying ``node -> distance`` dict (not a copy)."""
        return self._dist

    def sources(self) -> Dict[int, int]:
        """The underlying ``node -> seed`` dict (not a copy)."""
        return self._src


def _normalize_seeds(sources: Iterable[Seed]) -> Iterator[Tuple[int, float]]:
    for seed in sources:
        if isinstance(seed, tuple):
            yield seed[0], float(seed[1])
        else:
            yield seed, 0.0


class DijkstraScratch:
    """Reusable epoch-stamped flat arrays for one thread's searches.

    Three parallel lists indexed by node id: ``best`` (tentative
    distance), ``stamp`` (epoch that wrote ``best``) and ``done``
    (epoch that settled the node). An entry whose stamp differs from
    the current epoch is semantically absent, so starting a new search
    is a single counter increment — no clearing pass, no per-query
    allocation. The lists grow monotonically to the largest ``n``
    requested and are reused across graphs of any size.
    """

    __slots__ = ("size", "epoch", "best", "stamp", "done")

    def __init__(self) -> None:
        self.size = 0
        self.epoch = 0
        self.best: List[float] = []
        self.stamp: List[int] = []
        self.done: List[int] = []

    def acquire(self, n: int) -> int:
        """Start a fresh search over ``n`` nodes; returns its epoch."""
        if n > self.size:
            grow = n - self.size
            self.best.extend([0.0] * grow)
            self.stamp.extend([0] * grow)
            self.done.extend([0] * grow)
            self.size = n
        self.epoch += 1
        return self.epoch


_scratch_local = threading.local()


def _thread_scratch() -> DijkstraScratch:
    """This thread's scratch, created on first use."""
    scratch = getattr(_scratch_local, "scratch", None)
    if scratch is None:
        scratch = _scratch_local.scratch = DijkstraScratch()
    return scratch


def flat_bounded_dijkstra(adjacency: CSRAdjacency,
                          sources: Iterable[Seed],
                          radius: float = math.inf) -> DistanceMap:
    """The flat-array kernel: same contract as the reference, faster.

    Per-edge work touches only list indexings (``done``/``stamp``/
    ``best``) against thread-local scratch; dict stores happen once per
    *settled* node, to build the returned :class:`DistanceMap` (plain
    dicts, so results never alias the scratch and stay valid across
    later searches).
    """
    indptr = adjacency.indptr
    n = len(indptr) - 1
    scratch = _thread_scratch()
    epoch = scratch.acquire(n)
    best = scratch.best
    stamp = scratch.stamp
    done = scratch.done

    dist: Dict[int, float] = {}
    src: Dict[int, int] = {}
    heap: list = []
    for node, d0 in _normalize_seeds(sources):
        if d0 > radius:
            continue
        if stamp[node] != epoch or d0 < best[node]:
            stamp[node] = epoch
            best[node] = d0
            heappush(heap, (d0, node, node))

    targets = adjacency.targets
    weights = adjacency.weights
    push = heappush
    pop = heappop
    while heap:
        d, u, origin = pop(heap)
        if done[u] == epoch:
            continue  # stale heap entry
        done[u] = epoch
        # Settled entries become the result dicts — coerce to Python
        # scalars so numpy types from mmap-backed adjacencies never
        # leak into downstream node sets / costs / JSON payloads.
        dist[int(u)] = float(d)
        src[int(u)] = int(origin)
        for idx in range(indptr[u], indptr[u + 1]):
            v = targets[idx]
            if done[v] == epoch:
                continue
            nd = d + weights[idx]
            if nd > radius:
                continue
            if stamp[v] != epoch or nd < best[v]:
                stamp[v] = epoch
                best[v] = nd
                push(heap, (nd, v, origin))

    return DistanceMap(dist, src)


def heap_bounded_dijkstra(adjacency: CSRAdjacency,
                          sources: Iterable[Seed],
                          radius: float = math.inf) -> DistanceMap:
    """Reference kernel: tentative/settled state in dicts.

    Kept as the oracle the flat kernel is property-tested against and
    as the baseline the kernel benchmark measures speedups over.
    ``sources`` is an iterable of node ids (seeded at distance 0) or
    ``(node, distance)`` pairs. Ties between equal-distance paths are
    broken deterministically toward the smaller node id, which keeps
    the whole enumeration pipeline reproducible.
    """
    dist: Dict[int, float] = {}
    src: Dict[int, int] = {}
    heap: list = []
    pending: Dict[int, float] = {}

    for node, d0 in _normalize_seeds(sources):
        if d0 > radius:
            continue
        best = pending.get(node)
        if best is None or d0 < best:
            pending[node] = d0
            heappush(heap, (d0, node, node))

    indptr = adjacency.indptr
    targets = adjacency.targets
    weights = adjacency.weights

    while heap:
        d, u, origin = heappop(heap)
        if u in dist:
            continue  # stale heap entry
        dist[int(u)] = float(d)
        src[int(u)] = int(origin)
        start, stop = indptr[u], indptr[u + 1]
        for idx in range(start, stop):
            v = targets[idx]
            if v in dist:
                continue
            nd = d + weights[idx]
            if nd > radius:
                continue
            best = pending.get(v)
            if best is None or nd < best:
                pending[v] = nd
                heappush(heap, (nd, v, origin))

    return DistanceMap(dist, src)


#: Entries retained by each thread's duplicate-search memo.
MEMO_CAPACITY = 128

#: Results settling more nodes than this bypass the memo entirely —
#: whole-graph scans (index builds) would otherwise pin large dicts.
MEMO_MAX_NODES = 8192


class SearchMemo:
    """Per-thread LRU of ``(adjacency id, seeds, radius) -> result``.

    Exactness rests on two facts: compiled adjacencies are immutable,
    and each entry holds a strong reference to its adjacency, so the
    ``id()`` in the key cannot be recycled while the entry lives.
    Entries store private dict copies and :meth:`lookup` hands back
    fresh copies, so no caller ever aliases memoized state.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = MEMO_CAPACITY) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def lookup(self, key: tuple) -> "DistanceMap | None":
        """The memoized result as a *fresh* ``DistanceMap``, or
        ``None`` on miss (counted either way)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _, dist, src = entry
        return DistanceMap(dict(dist), dict(src))

    def store(self, key: tuple, adjacency: CSRAdjacency,
              result: DistanceMap) -> None:
        """Memoize ``result`` (copied) unless it is oversized; keeps
        a strong reference to ``adjacency`` so the ``id()`` in the
        key stays valid, and evicts LRU past capacity."""
        if len(result) > MEMO_MAX_NODES:
            return
        self._entries[key] = (adjacency, dict(result.distances()),
                              dict(result.sources()))
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def _thread_memo() -> SearchMemo:
    """This thread's duplicate-search memo, created on first use."""
    memo = getattr(_scratch_local, "memo", None)
    if memo is None:
        memo = _scratch_local.memo = SearchMemo()
    return memo


def bounded_dijkstra(adjacency: CSRAdjacency, sources: Iterable[Seed],
                     radius: float = math.inf) -> DistanceMap:
    """Multi-source Dijkstra over one CSR direction, bounded by ``radius``.

    The public entry point every algorithm calls; runs the flat-array
    kernel (see the module docstring for the kernel contract and
    :func:`heap_bounded_dijkstra` for the dict-based reference, which
    returns identical results including tie-breaks) behind the
    thread-local duplicate-search memo. Repeated searches — the bulk
    of the Fig. 9/11 enumeration workload — cost two dict copies
    instead of a full scan, with results identical to a fresh run.
    """
    seeds = tuple(_normalize_seeds(sources))
    memo = _thread_memo()
    key = (id(adjacency), seeds, radius)
    cached = memo.lookup(key)
    if cached is not None:
        return cached
    result = flat_bounded_dijkstra(adjacency, seeds, radius)
    memo.store(key, adjacency, result)
    return result


def single_source_distances(graph: CompiledGraph, source: int,
                            radius: float = math.inf,
                            reverse: bool = False) -> DistanceMap:
    """Bounded Dijkstra from one node.

    With ``reverse=True`` the search walks in-edges, so the result maps
    each node ``u`` to ``dist(u, source)`` in the original graph — the
    orientation ``Neighbor()`` and center discovery need.
    """
    adjacency = graph.reverse if reverse else graph.forward
    return bounded_dijkstra(adjacency, [source], radius)


def multi_source_distances(graph: CompiledGraph, sources: Iterable[Seed],
                           radius: float = math.inf,
                           reverse: bool = False) -> DistanceMap:
    """Bounded Dijkstra from several nodes (virtual-node trick)."""
    adjacency = graph.reverse if reverse else graph.forward
    return bounded_dijkstra(adjacency, sources, radius)
