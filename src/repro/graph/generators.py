"""Random graph generators for tests and property-based checks.

These produce :class:`~repro.graph.database_graph.DatabaseGraph`
instances with randomly planted keywords, small enough that the naive
``O(n^l)`` reference enumerator stays tractable — they are the substrate
for the PDall-vs-naive equivalence properties.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph


def gnp_random_digraph(n: int, p: float, seed: int = 0,
                       weight_range: Tuple[float, float] = (1.0, 4.0),
                       integer_weights: bool = True) -> DiGraph:
    """G(n, p) digraph with weights drawn uniformly from a range.

    Integer weights (the default) make distance ties common, which is
    exactly what stresses the deterministic tie-breaking of the
    enumeration algorithms in tests.
    """
    rng = random.Random(seed)
    graph = DiGraph(n)
    lo, hi = weight_range
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                weight = rng.uniform(lo, hi)
                if integer_weights:
                    weight = float(int(weight))
                graph.add_edge(u, v, weight)
    return graph


def power_law_digraph(n: int, m_per_node: int = 2, seed: int = 0,
                      weight_range: Tuple[float, float] = (1.0, 4.0)
                      ) -> DiGraph:
    """Preferential-attachment digraph (Barabási–Albert flavored).

    Produces the skewed in-degree distributions typical of citation and
    rating graphs, so BANKS-style ``log2(1 + N_in)`` weights exercise a
    realistic dynamic range.
    """
    rng = random.Random(seed)
    graph = DiGraph(n)
    in_degree_pool: List[int] = [0]
    for u in range(1, n):
        targets: Set[int] = set()
        attempts = 0
        while len(targets) < min(m_per_node, u) and attempts < 10 * m_per_node:
            targets.add(rng.choice(in_degree_pool))
            attempts += 1
        for v in targets:
            weight = float(int(rng.uniform(*weight_range)))
            graph.add_bidirected_edge(u, v, weight, weight)
            in_degree_pool.append(v)
        in_degree_pool.append(u)
    return graph


def random_database_graph(n: int, p: float, keywords: Sequence[str],
                          keyword_prob: float = 0.3, seed: int = 0,
                          bidirected: bool = False,
                          ensure_keywords: bool = True) -> DatabaseGraph:
    """A random :class:`DatabaseGraph` with planted keywords.

    Each node independently receives each keyword with probability
    ``keyword_prob``. With ``ensure_keywords`` every keyword is planted
    on at least one node, so every generated graph admits at least one
    candidate core (reachability permitting).
    """
    rng = random.Random(seed)
    builder = DiGraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                weight = float(rng.randint(1, 4))
                if bidirected:
                    if u < v:
                        builder.add_bidirected_edge(u, v, weight, weight)
                else:
                    builder.add_edge(u, v, weight)

    node_keywords: List[Set[str]] = [set() for _ in range(n)]
    for u in range(n):
        for kw in keywords:
            if rng.random() < keyword_prob:
                node_keywords[u].add(kw)
    if ensure_keywords and n > 0:
        for kw in keywords:
            if not any(kw in kws for kws in node_keywords):
                node_keywords[rng.randrange(n)].add(kw)

    return DatabaseGraph(builder.compile(), node_keywords)


def line_database_graph(weights: Sequence[float],
                        keywords_per_node: Sequence[Sequence[str]],
                        bidirected: bool = True) -> DatabaseGraph:
    """A path graph — handy for hand-checkable distance arithmetic."""
    n = len(keywords_per_node)
    builder = DiGraph(n)
    for u, weight in enumerate(weights):
        if bidirected:
            builder.add_bidirected_edge(u, u + 1, weight, weight)
        else:
            builder.add_edge(u, u + 1, weight)
    return DatabaseGraph(builder.compile(), keywords_per_node)
