"""Serialization of database graphs (JSON, optionally gzipped).

A deployment builds ``G_D`` from the RDBMS once and serves queries
from the materialized graph; this module persists it. The format is
versioned JSON: edges, per-node keywords, labels, and provenance.
Files ending in ``.gz`` are transparently gzip-compressed.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_database_graph(dbg: DatabaseGraph, path: PathLike) -> None:
    """Write ``dbg`` to ``path`` (use a ``.gz`` suffix to compress)."""
    payload = {
        "format": "repro.database_graph",
        "version": FORMAT_VERSION,
        "n": dbg.n,
        "edges": [[u, v, w] for u, v, w in dbg.graph.edges()],
        "keywords": [sorted(dbg.keywords_of(u)) for u in range(dbg.n)],
        "labels": [dbg.label_of(u) for u in range(dbg.n)],
        "provenance": [
            None if dbg.provenance_of(u) is None
            else [dbg.provenance_of(u)[0], dbg.provenance_of(u)[1]]
            for u in range(dbg.n)
        ],
    }
    path = Path(path)
    with _open(path, "w") as handle:
        json.dump(payload, handle)


def _decode_pk(pk: object) -> object:
    # JSON turns composite-key tuples into lists; restore them.
    if isinstance(pk, list):
        return tuple(_decode_pk(part) for part in pk)
    return pk


def load_database_graph(path: PathLike) -> DatabaseGraph:
    """Read a graph written by :func:`save_database_graph`."""
    path = Path(path)
    with _open(path, "r") as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.database_graph":
        raise GraphError(f"{path} is not a repro database graph file")
    if payload.get("version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format version "
            f"{payload.get('version')!r} (expected {FORMAT_VERSION})")

    graph = CompiledGraph.from_edges(
        payload["n"],
        [(u, v, w) for u, v, w in payload["edges"]])
    provenance = [
        None if entry is None else (entry[0], _decode_pk(entry[1]))
        for entry in payload["provenance"]
    ]
    return DatabaseGraph(
        graph,
        [set(kws) for kws in payload["keywords"]],
        payload["labels"],
        provenance,
    )
