"""Legacy single-file graph serialization (JSON, optionally gzipped).

A compatibility shim: the payload encoding lives in
:mod:`repro.snapshot.codec` and the versioned-JSON container handling
in :mod:`repro.ioutil`, shared with the index persistence module and
the snapshot subsystem. New code should prefer snapshots
(:mod:`repro.snapshot`) — one artifact carrying graph *and* index with
checksums — but files written by earlier releases keep loading here,
and small tools that only need a graph keep a one-call format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.database_graph import DatabaseGraph
from repro.ioutil import dump_versioned_json, load_versioned_json
from repro.snapshot.codec import graph_from_payload, graph_payload

FORMAT_NAME = "repro.database_graph"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_database_graph(dbg: DatabaseGraph, path: PathLike) -> None:
    """Write ``dbg`` to ``path`` (use a ``.gz`` suffix to compress)."""
    dump_versioned_json(graph_payload(dbg), Path(path),
                        FORMAT_NAME, FORMAT_VERSION)


def load_database_graph(path: PathLike) -> DatabaseGraph:
    """Read a graph written by :func:`save_database_graph`."""
    payload = load_versioned_json(Path(path), FORMAT_NAME,
                                  FORMAT_VERSION, GraphError)
    return graph_from_payload(payload)
