"""Mutable weighted directed graph builder.

:class:`DiGraph` is the construction-time representation: cheap to grow
edge by edge. Algorithms never run on it directly — call
:meth:`DiGraph.compile` to obtain an immutable
:class:`~repro.graph.csr.CompiledGraph` with forward and reverse CSR
adjacency, which is what every shortest-path routine consumes.

Nodes are dense integers ``0..n-1``. Parallel edges are permitted at
build time; :meth:`compile` keeps the lightest edge for each ``(u, v)``
pair, which is the correct reduction for shortest-path work.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.exceptions import EdgeError, NodeNotFoundError
from repro.graph.csr import CompiledGraph

Edge = Tuple[int, int, float]


class DiGraph:
    """A growable weighted directed graph over dense integer nodes."""

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise EdgeError(f"node count must be non-negative, got {n}")
        self._n = n
        self._edges: List[Edge] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append a fresh node and return its id."""
        node = self._n
        self._n += 1
        return node

    def add_nodes(self, count: int) -> range:
        """Append ``count`` fresh nodes; return their id range."""
        if count < 0:
            raise EdgeError(f"cannot add {count} nodes")
        first = self._n
        self._n += count
        return range(first, self._n)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the directed edge ``u -> v`` with the given weight.

        Weights must be non-negative (Dijkstra's precondition, and the
        paper's BANKS weights ``log2(1 + N_in(v))`` are always >= 0).
        """
        self._check_node(u)
        self._check_node(v)
        if weight < 0:
            raise EdgeError(f"negative edge weight {weight} on ({u}, {v})")
        self._edges.append((u, v, float(weight)))

    def add_bidirected_edge(self, u: int, v: int, weight_uv: float,
                            weight_vu: float) -> None:
        """Add both directions of an edge, as the paper's bi-directed
        database graphs do for every foreign-key reference."""
        self.add_edge(u, v, weight_uv)
        self.add_edge(v, u, weight_vu)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges added so far (before parallel-edge dedup)."""
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(u, v, weight)`` triples in insertion order."""
        return iter(self._edges)

    def __contains__(self, node: int) -> bool:
        return 0 <= node < self._n

    def __repr__(self) -> str:
        return f"DiGraph(n={self._n}, m={len(self._edges)})"

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledGraph:
        """Freeze into a :class:`CompiledGraph` (forward + reverse CSR)."""
        return CompiledGraph.from_edges(self._n, self._edges)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise NodeNotFoundError(node, self._n)


def from_edge_list(n: int, edges: Iterable[Edge]) -> DiGraph:
    """Build a :class:`DiGraph` from an iterable of ``(u, v, w)`` triples."""
    graph = DiGraph(n)
    for u, v, w in edges:
        graph.add_edge(u, v, w)
    return graph
