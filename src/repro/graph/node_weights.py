"""Node-weighted database graphs (paper footnote 1).

The paper ignores node weights "for simplicity" but notes the approach
supports them. The standard reduction makes that concrete without
touching any algorithm: charge each node's weight on *arrival*, i.e.
replace every edge weight by ``w'(u, v) = w(u, v) + nw(v)``. Then for
any path ``u0 -> u1 -> … -> uk``::

    dist'(u0, uk) = Σ edge weights + Σ node weights of u1..uk

— the total weight of the path counting every node except the source,
which is exactly how BANKS-style node prestige is charged. All
distance-based machinery (Neighbor, BestCore, GetCommunity, PDall,
PDk, projection) runs unchanged on the reweighted graph; only the
interpretation of ``Rmax`` and costs shifts to include node weights.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.exceptions import GraphError
from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph

NodeWeights = Union[Sequence[float], Mapping[int, float]]


def _weight_of(weights: NodeWeights, node: int) -> float:
    if isinstance(weights, Mapping):
        return float(weights.get(node, 0.0))
    return float(weights[node])


def node_weighted_view(dbg: DatabaseGraph, weights: NodeWeights
                       ) -> DatabaseGraph:
    """A copy of ``dbg`` with node weights folded into edge weights.

    ``weights`` is a per-node sequence, or a mapping with 0 as the
    default. All weights must be non-negative (Dijkstra's
    precondition). Keywords, labels, and provenance carry over, so the
    view is a drop-in replacement for any query API.
    """
    if not isinstance(weights, Mapping) and len(weights) != dbg.n:
        raise GraphError(
            f"{len(weights)} node weights for {dbg.n} nodes")
    arrival = [_weight_of(weights, v) for v in range(dbg.n)]
    if any(w < 0 for w in arrival):
        raise GraphError("node weights must be non-negative")

    edges = [
        (u, v, w + arrival[v]) for u, v, w in dbg.graph.edges()]
    graph = CompiledGraph.from_edges(dbg.n, edges)
    return DatabaseGraph(
        graph,
        [dbg.keywords_of(v) for v in range(dbg.n)],
        [dbg.label_of(v) for v in range(dbg.n)],
        [dbg.provenance_of(v) for v in range(dbg.n)],
    )
