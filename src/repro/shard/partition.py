"""Split one built index into K independently servable shards.

The partitioner assigns every global node to exactly one *owning*
shard (balanced BFS region growing over the undirected topology, so
regions are connected wherever the graph allows), then widens each
shard with a *halo*: every node within undirected weighted distance
``halo_radius`` of the owned region. Each shard materializes the
induced subgraph over owned + halo and rebuilds the two inverted
indexes at the original index radius ``R``, so a shard snapshot is a
completely ordinary snapshot — the existing ``serve --snapshot``
stack runs it unmodified.

**Why 3R is enough.** Fix a community with core ``C`` and anchor
``a = min(C)`` (global ids). Every center ``u`` has
``dist(u, c_i) <= Rmax <= R`` for all knodes, so undirected
``d(a, u) <= R`` and ``d(a, c_i) <= 2R`` (via ``u``). Every pnode —
and every node on any witness shortest path the bounded Dijkstras of
:mod:`repro.core.getcommunity` can touch — lies on a path of length
``<= R`` from some center to some knode, hence within undirected
``3R`` of ``a``. The shard owning ``a`` therefore contains every node
and edge any ``Rmax <= R`` query can inspect while deciding this
community: local distances equal global distances for everything that
matters, and the community (cost, centers, pnodes, induced edges) is
reproduced bit-for-bit. Communities whose anchor a shard does *not*
own may come out truncated — the router discards them (the owning
shard reports them exactly), which is simultaneously the dedup rule.

Region quality therefore affects only halo size (replication factor),
never correctness; a pathological partition just costs memory.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import QueryError, SnapshotError
from repro.graph.database_graph import DatabaseGraph
from repro.shard.manifest import (
    KeywordBloom,
    RoutingManifest,
    ShardEntry,
)
from repro.snapshot.snapshot import load_snapshot, snapshot_is_mappable
from repro.snapshot.store import SnapshotStore, locate_snapshot
from repro.text.inverted_index import CommunityIndex

PathLike = Union[str, Path]

#: Default halo multiplier over the index radius ``R`` — the proven
#: sufficient containment bound (module docstring).
DEFAULT_HALO_FACTOR = 3.0

#: Relative path (under the partition root) holding per-shard stores.
SHARD_DIR = "shards"


@dataclass
class ShardBundle:
    """One shard's in-memory artifacts, before or without publishing."""

    #: Dense shard index.
    shard_id: int
    #: The shard subgraph (dense local ids).
    dbg: DatabaseGraph
    #: Inverted indexes rebuilt over the shard subgraph at radius R.
    index: CommunityIndex
    #: Local node id -> global node id (sorted ascending).
    node_map: List[int]
    #: Global ids of the nodes this shard owns (the rest are halo).
    owned: List[int]


@dataclass
class PartitionResult:
    """Everything :func:`partition_graph` decides."""

    #: Per-shard artifacts, indexed by shard id.
    bundles: List[ShardBundle]
    #: Global node id -> owning shard id.
    owners: List[int]
    #: Index radius R the shard indexes were built at.
    radius: float
    #: Undirected halo distance used for shard membership.
    halo_radius: float


def _undirected_adjacency(dbg: DatabaseGraph
                          ) -> List[List[Tuple[int, float]]]:
    """Symmetrized adjacency: both edge directions, original weights.

    Partitioning treats ``G_D`` as undirected — the containment
    argument bounds *undirected* distances, which dominate both
    directed ones.
    """
    graph = dbg.graph
    adjacency: List[List[Tuple[int, float]]] = [
        [] for _ in range(graph.n)]
    for u, v, w in graph.edges():
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    return adjacency


def _bfs_order(adjacency: Sequence[Sequence[Tuple[int, float]]]
               ) -> List[int]:
    """A deterministic BFS visitation order covering every component.

    Seeds each unvisited component at its lowest node id and expands
    neighbors in sorted order, so contiguous slices of the order form
    connected (per component) regions — the region-growing step.
    """
    n = len(adjacency)
    seen = [False] * n
    order: List[int] = []
    for seed in range(n):
        if seen[seed]:
            continue
        seen[seed] = True
        frontier = [seed]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for neighbor, _ in sorted(adjacency[node]):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    frontier.append(neighbor)
    return order


def _halo_members(adjacency: Sequence[Sequence[Tuple[int, float]]],
                  owned: Iterable[int], radius: float) -> List[int]:
    """Owned nodes plus every node within undirected ``radius``.

    A plain multi-source heap Dijkstra — partitioning is offline, so
    clarity beats the flat kernel here.
    """
    dist: Dict[int, float] = {u: 0.0 for u in owned}
    heap: List[Tuple[float, int]] = [(0.0, u) for u in dist]
    heapq.heapify(heap)
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, float("inf")):
            continue
        for neighbor, weight in adjacency[node]:
            nd = d + weight
            if nd <= radius and nd < dist.get(neighbor,
                                              float("inf")):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return sorted(dist)


def partition_graph(dbg: DatabaseGraph, radius: float,
                    shards: int,
                    halo_radius: Optional[float] = None
                    ) -> PartitionResult:
    """Partition ``dbg`` into ``shards`` owned regions + halos.

    ``radius`` is the index radius R (every served ``Rmax`` must be
    ``<= R``, as with any snapshot); ``halo_radius`` defaults to the
    proven ``3R``. Each bundle's index is rebuilt at R over the shard
    subgraph.
    """
    if shards < 1:
        raise QueryError(f"need at least 1 shard, got {shards}")
    if shards > dbg.n:
        raise QueryError(
            f"cannot split {dbg.n} nodes into {shards} shards")
    if radius < 0:
        raise QueryError(f"radius must be >= 0, got {radius}")
    if halo_radius is None:
        halo_radius = DEFAULT_HALO_FACTOR * radius
    adjacency = _undirected_adjacency(dbg)
    order = _bfs_order(adjacency)

    owners = [0] * dbg.n
    chunks: List[List[int]] = []
    base, extra = divmod(dbg.n, shards)
    start = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        chunk = order[start:start + size]
        start += size
        for node in chunk:
            owners[node] = shard_id
        chunks.append(chunk)

    bundles: List[ShardBundle] = []
    for shard_id, chunk in enumerate(chunks):
        members = _halo_members(adjacency, chunk, halo_radius)
        sub, _ = dbg.induced_subgraph(members)
        index = CommunityIndex.build(sub, radius)
        bundles.append(ShardBundle(
            shard_id=shard_id, dbg=sub, index=index,
            node_map=members, owned=sorted(chunk)))
    return PartitionResult(bundles=bundles, owners=owners,
                           radius=float(radius),
                           halo_radius=float(halo_radius))


def partition_snapshot(source: PathLike, out_root: PathLike,
                       shards: int,
                       halo_radius: Optional[float] = None,
                       compress: bool = False,
                       verify: bool = True
                       ) -> Tuple[RoutingManifest, Path]:
    """Partition a published snapshot into a routed shard fleet.

    Loads the snapshot at ``source`` (a snapshot directory or store
    root), splits it with :func:`partition_graph`, publishes each
    shard through its own :class:`SnapshotStore` under
    ``out_root/shards/NN`` (atomic, content-addressed), and atomically
    writes ``out_root/routing.json``. Returns the manifest and its
    path. Re-partitioning reproduces the same regions and ownership
    map; shard snapshot ids differ per run because the rebuilt index
    embeds its build time.
    """
    snapshot = load_snapshot(locate_snapshot(source), verify=verify)
    if snapshot.index is None:
        raise SnapshotError(
            f"snapshot {snapshot.id} has no index; partition needs "
            f"one (rebuild with an index radius)")
    result = partition_graph(snapshot.dbg, snapshot.index.radius,
                             shards, halo_radius=halo_radius)
    out_root = Path(out_root)
    entries: List[ShardEntry] = []
    for bundle in result.bundles:
        store_rel = f"{SHARD_DIR}/{bundle.shard_id:02d}"
        store = SnapshotStore(out_root / store_rel)
        published = store.publish(
            bundle.dbg, bundle.index,
            provenance={
                "partition": {
                    "shard": bundle.shard_id,
                    "of": shards,
                    "source_snapshot": snapshot.id,
                    "halo_radius": result.halo_radius,
                },
                "dataset": snapshot.provenance.get("dataset"),
                "index_radius": result.radius,
            },
            compress=compress)
        entries.append(ShardEntry(
            shard_id=bundle.shard_id,
            snapshot_id=published.id,
            store=store_rel,
            node_map=bundle.node_map,
            owned_nodes=len(bundle.owned),
            counts=dict(published.counts),
            mappable=snapshot_is_mappable(published.manifest),
            bloom=KeywordBloom.build(
                bundle.index.node_index.keywords()),
        ))
    manifest = RoutingManifest(
        shards=entries, owners=result.owners,
        index_radius=result.radius, halo_radius=result.halo_radius,
        source_snapshot=snapshot.id,
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                 time.gmtime()))
    path = manifest.save(out_root)
    return manifest, path
