"""Replica-aware transport for the threaded router front end.

The routing layer (:mod:`repro.shard.routing`) decides *what* to ask
each shard; this module owns *how*: which sibling box answers, and on
how many threads the round fans out.

**Replica sets.** A shard may be served by several interchangeable
boxes (same shard snapshot, different machines). One
:class:`ReplicaSet` per shard holds a keep-alive
:class:`~repro.service.client.ServiceClient` per sibling and routes
every call to a sticky *active* replica; a transport-level failure or
a shedding response (429/503, after the client's own retries) fails
the call over to the next sibling before the router gives the shard
up as dead. Success on a sibling makes it the new active replica, so
a dead primary costs one failover per in-flight call, not one per
future call. Deterministic errors (400/404/410) propagate
immediately — a replica cannot fix a bad request.

**Fan-out pool.** :class:`ThreadedFanout` is the threaded front
end's concurrency primitive: run ``{shard_id: thunk}`` maps on a
shared pool, storing per-leg exceptions as values (a leg failure is
data — a partial result — not a router crash). The asyncio front end
(:mod:`repro.shard.aio`) replaces both classes with event-loop
equivalents while reusing the same routing core.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.errors import RETRYABLE_STATUSES


def parse_shard_urls(specs: Sequence[str]) -> List[List[str]]:
    """Expand ``--shard-url`` values into per-shard replica lists.

    Each spec names one shard's siblings as a comma-separated URL
    list (``"http://a:8420,http://b:8420"``); a bare URL is a
    replica set of one. Empty specs raise
    :class:`~repro.exceptions.ServiceError`.
    """
    groups: List[List[str]] = []
    for position, spec in enumerate(specs):
        urls = [url.strip().rstrip("/")
                for url in str(spec).split(",") if url.strip()]
        if not urls:
            raise ServiceError(
                f"shard URL #{position} is empty: every shard needs "
                f"at least one replica URL")
        groups.append(urls)
    return groups


def _should_failover(error: ServiceError) -> bool:
    """Whether a sibling replica could plausibly answer instead.

    Transport failures and shedding (429/503 — the retryable
    statuses) are box-local conditions; deterministic 4xx rejections
    are not."""
    return getattr(error, "status", 500) in RETRYABLE_STATUSES


class ReplicaSet:
    """One shard's interchangeable backends behind a sticky cursor."""

    def __init__(self, shard_id: int, urls: Sequence[str],
                 client_factory: Optional[
                     Callable[[str], ServiceClient]] = None,
                 on_failover: Optional[
                     Callable[[int, str, str], None]] = None) -> None:
        if not urls:
            raise ServiceError(
                f"shard {shard_id} has no replica URLs")
        factory = client_factory or ServiceClient
        self.shard_id = shard_id
        self.urls = [url.rstrip("/") for url in urls]
        self.clients = [factory(url) for url in self.urls]
        self._on_failover = on_failover
        self._active = 0
        self._lock = threading.Lock()
        #: Lifetime count of calls this set moved to a sibling.
        self.failovers = 0

    @property
    def active_url(self) -> str:
        """The replica currently receiving this shard's calls."""
        with self._lock:
            return self.urls[self._active]

    @property
    def url(self) -> str:
        """Alias for :attr:`active_url` (single-replica ergonomics)."""
        return self.active_url

    def call(self, fn: Callable[[ServiceClient], Any]) -> Any:
        """Run ``fn`` against the active replica, failing over.

        Tries every sibling at most once, starting at the sticky
        active cursor; a sibling that answers becomes the new active
        replica. Re-raises the last failure when the whole set is
        down, and propagates non-failover errors (deterministic 4xx)
        immediately.
        """
        with self._lock:
            start = self._active
        last: Optional[ServiceError] = None
        for offset in range(len(self.clients)):
            index = (start + offset) % len(self.clients)
            try:
                result = fn(self.clients[index])
            except ServiceError as error:
                if not _should_failover(error):
                    raise
                last = error
                if offset + 1 < len(self.clients):
                    with self._lock:
                        self.failovers += 1
                    if self._on_failover is not None:
                        self._on_failover(
                            self.shard_id, self.urls[index],
                            self.urls[(index + 1)
                                      % len(self.clients)])
                continue
            if index != start:
                with self._lock:
                    self._active = index
            return result
        assert last is not None
        raise last

    def close(self) -> None:
        """Release every replica client's pooled connections."""
        for client in self.clients:
            client.close()

    def __repr__(self) -> str:
        return (f"ReplicaSet({self.shard_id}, "
                f"{'|'.join(self.urls)!r})")


class ThreadedFanout:
    """A shared thread pool that fans per-shard thunks out."""

    def __init__(self, width: int,
                 thread_name_prefix: str = "repro-router-fanout"
                 ) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, width),
            thread_name_prefix=thread_name_prefix)

    def fan(self, calls: Dict[int, Callable[[], Any]]
            ) -> Dict[int, Any]:
        """Run per-shard thunks concurrently; exceptions propagate
        per entry as the stored value."""
        if not calls:
            return {}
        futures = {shard_id: self._pool.submit(thunk)
                   for shard_id, thunk in calls.items()}
        results: Dict[int, Any] = {}
        for shard_id, future in futures.items():
            try:
                results[shard_id] = future.result()
            except Exception as error:  # noqa: BLE001 — leg failure
                # is data (partial result), not a router crash.
                results[shard_id] = error
        return results

    def submit(self, thunk: Callable[[], Any]) -> Any:
        """Run one thunk on the pool (admin plane helper)."""
        return self._pool.submit(thunk)

    def shutdown(self) -> None:
        """Release the pool without waiting on stragglers."""
        self._pool.shutdown(wait=False)
