"""Transport-agnostic routing core shared by both router front ends.

:class:`RouterCore` is everything the scatter-gather router knows
that does **not** involve sockets or threads: validating query specs
against the manifest's keyword Blooms, building per-shard leg
payloads, globalizing and ownership-filtering shard answers,
interpreting a leg's reply as a :class:`~repro.shard.merge.
FetchResult`, assembling response envelopes with the partial-result
contract, aggregating health rows, adopting new manifest
generations, and rendering ``repro_router_*`` metrics. The threaded
front end (:mod:`repro.shard.router`) and the asyncio front end
(:mod:`repro.shard.aio`) both delegate here, so the two cannot
diverge on routing semantics — the only code they own is *how*
rounds fan out.

Every request handler captures the manifest **once** via
:meth:`RouterCore.capture` and threads it through the request: a
concurrent ``/admin/reload`` swapping :attr:`RouterCore.manifest`
mid-request can therefore never mix two generations' owner maps or
node maps inside one answer — the same capture-once discipline the
engine applies to snapshots.

:func:`reload_fleet` is the shared admin plane: the verify-then-
rollback manifest rollout, including the cross-box form that pushes
each shard's snapshot over the wire (:func:`~repro.service.http.
push_snapshot`) and reloads by snapshot id, so partition and serve
need no shared filesystem. It is deliberately synchronous — reloads
are rare; the asyncio front end runs it on an executor thread.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.community import Community
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError, ServiceError
from repro.service.errors import BadRequest
from repro.service.http import push_snapshot
from repro.service.metrics import ServiceMetrics
from repro.service.serialize import (
    communities_from_dicts,
    community_to_dict,
    spec_to_dict,
)
from repro.service.server import (
    _float_of,
    _int_of,
    _keywords_of,
    _parse_body,
)
from repro.shard.manifest import RoutingManifest
from repro.shard.merge import (
    FetchResult,
    MergeOutcome,
    filter_owned,
    globalize,
    merge_all,
)
from repro.shard.transport import ReplicaSet, parse_shard_urls

PathLike = Union[str, Path]

#: Default per-leg socket timeout (seconds). Shorter than the client
#: default: a hung shard should cost one partial result, not a stuck
#: router thread.
DEFAULT_SHARD_TIMEOUT = 10.0

#: Default idempotent-retry budget per shard leg (PR 5 semantics).
DEFAULT_SHARD_RETRIES = 2


class QueryPlan:
    """One parsed ``/query`` request, pinned to a manifest capture."""

    def __init__(self, manifest: RoutingManifest, spec: QuerySpec,
                 deadline: Optional[float], want_labels: bool,
                 eligible: List[int]) -> None:
        self.manifest = manifest
        self.spec = spec
        self.deadline = deadline
        self.want_labels = want_labels
        self.eligible = eligible
        #: Relabeled global node labels, filled while absorbing legs
        #: (``None`` when the caller did not ask for labels).
        self.labels: Optional[Dict[str, str]] = \
            {} if want_labels else None
        #: Shards whose legs answered from their result caches
        #: (``"cached": true`` in the leg envelope) — surfaced as
        #: ``shards_cached`` in the merged response.
        self.cached_shards: set = set()


class RouterCore:
    """The router's shared brain: policy, validation, bookkeeping."""

    def __init__(self, manifest: RoutingManifest,
                 root: Optional[PathLike] = None) -> None:
        self.manifest = manifest
        self.root = Path(root) if root is not None else None
        self.metrics = ServiceMetrics()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Bump a router counter (rendered with a ``_total`` suffix)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) \
                + value

    def gauge(self, name: str, value: float) -> None:
        """Set a router gauge."""
        with self._lock:
            self._gauges[name] = value

    def observe_leg(self, shard_id: int, status: int,
                    seconds: float) -> None:
        """Record one fan-out leg's latency under a per-shard label."""
        self.metrics.observe_request(f"shard:{shard_id:02d}", status,
                                     seconds)

    def note_failover(self, shard_id: int, from_url: str,
                      to_url: str) -> None:
        """Count one replica failover (the ``on_failover`` hook)."""
        self.count("failover")

    # ------------------------------------------------------------------
    # manifest lifecycle
    # ------------------------------------------------------------------
    def capture(self) -> RoutingManifest:
        """The manifest for one request — read once, used throughout."""
        with self._lock:
            return self.manifest

    def adopt(self, manifest: RoutingManifest,
              root: Path) -> None:
        """Switch to a freshly rolled-out manifest generation."""
        with self._lock:
            self.manifest = manifest
            if self.root is None:
                self.root = root

    # ------------------------------------------------------------------
    # request parsing
    # ------------------------------------------------------------------
    def spec_of(self, payload: Dict[str, Any],
                manifest: RoutingManifest) -> QuerySpec:
        """A validated :class:`QuerySpec` from one query payload."""
        keywords = _keywords_of(payload)
        rmax = _float_of(payload, "rmax")
        k = _int_of(payload, "k")
        mode = payload.get("mode") or ("topk" if k is not None
                                       else "all")
        spec = QuerySpec(
            tuple(keywords), rmax, mode=mode, k=k,
            algorithm=payload.get("algorithm", "pd"),
            aggregate=payload.get("aggregate", "sum"),
            budget_seconds=_float_of(payload, "budget_seconds",
                                     required=False))
        for keyword in spec.keywords:
            if not manifest.keyword_known(keyword):
                raise QueryError(
                    f"keyword {keyword!r} does not occur in the "
                    f"database")
        return spec

    def parse_query(self, body: bytes) -> QueryPlan:
        """Parse one ``/query`` body against a manifest capture."""
        manifest = self.capture()
        payload = _parse_body(body)
        spec = self.spec_of(payload, manifest)
        deadline = _float_of(payload, "deadline_seconds",
                             required=False)
        want_labels = bool(payload.get("labels", False))
        eligible = manifest.shards_for(spec.keywords)
        self.count("queries")
        return QueryPlan(manifest, spec, deadline, want_labels,
                         eligible)

    def parse_batch(self, body: bytes
                    ) -> Tuple[RoutingManifest, List[QueryPlan],
                               Optional[float], bool]:
        """Parse one ``/batch`` body into per-entry plans.

        All entries share one manifest capture — a batch must not
        straddle a reload either.
        """
        manifest = self.capture()
        payload = _parse_body(body)
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise BadRequest(
                "'queries' must be a non-empty list of query objects")
        if not all(isinstance(q, dict) for q in queries):
            raise BadRequest("every batch entry must be an object")
        deadline = _float_of(payload, "deadline_seconds",
                             required=False)
        want_labels = bool(payload.get("labels", False))
        plans = []
        for query in queries:
            spec = self.spec_of(query, manifest)
            plans.append(QueryPlan(
                manifest, spec, deadline, want_labels,
                manifest.shards_for(spec.keywords)))
        self.count("queries", len(plans))
        self.count("batches")
        return manifest, plans, deadline, want_labels

    # ------------------------------------------------------------------
    # leg payloads and leg interpretation
    # ------------------------------------------------------------------
    @staticmethod
    def shard_payload(spec: QuerySpec, k: Optional[int],
                      deadline: Optional[float],
                      labels: bool) -> Dict[str, Any]:
        """The ``/query`` body one shard leg carries."""
        payload: Dict[str, Any] = {
            "keywords": list(spec.keywords),
            "rmax": spec.rmax,
            "mode": spec.mode,
            "algorithm": spec.algorithm,
            "aggregate": spec.aggregate,
        }
        if k is not None:
            payload["k"] = k
        if deadline is not None:
            payload["deadline_seconds"] = deadline
        if labels:
            payload["labels"] = True
        return payload

    @staticmethod
    def leg_empty(result: Any) -> bool:
        """Whether a failed leg actually means "no answers here".

        A shard 400s an unknown keyword (Bloom false positive routed
        a query the shard cannot resolve); for the fleet that is an
        empty contribution, not an outage.
        """
        return isinstance(result, BadRequest)

    def absorb(self, plan: QueryPlan, shard_id: int,
               response: Dict[str, Any]) -> List[Community]:
        """Globalize + ownership-filter one leg's communities.

        Collects relabeled node labels into ``plan.labels`` when the
        caller asked shards for them.
        """
        entry = plan.manifest.shards[shard_id]
        if response.get("cached"):
            if shard_id not in plan.cached_shards:
                plan.cached_shards.add(shard_id)
                self.count("cached_legs")
        else:
            # A later (enlarged-k) round that recomputed unmarks the
            # shard: the envelope reports the final round's truth.
            plan.cached_shards.discard(shard_id)
        raw = response.get("communities", [])
        if plan.labels is not None:
            for community in raw:
                for local, label in community.get("labels",
                                                 {}).items():
                    plan.labels[str(entry.node_map[int(local)])] = \
                        label
        return filter_owned(
            globalize(communities_from_dicts(raw), entry.node_map),
            plan.manifest.owners, shard_id)

    def fetch_result(self, plan: QueryPlan, shard_id: int,
                     result: Any, want: int
                     ) -> Optional[FetchResult]:
        """Interpret one top-k leg's reply for the merge driver.

        ``result`` is a response dict or the error that killed the
        leg; ``None`` (a dead shard) degrades the merge to a partial
        answer.
        """
        if self.leg_empty(result):
            return FetchResult(kept=[], raw_count=0, exhausted=True)
        if not isinstance(result, dict):
            return None
        raw = result.get("communities", [])
        exhausted = len(raw) < want
        frontier = (float(raw[-1]["cost"])
                    if raw and not exhausted else None)
        return FetchResult(
            kept=self.absorb(plan, shard_id, result),
            raw_count=len(raw), exhausted=exhausted,
            frontier=frontier)

    def reduce_all(self, plan: QueryPlan,
                   responses: Dict[int, Any]
                   ) -> Tuple[List[Community], List[int], List[int]]:
        """Union one COMM-all fan-out round's leg replies."""
        answered: List[int] = []
        failed: List[int] = []
        per_shard: List[List[Community]] = []
        for shard_id in plan.eligible:
            result = responses[shard_id]
            if isinstance(result, dict):
                answered.append(shard_id)
                per_shard.append(self.absorb(plan, shard_id, result))
            elif self.leg_empty(result):
                answered.append(shard_id)
            else:
                failed.append(shard_id)
        return merge_all(per_shard), answered, failed

    # ------------------------------------------------------------------
    # response assembly
    # ------------------------------------------------------------------
    def note_topk(self, outcome: MergeOutcome) -> None:
        """Fold a merge drive's bookkeeping into the counters."""
        self.count("merge_rounds", outcome.rounds)
        self.count("merge_candidates", outcome.candidates)
        self.gauge("last_merge_depth", float(outcome.candidates))

    def note_partial(self, failed: List[int]) -> None:
        """Count a partial answer and its missing shards."""
        if failed:
            self.count("partial_results")
        self.count("shard_failures", len(failed))

    def envelope(self, plan: QueryPlan,
                 communities: List[Community],
                 answered: int,
                 elapsed: Optional[float] = None) -> Dict[str, Any]:
        """The router's ``/query`` response envelope.

        Single-box fields (``count``/``communities``/``query``) plus
        the partial-result contract: ``shards_total`` is how many
        shards the query needed, ``shards_answered`` how many
        delivered; ``partial`` flags any gap. Clients that cannot
        tolerate partial answers must check it — the status stays
        200. ``shards_cached`` lists the shards whose final legs were
        served from their result caches (``cached: true`` downstream).
        """
        labels = plan.labels
        rendered = []
        for community in communities:
            entry = community_to_dict(community)
            if labels is not None:
                entry["labels"] = {
                    str(u): labels[str(u)] for u in community.nodes
                    if str(u) in labels}
            rendered.append(entry)
        total = len(plan.eligible)
        envelope: Dict[str, Any] = {
            "count": len(rendered),
            "communities": rendered,
            "query": spec_to_dict(plan.spec),
            "shards_answered": answered,
            "shards_total": total,
            "partial": answered < total,
            "shards_cached": sorted(plan.cached_shards),
        }
        if elapsed is not None:
            envelope["elapsed_seconds"] = float(elapsed)
        return envelope

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health_payload(self, manifest: RoutingManifest,
                       replica_sets: List[ReplicaSet],
                       responses: Dict[Tuple[int, int], Any]
                       ) -> Dict[str, Any]:
        """``GET /healthz``: per-shard, per-replica rows + roll-up.

        ``responses`` maps ``(shard_id, replica_index)`` to a health
        dict or the error that made the replica unreachable. A shard
        is healthy when **any** replica answers ``ok`` on the
        manifest's expected snapshot; the fleet is ``ok`` only when
        every shard is healthy (a shard surviving on its last
        replica still rolls up ``ok`` — failover is the designed
        posture, coverage loss is not).
        """
        rows = []
        status = "ok"
        reachable = 0
        for replicas in replica_sets:
            shard_id = replicas.shard_id
            entry = manifest.shards[shard_id]
            replica_rows = []
            shard_ok = False
            shard_reachable = False
            for index, url in enumerate(replicas.urls):
                result = responses.get((shard_id, index))
                replica_row: Dict[str, Any] = {"url": url}
                if isinstance(result, dict):
                    shard_reachable = True
                    replica_row["status"] = result.get("status",
                                                       "ok")
                    replica_row["snapshot"] = result.get("snapshot")
                    replica_row["generation"] = \
                        result.get("generation")
                    if replica_row["status"] == "ok" \
                            and replica_row["snapshot"] \
                            == entry.snapshot_id:
                        shard_ok = True
                else:
                    replica_row["status"] = "unreachable"
                    replica_row["error"] = str(result)
                replica_rows.append(replica_row)
            if shard_reachable:
                reachable += 1
            # The shard-level row keeps the single-replica shape the
            # fleet tooling already parses, reported from the best
            # replica, plus the per-replica detail.
            best = next(
                (r for r in replica_rows
                 if r.get("status") == "ok"
                 and r.get("snapshot") == entry.snapshot_id),
                next((r for r in replica_rows
                      if r.get("status") != "unreachable"),
                     replica_rows[0]))
            row: Dict[str, Any] = {
                "shard": shard_id,
                "url": best["url"],
                "expected_snapshot": entry.snapshot_id,
                "status": best.get("status", "unreachable"),
                "replicas": replica_rows,
            }
            for field in ("snapshot", "generation", "error"):
                if field in best:
                    row[field] = best[field]
            if not shard_ok:
                status = "degraded"
                if row["status"] == "ok":
                    # Reachable but on the wrong artifact.
                    row["status"] = "degraded"
            rows.append(row)
        return {
            "status": status,
            "generation": manifest.generation,
            "shards_total": len(replica_sets),
            "shards_reachable": reachable,
            "shards": rows,
        }

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def render_metrics(self, replica_sets: List[ReplicaSet]) -> str:
        """One Prometheus scrape of the router.

        ``repro_router_*_total`` counters (fan-out legs, merge rounds
        and candidate depth, partial results, shard failures,
        replica failovers, reloads/rollbacks), fleet gauges, identity
        rows per shard replica, and per-shard fan-out latency
        histograms under ``path="shard:NN"``.
        """
        manifest = self.capture()
        with self._lock:
            counters = {
                f"repro_router_{name}_total": value
                for name, value in self._counters.items()}
            gauges = {
                f"repro_router_{name}": value
                for name, value in self._gauges.items()}
        counters.setdefault("repro_router_failover_total", 0.0)
        gauges["repro_router_shards"] = float(len(replica_sets))
        gauges["repro_router_replicas"] = float(
            sum(len(r.urls) for r in replica_sets))
        gauges["repro_router_manifest_nodes"] = float(
            manifest.total_nodes)
        infos: Dict[str, Any] = {
            "repro_router_manifest_info": {
                "generation": manifest.generation,
                "source_snapshot":
                    manifest.source_snapshot or "",
            },
            "repro_router_shard_info": [
                {
                    "shard": str(replicas.shard_id),
                    "url": url,
                    "active": str(url
                                  == replicas.active_url).lower(),
                    "snapshot_id":
                        manifest.shards[
                            replicas.shard_id].snapshot_id,
                }
                for replicas in replica_sets
                for url in replicas.urls],
        }
        return self.metrics.render(counters=counters, gauges=gauges,
                                   infos=infos)


# ----------------------------------------------------------------------
# the shared admin plane: verify-then-rollback fleet reload
# ----------------------------------------------------------------------
def reload_fleet(core: RouterCore,
                 replica_sets: List[ReplicaSet],
                 body: bytes) -> Dict[str, Any]:
    """``POST /admin/reload``: broadcast a manifest generation swap
    with rollback, optionally shipping snapshots cross-box.

    Re-reads ``routing.json`` (from the configured partition root or
    a ``path`` in the body), then walks every replica of every shard
    in order: record what it serves now, roll it onto the new
    manifest's shard snapshot, and verify it adopted the expected id.
    With ``{"transfer": true}`` the shard snapshot is first **pushed
    over the wire** into the replica's own store
    (checksum-verified section by section) and the reload addresses
    it by snapshot id — the cross-box path, requiring no shared
    filesystem. Any failure rolls every already-switched replica
    back to its recorded snapshot and leaves the router on the old
    manifest — the fleet is never left mixed-generation by a failed
    reload, matching the single-box PR 5 contract.
    """
    payload = _parse_body(body)
    source = payload.get("path") or core.root
    transfer = bool(payload.get("transfer", False))
    if source is None:
        raise BadRequest(
            "no partition root configured; start the router "
            "with one or supply 'path' in the body")
    root = Path(source)
    new_manifest = RoutingManifest.load(root)
    if len(new_manifest.shards) != len(replica_sets):
        raise BadRequest(
            f"new manifest names {len(new_manifest.shards)} "
            f"shards; this router fronts {len(replica_sets)}")
    old_manifest = core.capture()
    if new_manifest.generation == old_manifest.generation:
        return {"reloaded": False,
                "generation": old_manifest.generation,
                "shards": len(replica_sets)}
    previous: List[Tuple[int, int, Optional[str]]] = []
    try:
        for replicas in replica_sets:
            shard_id = replicas.shard_id
            entry = new_manifest.shards[shard_id]
            expected = entry.snapshot_id
            snapshot_dir = root / entry.store / expected
            for index, client in enumerate(replicas.clients):
                before = client.health().get("snapshot")
                # Recorded before the reload is issued: a replica
                # that adopts the wrong snapshot (and fails
                # verification below) must still be rolled back.
                previous.append((shard_id, index, before))
                if transfer:
                    push_snapshot(client, snapshot_dir)
                    reply = client.admin_reload(snapshot=expected)
                else:
                    reply = client.admin_reload(
                        path=str(root / entry.store))
                adopted = reply.get("snapshot")
                if adopted != expected:
                    raise ServiceError(
                        f"shard {shard_id} replica "
                        f"{replicas.urls[index]} adopted "
                        f"{adopted!r}, manifest expects "
                        f"{expected!r}")
    except Exception as error:  # noqa: BLE001 — any failed leg
        # triggers the fleet-wide rollback.
        core.count("reload_rollbacks")
        _rollback(core, old_manifest, replica_sets, previous)
        raise ServiceError(
            f"sharded reload failed and was rolled back: "
            f"{error}")
    core.adopt(new_manifest, root)
    core.count("reloads")
    return {
        "reloaded": True,
        "generation": new_manifest.generation,
        "shards": len(replica_sets),
        "transfer": transfer,
    }


def _rollback(core: RouterCore, old_manifest: RoutingManifest,
              replica_sets: List[ReplicaSet],
              previous: List[Tuple[int, int, Optional[str]]]
              ) -> None:
    """Point already-reloaded replicas back at their old snapshots.

    Best effort: reload by snapshot id first (works cross-box — the
    old artifact is still in the replica's store), falling back to a
    shared-filesystem path when the router has a partition root. A
    replica that cannot be rolled back (crashed mid-reload) is left
    for its own watchdog; the router still refuses to adopt the new
    manifest, so /healthz shows the mismatch against the old
    expectations.
    """
    for shard_id, index, snapshot_id in previous:
        if snapshot_id is None:
            continue
        client = replica_sets[shard_id].clients[index]
        try:
            client.admin_reload(snapshot=snapshot_id)
            continue
        except ServiceError:
            pass
        store = old_manifest.store_path(
            core.root, shard_id) if core.root is not None else None
        if store is None:
            continue
        try:
            client.admin_reload(path=str(store / snapshot_id))
        except ServiceError:
            continue


def build_replica_sets(manifest: RoutingManifest,
                       shard_urls: List[str],
                       core: RouterCore,
                       client_factory: Callable[[str], Any],
                       set_factory: Callable[..., Any] = ReplicaSet
                       ) -> List[Any]:
    """Validate ``--shard-url`` arity and build one set per shard.

    Raises :class:`~repro.exceptions.ServiceError` on a shard-count
    mismatch — at construction, so a misconfigured router dies at
    startup, not at first query. ``set_factory`` picks the replica-
    set flavor: the threaded :class:`~repro.shard.transport.
    ReplicaSet` (default) or the event-loop
    :class:`~repro.shard.aio.AsyncReplicaSet`.
    """
    groups = parse_shard_urls(shard_urls)
    if len(groups) != len(manifest.shards):
        raise ServiceError(
            f"manifest names {len(manifest.shards)} shards but "
            f"{len(groups)} shard URLs were supplied")
    return [
        set_factory(entry.shard_id, urls,
                    client_factory=client_factory,
                    on_failover=core.note_failover)
        for entry, urls in zip(manifest.shards, groups)]
