"""The cross-shard merge algebra: exact union and exact top-k.

These functions are transport-agnostic — the router drives them over
HTTP fetches, the property tests over in-process engines — so the
algorithm being exact can be tested without sockets.

**Ownership filtering.** Each shard answers with every community it
can see; only the shard owning a community's *anchor* (the minimum
global node id of its core) reports it exactly, because only that
shard's halo provably contains the whole neighborhood (see
:mod:`repro.shard.partition`). :func:`filter_owned` keeps exactly the
anchored answers, which is both the dedup and the correctness rule.

**COMM-all.** Union the filtered per-shard answers and sort by the
canonical ``(cost, core)`` key. An unsharded PDall enumerates in DFS
subspace order, which no merge can reproduce, so the sharded contract
is canonical ordering — clients comparing against a single box must
normalize ordering the same way (the CI smoke does).

**COMM-k.** Per-shard PDk streams emit in non-decreasing cost, so a
k-way merge by ``(cost, core)`` over the filtered streams is exact.
Because filtering discards an unknown prefix of each shard's raw
stream, the merge driver *overfetches*: ask every shard for ``k``,
and while a non-exhausted shard's frontier (the cost of its last raw
answer — no later answer can be cheaper) does not strictly clear the
merged k-th cost, double that shard's fetch size and re-ask. Queries
are stateless idempotent reads, so re-asking is always safe and the
router needs no per-shard sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.community import Community, community_sort_key

#: Hard cap on overfetch-doubling rounds; at 2^12 x k per shard any
#: real stream is exhausted. Reaching the cap returns the best merged
#: prefix found (and the outcome records the truncation).
MAX_ROUNDS = 12


def globalize(communities: Sequence[Community],
              node_map: Sequence[int]) -> List[Community]:
    """Translate shard-local answers into global ``G_D`` ids.

    ``node_map`` is the shard's dense local->global list; sequence
    indexing satisfies the mapping protocol :meth:`Community.relabel`
    needs.
    """
    return [c.relabel(node_map) for c in communities]


def filter_owned(communities: Sequence[Community],
                 owners: Sequence[int],
                 shard_id: int) -> List[Community]:
    """Keep the communities whose anchor ``shard_id`` owns.

    Expects *global* ids (apply :func:`globalize` first). Preserves
    input order, so a cost-ordered stream stays cost-ordered.
    """
    return [c for c in communities
            if owners[min(c.core)] == shard_id]


def merge_all(per_shard: Sequence[Sequence[Community]]
              ) -> List[Community]:
    """Exact COMM-all union in canonical ``(cost, core)`` order.

    Inputs must already be globalized and ownership-filtered; anchors
    have unique owners, so the union is duplicate-free by
    construction (a duplicate core would mean two shards both claimed
    ownership — asserted away in tests, tolerated here by keeping the
    first).
    """
    merged: Dict[tuple, Community] = {}
    for answers in per_shard:
        for community in answers:
            merged.setdefault(community.core, community)
    return sorted(merged.values(), key=community_sort_key)


@dataclass
class FetchResult:
    """One shard's reply to "give me your first ``want`` answers".

    ``kept`` must be globalized, ownership-filtered, and in the
    shard's emission (cost) order. ``raw_count`` is how many answers
    the shard returned *before* filtering; ``exhausted`` means the
    shard has no further answers beyond those; ``frontier`` is the
    cost of the last raw answer when the shard may still hold more
    (every unseen answer costs at least the frontier), ``None`` when
    exhausted.
    """

    kept: List[Community]
    raw_count: int
    exhausted: bool
    frontier: Optional[float] = None


#: The merge driver's view of the fleet: given ``{shard_id: want}``,
#: return ``{shard_id: FetchResult_or_None}`` — ``None`` when that
#: shard failed (timeout, crash, unreachable), which degrades the
#: answer to a partial result instead of erroring. Implementations
#: may fan the round out concurrently (the router does).
FetchManyFn = Callable[[Dict[int, int]],
                       Dict[int, Optional[FetchResult]]]


def fetch_many_from(fetch: Callable[[int, int],
                                    Optional[FetchResult]]
                    ) -> FetchManyFn:
    """Adapt a per-shard ``fetch(shard_id, want)`` to the batched
    interface (sequential; tests and in-process callers use this)."""
    def fan(wants: Dict[int, int]
            ) -> Dict[int, Optional[FetchResult]]:
        """One sequential round of fetches."""
        return {shard_id: fetch(shard_id, want)
                for shard_id, want in wants.items()}
    return fan


@dataclass
class MergeOutcome:
    """A merged top-k plus the bookkeeping the router reports."""

    #: The merged, globally ordered answer prefix.
    communities: List[Community]
    #: Shard ids that answered every fetch asked of them.
    answered: List[int]
    #: Shard ids that failed at least one fetch.
    failed: List[int]
    #: Overfetch rounds driven (1 = no re-ask needed).
    rounds: int = 1
    #: Total candidate answers inspected across shards (merge depth).
    candidates: int = 0
    #: True when :data:`MAX_ROUNDS` stopped the overfetch loop before
    #: the exactness condition held (pathological; answer may miss
    #: equal-cost tail entries).
    truncated: bool = False
    #: Per-shard fetch sizes at the end of the drive (observability).
    fetch_sizes: Dict[int, int] = field(default_factory=dict)


class TopKMerge:
    """Sans-IO driver for the exact overfetch-doubling top-k merge.

    The exactness policy lives here once; transports own only the
    fetching. A caller alternates :meth:`next_round` (which wants to
    ask, and for how much) with :meth:`feed` (what came back) until
    :attr:`done` flips true, then reads :meth:`outcome`.
    The threaded router fans a round out over its worker pool, the
    asyncio router over ``asyncio.gather`` — both drive the identical
    state machine, so the two front ends cannot diverge on merge
    policy.

    Exactness condition: the merged k-th answer's cost must be
    *strictly* below every live shard's frontier (ties at the
    boundary force another round, so a cheaper-or-equal answer hidden
    behind a shard's filtered prefix can never be missed). Shards
    whose fetch fails (``feed`` value ``None``) are dropped from the
    merge and reported in ``failed`` — the caller decides how to
    surface partiality.
    """

    def __init__(self, shard_ids: Sequence[int], k: int,
                 max_rounds: int = MAX_ROUNDS) -> None:
        self.shard_ids = list(shard_ids)
        self.k = k
        self.max_rounds = max_rounds
        self._want: Dict[int, int] = {s: k for s in self.shard_ids}
        self._results: Dict[int, Optional[FetchResult]] = {}
        self._pending: List[int] = list(self.shard_ids)
        self._rounds = 0
        self._truncated = False
        self._done = False
        self._top: List[Community] = []
        self._live: Dict[int, FetchResult] = {}

    @property
    def done(self) -> bool:
        """True once the exactness condition holds (or the round cap
        tripped) — the drive loop's termination signal."""
        return self._done

    def next_round(self) -> Dict[int, int]:
        """``{shard_id: want}`` for the next fetch round (empty on an
        empty fleet — feed ``{}`` back; the round still counts)."""
        return {s: self._want[s] for s in self._pending}

    def feed(self, results: Dict[int, Optional[FetchResult]]) -> None:
        """Absorb one round of fetch results and advance the state."""
        self._rounds += 1
        self._results.update(results)
        self._live = {s: r for s, r in self._results.items()
                      if r is not None}
        candidates = sorted(
            (c for r in self._live.values() for c in r.kept),
            key=community_sort_key)
        self._top = candidates[:self.k]
        if len(self._top) == self.k:
            boundary = self._top[-1].cost
            needy = [s for s, r in self._live.items()
                     if not r.exhausted and r.frontier is not None
                     and r.frontier <= boundary]
        else:
            needy = [s for s, r in self._live.items()
                     if not r.exhausted]
        if not needy:
            self._pending = []
            self._done = True
            return
        if self._rounds >= self.max_rounds:
            self._pending = []
            self._truncated = True
            self._done = True
            return
        for shard_id in needy:
            self._want[shard_id] *= 2
        self._pending = needy

    def outcome(self) -> MergeOutcome:
        """The merged answer plus bookkeeping, once the drive is done."""
        failed = [s for s in self.shard_ids
                  if self._results.get(s) is None]
        return MergeOutcome(
            communities=self._top,
            answered=[s for s in self.shard_ids if s not in failed],
            failed=failed,
            rounds=self._rounds,
            candidates=sum(r.raw_count for r in self._live.values()),
            truncated=self._truncated,
            fetch_sizes=dict(self._want),
        )


def merge_top_k(fetch_many: FetchManyFn, shard_ids: Sequence[int],
                k: int, max_rounds: int = MAX_ROUNDS
                ) -> MergeOutcome:
    """Drive :class:`TopKMerge` over a synchronous ``fetch_many``."""
    merge = TopKMerge(shard_ids, k, max_rounds=max_rounds)
    while not merge.done:
        merge.feed(fetch_many(merge.next_round()))
    return merge.outcome()
