"""Sharded scatter-gather serving: partition, route, merge.

``repro.shard`` is the horizontal-scaling tier on top of the snapshot
lifecycle. One published snapshot is split into K *shard snapshots*
(:mod:`repro.shard.partition`), each a complete, independently
servable artifact covering one owned region of ``G_D`` plus the halo
of context nodes its queries can reach. A JSON *routing manifest*
(:mod:`repro.shard.manifest`) records the shard table, the node
ownership map, and per-shard keyword Bloom summaries. A stateless
*router* (:mod:`repro.shard.router`) fans queries out to per-shard
backends over the existing :class:`~repro.service.ServiceClient` and
reassembles exact answers with the merge algebra of
:mod:`repro.shard.merge`: PDk streams are combined by k-way
merge-by-cost (exact, because each shard enumerates in non-decreasing
cost order), PDall answers by ownership-filtered union.

The correctness backbone is *anchor ownership*: every community is
uniquely determined by its core, each core has one anchor (its
minimum global node id), and each anchor has exactly one owning
shard. Shards answer with everything they can see; the router keeps
an answer only from the shard that owns its anchor, which makes the
union both duplicate-free and exact — the owning shard's halo is wide
enough (3R by default) to reproduce the community bit-for-bit.
"""

from repro.shard.manifest import (
    ROUTING_NAME,
    KeywordBloom,
    RoutingManifest,
    ShardEntry,
    is_routing_root,
)
from repro.shard.merge import (
    FetchResult,
    MergeOutcome,
    TopKMerge,
    fetch_many_from,
    filter_owned,
    globalize,
    merge_all,
    merge_top_k,
)
from repro.shard.partition import (
    PartitionResult,
    ShardBundle,
    partition_graph,
    partition_snapshot,
)
from repro.shard.router import RouterService
from repro.shard.routing import RouterCore, reload_fleet
from repro.shard.transport import ReplicaSet, parse_shard_urls

__all__ = [
    "ROUTING_NAME",
    "KeywordBloom",
    "RoutingManifest",
    "ShardEntry",
    "is_routing_root",
    "FetchResult",
    "MergeOutcome",
    "TopKMerge",
    "fetch_many_from",
    "filter_owned",
    "globalize",
    "merge_all",
    "merge_top_k",
    "PartitionResult",
    "ShardBundle",
    "partition_graph",
    "partition_snapshot",
    "RouterService",
    "RouterCore",
    "reload_fleet",
    "ReplicaSet",
    "parse_shard_urls",
]
