"""The asyncio scatter-gather router front end.

Event-loop siblings of the threaded transport stack, sharing every
line of routing *policy* with :mod:`repro.shard.router` through
:class:`~repro.shard.routing.RouterCore`:

* :class:`AsyncShardClient` — a dependency-free HTTP/1.1 client over
  raw :func:`asyncio.open_connection`, with the same keep-alive
  pooling, retry/backoff policy, stale-socket replay, and error
  taxonomy as :class:`~repro.service.client.ServiceClient`. Every
  exchange runs under :func:`asyncio.wait_for`, so one hung shard
  costs one leg's deadline, never a blocked thread.
* :class:`AsyncReplicaSet` — per-shard replica failover with the
  sticky active cursor of :class:`~repro.shard.transport.ReplicaSet`.
* :class:`AsyncRouterService` — an ``asyncio.start_server`` front end
  serving the same endpoints and envelopes as the threaded
  :class:`~repro.shard.router.RouterService`. Fan-out legs are
  ``asyncio.gather`` calls, so a round's concurrency is bounded by
  the fleet, not a thread pool; overfetch rounds drive the sans-IO
  :class:`~repro.shard.merge.TopKMerge` state machine, issuing each
  round's refetches concurrently. The admin plane
  (``/admin/reload``, including the cross-box ``transfer`` mode)
  reuses the synchronous :func:`~repro.shard.routing.reload_fleet`
  on an executor thread — reloads are rare and must not fork the
  verify-then-rollback logic into a second implementation.

Why a second front end: the threaded router spends a thread per
in-flight leg, so a fan-out of ``shards x replicas x concurrent
clients`` legs is bounded by pool width and pays context-switch
overhead per leg. The event loop multiplexes every leg on one
thread; both front ends return byte-identical answers (the
integration tests assert it), so operators choose per deployment
with ``serve-router --async``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import ssl as ssl_module
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Any, Awaitable, Callable, Dict, List, Optional, \
    Tuple, Union

from repro.exceptions import QueryError, ServiceError, WorkerError
from repro.service.client import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_TIMEOUT,
    POOL_CAP,
    ServiceClient,
    _retry_after_of,
)
from repro.service.errors import (
    RETRYABLE_STATUSES,
    NotFound,
    ServiceUnreachable,
    for_status,
)
from repro.service.server import (
    JSON_CONTENT_TYPE,
    METRICS_CONTENT_TYPE,
    RETRY_AFTER_SECONDS,
    Response,
)
from repro.shard.manifest import RoutingManifest
from repro.shard.merge import FetchResult, MergeOutcome, TopKMerge
from repro.shard.routing import (
    DEFAULT_SHARD_RETRIES,
    DEFAULT_SHARD_TIMEOUT,
    QueryPlan,
    RouterCore,
    build_replica_sets,
    reload_fleet,
)
from repro.shard.transport import _should_failover

PathLike = Union[str, Path]

#: Connection-level failures that, on a *reused* keep-alive stream
#: with no response bytes seen, prove the server closed the idle
#: connection before our request — safe to replay once on a fresh
#: connection regardless of idempotency (the async mirror of
#: ``ServiceClient._STALE_SOCKET_ERRORS``).
_STALE_STREAM_ERRORS = (
    http.client.RemoteDisconnected,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)

#: Errors that tear one physical exchange (mapped to
#: :class:`~repro.service.errors.ServiceUnreachable` when not a
#: stale-socket replay). ``TimeoutError`` covers
#: ``asyncio.wait_for`` deadline hits on every supported Python.
_TORN_STREAM_ERRORS = (
    OSError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    EOFError,
)


class _Stream:
    """One pooled keep-alive connection (reader/writer pair)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    def close(self) -> None:
        """Abort the transport (no graceful drain — pool discard)."""
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 — already-dead transports
            # must not break pool cleanup.
            pass


class AsyncShardClient:
    """Async keep-alive HTTP client with ServiceClient's semantics.

    Same base-URL surface, retry policy (429/503 with capped
    exponential backoff + jitter, ``Retry-After`` honored),
    idempotency gating of connection-error retries, stale-socket
    single replay, error taxonomy, and ``connections_opened``
    telemetry as :class:`~repro.service.client.ServiceClient` — but
    every blocking point is an ``await``, and the per-call
    ``timeout`` is enforced with :func:`asyncio.wait_for` per
    physical exchange. Instances belong to one event loop.
    """

    def __init__(self, base_url: str,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 0,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 retry_seed: Optional[int] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(retry_seed)
        #: Lifetime count of retry sleeps this client performed.
        self.retries_performed = 0
        #: Lifetime count of physical TCP connects (reuse telemetry).
        self.connections_opened = 0
        split = urllib.parse.urlsplit(self.base_url)
        self._scheme = split.scheme or "http"
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or (443 if self._scheme == "https"
                                    else 80)
        self._base_path = split.path.rstrip("/")
        self._ssl = (ssl_module.create_default_context()
                     if self._scheme == "https" else None)
        self._pool: List[_Stream] = []

    async def aclose(self) -> None:
        """Close every pooled keep-alive connection (idempotent)."""
        pool, self._pool = self._pool, []
        for stream in pool:
            stream.close()

    # ------------------------------------------------------------------
    # plumbing (the async mirror of ServiceClient's)
    # ------------------------------------------------------------------
    async def request(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None,
                      idempotent: Optional[bool] = None) -> Any:
        """One logical HTTP exchange; JSON in, JSON (or text) out.

        Semantics identical to
        :meth:`~repro.service.client.ServiceClient.request`; see
        there for the retry and idempotency contract.
        """
        data = None
        content_type = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        _, headers, body = await self._with_retries(
            method, path, data, content_type, idempotent)
        text = body.decode("utf-8")
        if headers.get("Content-Type", "").startswith(
                "application/json"):
            return json.loads(text)
        return text

    async def _with_retries(self, method: str, path: str,
                            data: Optional[bytes],
                            content_type: Optional[str],
                            idempotent: Optional[bool]
                            ) -> Tuple[int, Dict[str, str], bytes]:
        """The shared retry loop around one logical exchange."""
        if idempotent is None:
            idempotent = method.upper() != "POST"
        attempt = 0
        while True:
            try:
                return await self._attempt(method, path, data,
                                           content_type)
            except ServiceError as error:
                status = getattr(error, "status", 500)
                retryable = status in RETRYABLE_STATUSES
                if isinstance(error, ServiceUnreachable) \
                        and not idempotent:
                    retryable = False
                if attempt >= self.retries or not retryable:
                    raise
                await asyncio.sleep(self._backoff(
                    attempt, getattr(error, "retry_after", None)))
                self.retries_performed += 1
                attempt += 1

    def _backoff(self, attempt: int,
                 retry_after: Optional[float]) -> float:
        """Delay before retry ``attempt + 1`` (Retry-After wins)."""
        if retry_after is not None:
            return max(0.0, retry_after)
        cap = min(self.backoff_cap,
                  self.backoff_base * (2.0 ** attempt))
        return cap * self._rng.random()

    async def _attempt(self, method: str, path: str,
                       data: Optional[bytes],
                       content_type: Optional[str]
                       ) -> Tuple[int, Dict[str, str], bytes]:
        """One logical exchange on a kept-alive stream.

        A stale-socket failure on a *reused* stream (the server
        closed it while idle, before any response bytes) is replayed
        exactly once on a fresh connection; every other torn
        exchange maps to :class:`ServiceUnreachable` for the outer
        retry policy.
        """
        stream, reused = await self._checkout()
        try:
            status, headers, body = await asyncio.wait_for(
                self._roundtrip(stream, method, path, data,
                                content_type),
                timeout=self.timeout)
        except _STALE_STREAM_ERRORS as error:
            stream.close()
            if not reused:
                raise self._unreachable(error) from None
            stream, _ = await self._checkout(fresh=True)
            try:
                status, headers, body = await asyncio.wait_for(
                    self._roundtrip(stream, method, path, data,
                                    content_type),
                    timeout=self.timeout)
            except _TORN_STREAM_ERRORS as err:
                stream.close()
                raise self._unreachable(err) from None
        except _TORN_STREAM_ERRORS as error:
            stream.close()
            raise self._unreachable(error) from None
        if headers.get("Connection", "").lower() == "close":
            stream.close()
        else:
            self._checkin(stream)
        if 200 <= status < 300:
            return status, headers, body
        text = body.decode("utf-8", "replace")
        try:
            message = json.loads(text).get("error", text)
        except (ValueError, AttributeError):
            message = text or f"HTTP {status}"
        raised = for_status(status, message)
        raised.retry_after = _retry_after_of(headers)
        raise raised from None

    async def _roundtrip(self, stream: _Stream, method: str,
                         path: str, data: Optional[bytes],
                         content_type: Optional[str]
                         ) -> Tuple[int, Dict[str, str], bytes]:
        """One physical request/response on ``stream``.

        The body is always fully read so the stream is clean for the
        next exchange. An EOF before the status line raises
        ``RemoteDisconnected`` (the stale-keep-alive signature);
        an EOF mid-response raises ``IncompleteReadError`` (torn).
        """
        body = data or b""
        head = (f"{method} {self._base_path + path} HTTP/1.1\r\n"
                f"Host: {self._host}:{self._port}\r\n"
                f"Accept: application/json\r\n"
                f"Connection: keep-alive\r\n"
                f"Content-Length: {len(body)}\r\n")
        if content_type is not None:
            head += f"Content-Type: {content_type}\r\n"
        stream.writer.write(head.encode("latin-1") + b"\r\n" + body)
        await stream.writer.drain()
        line = await stream.reader.readline()
        if not line:
            raise http.client.RemoteDisconnected(
                "server closed idle keep-alive connection")
        try:
            status = int(line.decode("latin-1").split(None, 2)[1])
        except (IndexError, ValueError, UnicodeDecodeError):
            raise http.client.BadStatusLine(
                line.decode("latin-1", "replace"))
        headers: Dict[str, str] = {}
        while True:
            line = await stream.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise asyncio.IncompleteReadError(b"", None)
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().title()] = value.strip()
        length = headers.get("Content-Length")
        if length is not None:
            payload = await stream.reader.readexactly(int(length))
        else:
            # No framing info: the server will close to delimit.
            payload = await stream.reader.read()
            headers["Connection"] = "close"
        return status, headers, payload

    async def _checkout(self, fresh: bool = False
                        ) -> Tuple[_Stream, bool]:
        """A stream to the base host: pooled (reused) or new."""
        if not fresh and self._pool:
            return self._pool.pop(), True
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port,
                                        ssl=self._ssl),
                timeout=self.timeout)
        except _TORN_STREAM_ERRORS as error:
            raise self._unreachable(error) from None
        self.connections_opened += 1
        return _Stream(reader, writer), False

    def _checkin(self, stream: _Stream) -> None:
        """Return a clean stream to the idle pool (cap-bounded)."""
        if len(self._pool) < POOL_CAP:
            self._pool.append(stream)
            return
        stream.close()

    def _unreachable(self, error: Exception) -> ServiceUnreachable:
        """Map a connection-level failure onto the error taxonomy."""
        if isinstance(error, (ConnectionRefusedError,
                              socket.gaierror)):
            raised = ServiceUnreachable(
                f"cannot reach {self.base_url}: {error}")
        elif isinstance(error, (asyncio.TimeoutError, TimeoutError)):
            raised = ServiceUnreachable(
                f"request to {self.base_url} exceeded the "
                f"{self.timeout}s leg timeout")
        else:
            raised = ServiceUnreachable(
                f"connection to {self.base_url} failed "
                f"mid-request: {error}")
        raised.retry_after = None
        return raised

    # ------------------------------------------------------------------
    # endpoints the router needs
    # ------------------------------------------------------------------
    async def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return await self.request("GET", "/healthz")

    def __repr__(self) -> str:
        return f"AsyncShardClient({self.base_url!r})"


class AsyncReplicaSet:
    """Event-loop sibling of :class:`~repro.shard.transport.ReplicaSet`.

    Same sticky-active-cursor failover contract — each sibling tried
    at most once per call, success promotes the answering sibling,
    deterministic 4xx propagate immediately — with an awaitable
    ``call``. No locks: instances belong to one event loop.
    """

    def __init__(self, shard_id: int, urls: List[str],
                 client_factory: Optional[
                     Callable[[str], AsyncShardClient]] = None,
                 on_failover: Optional[
                     Callable[[int, str, str], None]] = None) -> None:
        if not urls:
            raise ServiceError(
                f"shard {shard_id} has no replica URLs")
        factory = client_factory or AsyncShardClient
        self.shard_id = shard_id
        self.urls = [url.rstrip("/") for url in urls]
        self.clients = [factory(url) for url in self.urls]
        self._on_failover = on_failover
        self._active = 0
        #: Lifetime count of calls this set moved to a sibling.
        self.failovers = 0

    @property
    def active_url(self) -> str:
        """The replica currently receiving this shard's calls."""
        return self.urls[self._active]

    async def call(self, fn: Callable[[AsyncShardClient],
                                      Awaitable[Any]]) -> Any:
        """Run ``fn`` against the active replica, failing over."""
        start = self._active
        last: Optional[ServiceError] = None
        for offset in range(len(self.clients)):
            index = (start + offset) % len(self.clients)
            try:
                result = await fn(self.clients[index])
            except ServiceError as error:
                if not _should_failover(error):
                    raise
                last = error
                if offset + 1 < len(self.clients):
                    self.failovers += 1
                    if self._on_failover is not None:
                        self._on_failover(
                            self.shard_id, self.urls[index],
                            self.urls[(index + 1)
                                      % len(self.clients)])
                continue
            if index != start:
                self._active = index
            return result
        assert last is not None
        raise last

    async def aclose(self) -> None:
        """Release every replica client's pooled connections."""
        for client in self.clients:
            await client.aclose()

    def __repr__(self) -> str:
        return (f"AsyncReplicaSet({self.shard_id}, "
                f"{'|'.join(self.urls)!r})")


class AsyncRouterService:
    """Event-loop scatter-gather front end over a shard fleet.

    Endpoint-for-endpoint and byte-for-byte compatible with the
    threaded :class:`~repro.shard.router.RouterService` (same
    constructor signature, same envelopes, same metrics names); only
    the transport differs. :meth:`start` runs the event loop on a
    background thread so tests and embedders drive it exactly like
    the threaded service; :meth:`serve_forever` runs it on the
    calling thread for the CLI.

    The data plane (``/query``, ``/batch``, ``/healthz``) is fully
    async over :class:`AsyncReplicaSet` fan-outs. The admin plane
    (``/admin/reload``) delegates to the shared synchronous
    :func:`~repro.shard.routing.reload_fleet` on an executor thread,
    over a parallel set of synchronous
    :class:`~repro.service.client.ServiceClient` replicas — one
    implementation of verify-then-rollback, two front ends.
    """

    def __init__(self, manifest: RoutingManifest,
                 shard_urls: List[str],
                 root: Optional[PathLike] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
                 shard_retries: int = DEFAULT_SHARD_RETRIES,
                 retry_seed: Optional[int] = None) -> None:
        self.core = RouterCore(manifest, root=root)
        self.replica_sets = build_replica_sets(
            manifest, shard_urls, self.core,
            lambda url: AsyncShardClient(
                url, timeout=shard_timeout, retries=shard_retries,
                retry_seed=retry_seed),
            set_factory=AsyncReplicaSet)
        # The admin plane runs the shared synchronous reload logic on
        # an executor thread; it needs blocking clients.
        self._admin_replicas = build_replica_sets(
            manifest, shard_urls, self.core,
            lambda url: ServiceClient(
                url, timeout=shard_timeout, retries=shard_retries,
                retry_seed=retry_seed))
        self._host_arg = host
        self._port_arg = port
        self._bound: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    @property
    def manifest(self) -> RoutingManifest:
        """The live routing manifest (current generation)."""
        return self.core.capture()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface."""
        if self._bound is None:
            raise ServiceError("async router is not serving yet")
        return self._bound[0]

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        if self._bound is None:
            raise ServiceError("async router is not serving yet")
        return self._bound[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncRouterService":
        """Serve the event loop on a background thread."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, daemon=True,
                name="repro-router-aio")
            self._thread.start()
            if not self._ready.wait(timeout=10.0):
                raise ServiceError(
                    "async router failed to start within 10s")
            if self._startup_error is not None:
                raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._run_loop()

    def _run_loop(self) -> None:
        """Own one event loop for the server's whole lifetime."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        """Bind, publish readiness, serve until told to stop."""
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._serve_connection, self._host_arg,
                self._port_arg)
        except OSError as error:
            self._startup_error = ServiceError(
                f"cannot bind async router on "
                f"{self._host_arg}:{self._port_arg}: {error}")
            self._ready.set()
            return
        name = server.sockets[0].getsockname()
        self._bound = (name[0], name[1])
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            # Idle keep-alive connections park a task in readline;
            # cancel them so the loop drains instead of destroying
            # pending tasks at close.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            for replicas in self.replica_sets:
                await replicas.aclose()

    def shutdown(self) -> None:
        """Stop serving, join the loop thread, release clients."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass                         # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._loop = None
        for replicas in self._admin_replicas:
            replicas.close()

    def __enter__(self) -> "AsyncRouterService":
        """Context-manager entry (the server need not be started)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: always shut down."""
        self.shutdown()

    # ------------------------------------------------------------------
    # the asyncio HTTP/1.1 front end
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter
                                ) -> None:
        """One client connection: keep-alive request loop."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, req_headers, body = request
                status, _, payload, content_type = \
                    await self.handle_async(method, path, body)
                close = (req_headers.get("Connection", "")
                         .lower() == "close")
                data = (payload if isinstance(payload, bytes)
                        else payload.encode("utf-8"))
                reason = http.client.responses.get(status, "")
                head = (f"HTTP/1.1 {status} {reason}\r\n"
                        f"Content-Type: {content_type}\r\n"
                        f"Content-Length: {len(data)}\r\n")
                if status in (429, 503):
                    head += f"Retry-After: {RETRY_AFTER_SECONDS}\r\n"
                head += ("Connection: close\r\n" if close
                         else "Connection: keep-alive\r\n")
                writer.write(head.encode("latin-1") + b"\r\n" + data)
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass                  # client went away / shutdown
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — transport teardown
                # must never surface through the accept loop.
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str,
                                                Dict[str, str],
                                                bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _ = \
                line.decode("latin-1").split(None, 2)
        except (ValueError, UnicodeDecodeError):
            raise ConnectionResetError("malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().title()] = value.strip()
        length = int(headers.get("Content-Length", 0) or 0)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # ------------------------------------------------------------------
    # request handling (same ladder as the threaded front end)
    # ------------------------------------------------------------------
    async def handle_async(self, method: str, path: str,
                           body: bytes) -> Response:
        """Serve one request; never raises."""
        start = time.perf_counter()
        parts = tuple(p for p in path.split("?", 1)[0].split("/")
                      if p)
        template = "/" + "/".join(parts[:2]) if parts else "/"
        try:
            template, result, content_type = await self._route(
                method, parts, body)
            status, payload = 200, result
        except ServiceError as error:
            status = error.status
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except (QueryError, WorkerError) as error:
            status = 400 if isinstance(error, QueryError) else 503
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except Exception as error:  # noqa: BLE001 — boundary: any bug
            # becomes a 500 response rather than a dead connection.
            status = 500
            payload = json.dumps({"error": str(error),
                                  "status": 500})
            content_type = JSON_CONTENT_TYPE
        self.core.metrics.observe_request(
            template, status, time.perf_counter() - start)
        return status, template, payload, content_type

    async def _route(self, method: str, parts: Tuple[str, ...],
                     body: bytes) -> Tuple[str, str, str]:
        """Dispatch to a handler; returns (template, body, type)."""
        if method == "GET" and parts == ("metrics",):
            return "/metrics", \
                self.core.render_metrics(self.replica_sets), \
                METRICS_CONTENT_TYPE
        if method == "GET" and parts == ("healthz",):
            return "/healthz", json.dumps(await self._health()), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("query",):
            return "/query", json.dumps(await self._query(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("batch",):
            return "/batch", json.dumps(await self._batch(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("admin", "reload"):
            loop = asyncio.get_running_loop()
            reply = await loop.run_in_executor(
                None, reload_fleet, self.core,
                self._admin_replicas, body)
            return "/admin/reload", json.dumps(reply), \
                JSON_CONTENT_TYPE
        raise NotFound(f"no route {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------------
    # fan-out plumbing
    # ------------------------------------------------------------------
    @staticmethod
    async def _fan(calls: Dict[Any, Awaitable[Any]]
                   ) -> Dict[Any, Any]:
        """Await per-shard coroutines concurrently; exceptions
        propagate per entry as the stored value."""
        keys = list(calls)
        results = await asyncio.gather(
            *(calls[key] for key in keys), return_exceptions=True)
        return dict(zip(keys, results))

    async def _leg_query(self, shard_id: int,
                         payload: Dict[str, Any]) -> Any:
        """One ``POST /query`` leg; returns the response dict, or
        the error that killed the leg (after client retries and
        replica failover)."""
        replicas = self.replica_sets[shard_id]
        self.core.count("fanout_legs")
        start = time.perf_counter()
        try:
            response = await replicas.call(
                lambda client: client.request(
                    "POST", "/query", payload, idempotent=True))
            self.core.observe_leg(shard_id, 200,
                                  time.perf_counter() - start)
            return response
        except ServiceError as error:
            self.core.observe_leg(shard_id,
                                  getattr(error, "status", 500),
                                  time.perf_counter() - start)
            return error

    async def _fetch_one(self, plan: QueryPlan, shard_id: int,
                         want: int) -> Optional[FetchResult]:
        """Fetch + filter one shard's first ``want`` answers."""
        payload = self.core.shard_payload(
            plan.spec, want, plan.deadline, plan.want_labels)
        result = await self._leg_query(shard_id, payload)
        return self.core.fetch_result(plan, shard_id, result, want)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _query(self, body: bytes) -> Dict[str, Any]:
        """``POST /query``: scatter, filter, merge, gather."""
        plan = self.core.parse_query(body)
        start = time.perf_counter()
        if plan.spec.mode == "topk":
            outcome = await self._merged_top_k(plan)
            communities = outcome.communities
            answered, failed = outcome.answered, outcome.failed
            self.core.note_topk(outcome)
        else:
            communities, answered, failed = \
                await self._merged_all(plan)
        self.core.note_partial(failed)
        return self.core.envelope(
            plan, communities, answered=len(answered),
            elapsed=time.perf_counter() - start)

    async def _merged_all(self, plan: QueryPlan
                          ) -> Tuple[List[Any], List[int],
                                     List[int]]:
        """One COMM-all fan-out: union of filtered shard answers."""
        payload = self.core.shard_payload(
            plan.spec, None, plan.deadline, plan.want_labels)
        responses = await self._fan({
            shard_id: self._leg_query(shard_id, payload)
            for shard_id in plan.eligible})
        return self.core.reduce_all(plan, responses)

    async def _merged_top_k(self, plan: QueryPlan) -> MergeOutcome:
        """Drive the sans-IO merge with concurrent async rounds.

        Each ``next_round`` want-map becomes one ``asyncio.gather``
        — every refetch in a round runs concurrently, and rounds
        double per-shard ``k`` until the merged k-th cost clears
        every live shard's frontier (the exactness condition).
        """
        merge = TopKMerge(plan.eligible, plan.spec.k or 0)
        while not merge.done:
            wants = merge.next_round()
            merge.feed(await self._fan({
                shard_id: self._fetch_one(plan, shard_id, want)
                for shard_id, want in wants.items()}))
        return merge.outcome()

    async def _batch(self, body: bytes) -> Dict[str, Any]:
        """``POST /batch``: shard-aware batched scatter-gather.

        The same round-1 /batch-per-shard strategy as the threaded
        front end; entries' top-k merges then proceed concurrently,
        each reusing its shard's round-1 slice before issuing
        individual refetch legs.
        """
        manifest, plans, deadline, want_labels = \
            self.core.parse_batch(body)
        start = time.perf_counter()

        by_shard: Dict[int, List[int]] = {}
        for entry_index, plan in enumerate(plans):
            for shard_id in plan.eligible:
                by_shard.setdefault(shard_id, []).append(
                    entry_index)

        async def leg_batch(shard_id: int,
                            indexes: List[int]) -> Any:
            """One shard's round-1 /batch leg."""
            bodies = [self.core.shard_payload(
                plans[i].spec, plans[i].spec.k, deadline,
                want_labels) for i in indexes]
            self.core.count("fanout_legs")
            leg_start = time.perf_counter()
            try:
                response = await self.replica_sets[shard_id].call(
                    lambda client: client.request(
                        "POST", "/batch",
                        {"queries": bodies,
                         **({"deadline_seconds": deadline}
                            if deadline is not None else {}),
                         **({"labels": True} if want_labels
                            else {})},
                        idempotent=True))
                self.core.observe_leg(
                    shard_id, 200,
                    time.perf_counter() - leg_start)
                return response
            except ServiceError as error:
                self.core.observe_leg(
                    shard_id, getattr(error, "status", 500),
                    time.perf_counter() - leg_start)
                return error

        round_one = await self._fan({
            shard_id: leg_batch(shard_id, indexes)
            for shard_id, indexes in by_shard.items()})

        async def entry_envelope(entry_index: int,
                                 plan: QueryPlan) -> Dict[str, Any]:
            """Reassemble one batch entry from round-1 + refetches."""
            first: Dict[int, Any] = {}
            for shard_id in plan.eligible:
                result = round_one.get(shard_id)
                if isinstance(result, dict):
                    position = \
                        by_shard[shard_id].index(entry_index)
                    first[shard_id] = result["results"][position]
                else:
                    first[shard_id] = result
            if plan.spec.mode == "topk":
                outcome = await self._batch_top_k(plan, first)
                communities = outcome.communities
                answered, failed = outcome.answered, outcome.failed
                self.core.count("merge_rounds", outcome.rounds)
            else:
                communities, answered, failed = \
                    self.core.reduce_all(plan, first)
            if failed:
                self.core.count("partial_results")
                self.core.count("shard_failures", len(failed))
            return self.core.envelope(plan, communities,
                                      answered=len(answered))

        envelopes = [
            await entry_envelope(index, plan)
            for index, plan in enumerate(plans)]
        return {
            "queries": len(envelopes),
            "results": envelopes,
            "elapsed_seconds": time.perf_counter() - start,
        }

    async def _batch_top_k(self, plan: QueryPlan,
                           first: Dict[int, Any]) -> MergeOutcome:
        """Merge one batch entry's top-k, reusing round-1 answers."""
        async def fetch_one(shard_id: int,
                            want: int) -> Optional[FetchResult]:
            """Round 1 from the cached batch leg; later rounds via
            fresh single-query legs."""
            if want == plan.spec.k and shard_id in first:
                result = first.pop(shard_id)
                return self.core.fetch_result(plan, shard_id,
                                              result, want)
            return await self._fetch_one(plan, shard_id, want)

        merge = TopKMerge(plan.eligible, plan.spec.k or 0)
        while not merge.done:
            wants = merge.next_round()
            merge.feed(await self._fan({
                shard_id: fetch_one(shard_id, want)
                for shard_id, want in wants.items()}))
        return merge.outcome()

    # ------------------------------------------------------------------
    # health + metrics
    # ------------------------------------------------------------------
    async def _probe(self, client: AsyncShardClient) -> Any:
        """One replica health probe; errors become values."""
        try:
            return await client.health()
        except ServiceError as error:
            return error

    async def _health(self) -> Dict[str, Any]:
        """``GET /healthz``: fan probes to every replica."""
        manifest = self.core.capture()
        responses = await self._fan({
            (replicas.shard_id, index): self._probe(client)
            for replicas in self.replica_sets
            for index, client in enumerate(replicas.clients)})
        return self.core.health_payload(manifest, self.replica_sets,
                                        responses)

    def render_metrics(self) -> str:
        """One Prometheus scrape of the router."""
        return self.core.render_metrics(self.replica_sets)
