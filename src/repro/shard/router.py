"""The threaded scatter-gather router front end.

:class:`RouterService` is the thread-per-request front end of a
sharded deployment. All routing *policy* — spec validation against
the manifest's keyword Blooms, the exact overfetching k-way merge,
ownership filtering, the partial-result contract, fleet health
roll-up, verify-then-rollback reloads, metrics — lives in
:class:`~repro.shard.routing.RouterCore`, shared verbatim with the
asyncio front end (:mod:`repro.shard.aio`). This module owns only
the threaded transport: a :class:`~repro.shard.transport.ReplicaSet`
of keep-alive clients per shard (failing legs over to sibling boxes
before giving a shard up), a :class:`~repro.shard.transport.
ThreadedFanout` pool for concurrent rounds, and the
``ThreadingHTTPServer`` socket plumbing.

Endpoints mirror the single-box service where they overlap:

* ``POST /query`` — fanned to the shards whose Bloom admits every
  keyword; PDk answers come from the exact overfetching k-way merge,
  PDall from the ownership-filtered union in canonical ``(cost,
  core)`` order. The response envelope adds ``shards_answered`` /
  ``shards_total`` / ``partial``: a shard whose whole replica set
  times out, sheds, or crashes mid-fan-out costs *coverage*, not
  availability — the router answers ``200`` with what the live
  shards proved.
* ``POST /batch`` — shard-aware batching: one ``/batch`` per shard
  carrying exactly the entries that shard is eligible for, answers
  reassembled per entry (each entry gets its own partiality fields).
* ``GET /healthz`` — aggregated fleet health (per-shard rows with
  per-replica detail plus a rolled-up status).
* ``GET /metrics`` — ``repro_router_*`` counters/gauges (including
  ``repro_router_failover_total``) plus per-shard fan-out latency
  histograms.
* ``POST /admin/reload`` — re-reads the routing manifest and
  broadcasts per-replica reloads with rollback; with
  ``{"transfer": true}`` each shard snapshot is pushed over the wire
  first (see :func:`~repro.shard.routing.reload_fleet`).

The router holds no query state between requests — overfetch rounds
re-ask shards with larger ``k`` (queries are idempotent stateless
reads, retried by the client layer on torn connections), so any
number of router replicas can sit behind one load balancer.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import QueryError, ServiceError, WorkerError
from repro.service.client import ServiceClient
from repro.service.errors import NotFound
from repro.service.server import (
    JSON_CONTENT_TYPE,
    METRICS_CONTENT_TYPE,
    Response,
    ServiceHandler,
)
from repro.shard.manifest import RoutingManifest
from repro.shard.merge import FetchResult, MergeOutcome, merge_top_k
from repro.shard.routing import (
    DEFAULT_SHARD_RETRIES,
    DEFAULT_SHARD_TIMEOUT,
    QueryPlan,
    RouterCore,
    build_replica_sets,
    reload_fleet,
)
from repro.shard.transport import ThreadedFanout

PathLike = Union[str, Path]


class RouterService:
    """Scatter-gather front end over per-shard community services.

    Each ``shard_urls`` entry names one shard's replica set — a
    single URL, or comma-separated sibling URLs that serve the same
    shard snapshot (``"http://a:8420,http://b:8420"``); entry ``i``
    serves shard ``i``. ``root`` is the partition root the manifest
    was loaded from; ``/admin/reload`` re-reads it and resolves
    per-shard stores against it. The service is socketless until
    :meth:`start`, and :meth:`handle` is directly testable — the
    same contract as :class:`~repro.service.CommunityService`.
    """

    def __init__(self, manifest: RoutingManifest,
                 shard_urls: List[str],
                 root: Optional[PathLike] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
                 shard_retries: int = DEFAULT_SHARD_RETRIES,
                 retry_seed: Optional[int] = None) -> None:
        self.core = RouterCore(manifest, root=root)
        self.replica_sets = build_replica_sets(
            manifest, shard_urls, self.core,
            lambda url: ServiceClient(url, timeout=shard_timeout,
                                      retries=shard_retries,
                                      retry_seed=retry_seed))
        self._fanout = ThreadedFanout(
            2 * sum(len(r.urls) for r in self.replica_sets))
        self._httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self._httpd.daemon_threads = True                 # type: ignore[attr-defined]
        self._httpd.service = self                        # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def manifest(self) -> RoutingManifest:
        """The live routing manifest (current generation)."""
        return self.core.capture()

    @property
    def root(self) -> Optional[Path]:
        """The partition root reloads resolve against."""
        return self.core.root

    @property
    def metrics(self):
        """The request-latency metrics registry (shared with core)."""
        return self.core.metrics

    # ------------------------------------------------------------------
    # lifecycle (same surface as CommunityService)
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RouterService":
        """Serve on a background thread; returns ``self``."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="repro-router-accept")
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the fan-out pool."""
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._fanout.shutdown()
        for replicas in self.replica_sets:
            replicas.close()

    def __enter__(self) -> "RouterService":
        """Context-manager entry (the server need not be started)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: always shut down."""
        self.shutdown()

    # ------------------------------------------------------------------
    # routing (mirrors CommunityService.handle)
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes) -> Response:
        """Serve one request; never raises."""
        start = time.perf_counter()
        parts = tuple(p for p in path.split("?", 1)[0].split("/") if p)
        template = "/" + "/".join(parts[:2]) if parts else "/"
        try:
            template, result, content_type = self._route(
                method, parts, body)
            status, payload = 200, result
        except ServiceError as error:
            status = error.status
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except (QueryError, WorkerError) as error:
            status = 400 if isinstance(error, QueryError) else 503
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except Exception as error:  # noqa: BLE001 — boundary: any bug
            # becomes a 500 response rather than a dead connection.
            status = 500
            payload = json.dumps({"error": str(error), "status": 500})
            content_type = JSON_CONTENT_TYPE
        self.core.metrics.observe_request(template, status,
                                          time.perf_counter() - start)
        return status, template, payload, content_type

    def _route(self, method: str, parts: Tuple[str, ...],
               body: bytes) -> Tuple[str, str, str]:
        """Dispatch to a handler; returns (template, body, type)."""
        if method == "GET" and parts == ("metrics",):
            return "/metrics", self.render_metrics(), \
                METRICS_CONTENT_TYPE
        if method == "GET" and parts == ("healthz",):
            return "/healthz", json.dumps(self._health()), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("query",):
            return "/query", json.dumps(self._query(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("batch",):
            return "/batch", json.dumps(self._batch(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("admin", "reload"):
            return "/admin/reload", \
                json.dumps(reload_fleet(self.core, self.replica_sets,
                                        body)), \
                JSON_CONTENT_TYPE
        raise NotFound(f"no route {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------------
    # fan-out plumbing (the transport half the async front end swaps)
    # ------------------------------------------------------------------
    def _leg_query(self, shard_id: int,
                   payload: Dict[str, Any]) -> Any:
        """One ``POST /query`` leg; returns the response dict, or the
        error that killed the leg (after client retries and replica
        failover)."""
        replicas = self.replica_sets[shard_id]
        self.core.count("fanout_legs")
        start = time.perf_counter()
        try:
            response = replicas.call(
                lambda client: client.request(
                    "POST", "/query", payload, idempotent=True))
            self.core.observe_leg(shard_id, 200,
                                  time.perf_counter() - start)
            return response
        except ServiceError as error:
            self.core.observe_leg(shard_id,
                                  getattr(error, "status", 500),
                                  time.perf_counter() - start)
            return error

    def _fetch_many(self, plan: QueryPlan
                    ) -> Any:
        """A merge-driver ``fetch_many`` bound to one query plan."""
        def fetch_one(shard_id: int,
                      want: int) -> Optional[FetchResult]:
            """Fetch + filter one shard's first ``want`` answers."""
            payload = self.core.shard_payload(
                plan.spec, want, plan.deadline, plan.want_labels)
            return self.core.fetch_result(
                plan, shard_id, self._leg_query(shard_id, payload),
                want)

        def fetch_many(wants: Dict[int, int]
                       ) -> Dict[int, Optional[FetchResult]]:
            """One concurrent overfetch round."""
            return self._fanout.fan({
                shard_id: (lambda s=shard_id, w=want:
                           fetch_one(s, w))
                for shard_id, want in wants.items()})

        return fetch_many

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _query(self, body: bytes) -> Dict[str, Any]:
        """``POST /query``: scatter, filter, merge, gather."""
        plan = self.core.parse_query(body)
        start = time.perf_counter()
        if plan.spec.mode == "topk":
            outcome = merge_top_k(self._fetch_many(plan),
                                  plan.eligible, plan.spec.k or 0)
            communities = outcome.communities
            answered, failed = outcome.answered, outcome.failed
            self.core.note_topk(outcome)
        else:
            communities, answered, failed = self._merged_all(plan)
        self.core.note_partial(failed)
        return self.core.envelope(
            plan, communities, answered=len(answered),
            elapsed=time.perf_counter() - start)

    def _merged_all(self, plan: QueryPlan
                    ) -> Tuple[List[Any], List[int], List[int]]:
        """One COMM-all fan-out: union of filtered shard answers."""
        payload = self.core.shard_payload(
            plan.spec, None, plan.deadline, plan.want_labels)
        responses = self._fanout.fan({
            shard_id: (lambda s=shard_id:
                       self._leg_query(s, payload))
            for shard_id in plan.eligible})
        return self.core.reduce_all(plan, responses)

    def _batch(self, body: bytes) -> Dict[str, Any]:
        """``POST /batch``: shard-aware batched scatter-gather.

        Round 1 sends each shard **one** ``/batch`` containing
        exactly the entries it is eligible for — one HTTP round-trip
        keeps every shard's worker pool busy, which is the point of
        batching. Top-k entries that then fail the exactness check
        (a shard's filtered prefix ran short) refetch individually
        with doubled ``k`` — rare, and still stateless.
        """
        manifest, plans, deadline, want_labels = \
            self.core.parse_batch(body)
        start = time.perf_counter()

        # Round 1: one /batch per shard with its eligible entries.
        by_shard: Dict[int, List[int]] = {}
        for entry_index, plan in enumerate(plans):
            for shard_id in plan.eligible:
                by_shard.setdefault(shard_id, []).append(entry_index)

        def leg_batch(shard_id: int, indexes: List[int]) -> Any:
            """One shard's round-1 /batch leg."""
            bodies = [self.core.shard_payload(
                plans[i].spec, plans[i].spec.k, deadline,
                want_labels) for i in indexes]
            self.core.count("fanout_legs")
            leg_start = time.perf_counter()
            try:
                response = self.replica_sets[shard_id].call(
                    lambda client: client.request(
                        "POST", "/batch",
                        {"queries": bodies,
                         **({"deadline_seconds": deadline}
                            if deadline is not None else {}),
                         **({"labels": True} if want_labels
                            else {})},
                        idempotent=True))
                self.core.observe_leg(
                    shard_id, 200, time.perf_counter() - leg_start)
                return response
            except ServiceError as error:
                self.core.observe_leg(
                    shard_id, getattr(error, "status", 500),
                    time.perf_counter() - leg_start)
                return error

        round_one = self._fanout.fan({
            shard_id: (lambda s=shard_id, idx=indexes:
                       leg_batch(s, idx))
            for shard_id, indexes in by_shard.items()})

        # Reassemble: per entry, serve round 1 from the shard batch
        # responses; top-k refetches fall back to single /query legs.
        envelopes = []
        for entry_index, plan in enumerate(plans):
            first: Dict[int, Any] = {}
            for shard_id in plan.eligible:
                result = round_one.get(shard_id)
                if isinstance(result, dict):
                    position = by_shard[shard_id].index(entry_index)
                    first[shard_id] = result["results"][position]
                else:
                    first[shard_id] = result
            if plan.spec.mode == "topk":
                outcome = self._batch_top_k(plan, first)
                communities = outcome.communities
                answered, failed = outcome.answered, outcome.failed
                self.core.count("merge_rounds", outcome.rounds)
            else:
                communities, answered, failed = \
                    self.core.reduce_all(plan, first)
            if failed:
                self.core.count("partial_results")
                self.core.count("shard_failures", len(failed))
            envelopes.append(self.core.envelope(
                plan, communities, answered=len(answered)))
        return {
            "queries": len(envelopes),
            "results": envelopes,
            "elapsed_seconds": time.perf_counter() - start,
        }

    def _batch_top_k(self, plan: QueryPlan,
                     first: Dict[int, Any]) -> MergeOutcome:
        """Merge one batch entry's top-k, reusing round-1 answers."""
        def fetch_one(shard_id: int,
                      want: int) -> Optional[FetchResult]:
            """Round 1 from the cached batch leg; later rounds via
            fresh single-query legs."""
            if want == plan.spec.k and shard_id in first:
                result = first.pop(shard_id)
            else:
                result = self._leg_query(
                    shard_id, self.core.shard_payload(
                        plan.spec, want, plan.deadline,
                        plan.want_labels))
            return self.core.fetch_result(plan, shard_id, result,
                                          want)

        def fetch_many(wants: Dict[int, int]
                       ) -> Dict[int, Optional[FetchResult]]:
            """One merge round (round 1 is served from cache)."""
            return self._fanout.fan({
                shard_id: (lambda s=shard_id, w=want:
                           fetch_one(s, w))
                for shard_id, want in wants.items()})

        return merge_top_k(fetch_many, plan.eligible,
                           plan.spec.k or 0)

    # ------------------------------------------------------------------
    # health + metrics
    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        """``GET /healthz``: fan health probes to every replica."""
        manifest = self.core.capture()
        calls = {}
        keys = []
        for replicas in self.replica_sets:
            for index, client in enumerate(replicas.clients):
                key = (replicas.shard_id, index)
                keys.append(key)
                calls[len(keys) - 1] = \
                    (lambda c=client: c.health())
        fanned = self._fanout.fan(calls)
        responses = {keys[slot]: result
                     for slot, result in fanned.items()}
        return self.core.health_payload(manifest, self.replica_sets,
                                        responses)

    def render_metrics(self) -> str:
        """One Prometheus scrape of the router."""
        return self.core.render_metrics(self.replica_sets)
