"""The stateless scatter-gather router over a shard fleet.

:class:`RouterService` is the front end of a sharded deployment: it
holds a :class:`~repro.shard.manifest.RoutingManifest` plus one
:class:`~repro.service.client.ServiceClient` per shard backend (each
an ordinary ``serve --snapshot`` server), and reassembles exact
global answers with the merge algebra of :mod:`repro.shard.merge`.
Endpoints mirror the single-box service where they overlap:

* ``POST /query`` — fanned to the shards whose Bloom admits every
  keyword; PDk answers come from the exact overfetching k-way merge,
  PDall from the ownership-filtered union in canonical ``(cost,
  core)`` order. The response envelope adds ``shards_answered`` /
  ``shards_total`` / ``partial``: a shard that times out, sheds, or
  crashes mid-fan-out costs *coverage*, not availability — the
  router answers ``200`` with what the live shards proved.
* ``POST /batch`` — shard-aware batching: one ``/batch`` per shard
  carrying exactly the entries that shard is eligible for, answers
  reassembled per entry (each entry gets its own partiality fields).
* ``GET /healthz`` — aggregated fleet health (per-shard rows plus a
  rolled-up status).
* ``GET /metrics`` — ``repro_router_*`` counters/gauges plus
  per-shard fan-out latency histograms.
* ``POST /admin/reload`` — re-reads the routing manifest and
  broadcasts per-shard reloads with rollback: if any shard fails to
  adopt its new snapshot, every already-reloaded shard is rolled
  back to the snapshot it served before, and the router keeps the
  old manifest (mirroring the PR 5 single-box reload semantics).

The router holds no query state between requests — overfetch rounds
re-ask shards with larger ``k`` (queries are idempotent stateless
reads, retried by the client layer on torn connections), so any
number of router replicas can sit behind one load balancer.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.community import Community
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError, ServiceError, WorkerError
from repro.service.client import ServiceClient
from repro.service.errors import BadRequest, NotFound
from repro.service.metrics import ServiceMetrics
from repro.service.serialize import (
    communities_from_dicts,
    community_to_dict,
    spec_to_dict,
)
from repro.service.server import (
    JSON_CONTENT_TYPE,
    METRICS_CONTENT_TYPE,
    Response,
    ServiceHandler,
    _float_of,
    _int_of,
    _keywords_of,
    _parse_body,
)
from repro.shard.manifest import RoutingManifest
from repro.shard.merge import (
    FetchResult,
    MergeOutcome,
    filter_owned,
    globalize,
    merge_all,
    merge_top_k,
)

PathLike = Union[str, Path]

#: Default per-leg socket timeout (seconds). Shorter than the client
#: default: a hung shard should cost one partial result, not a stuck
#: router thread.
DEFAULT_SHARD_TIMEOUT = 10.0

#: Default idempotent-retry budget per shard leg (PR 5 semantics).
DEFAULT_SHARD_RETRIES = 2


class ShardBackend:
    """One shard's client plus its manifest row."""

    def __init__(self, shard_id: int, url: str,
                 client: ServiceClient) -> None:
        self.shard_id = shard_id
        self.url = url
        self.client = client

    def __repr__(self) -> str:
        return f"ShardBackend({self.shard_id}, {self.url!r})"


class RouterService:
    """Scatter-gather front end over per-shard community services.

    ``shard_urls`` must align with the manifest's shard table (index
    ``i`` serves shard ``i``). ``root`` is the partition root the
    manifest was loaded from; ``/admin/reload`` re-reads it and
    resolves per-shard stores against it. The service is socketless
    until :meth:`start`, and :meth:`handle` is directly testable —
    the same contract as :class:`~repro.service.CommunityService`.
    """

    def __init__(self, manifest: RoutingManifest,
                 shard_urls: List[str],
                 root: Optional[PathLike] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
                 shard_retries: int = DEFAULT_SHARD_RETRIES,
                 retry_seed: Optional[int] = None) -> None:
        if len(shard_urls) != len(manifest.shards):
            raise ServiceError(
                f"manifest names {len(manifest.shards)} shards but "
                f"{len(shard_urls)} shard URLs were supplied")
        self.manifest = manifest
        self.root = Path(root) if root is not None else None
        self.backends = [
            ShardBackend(entry.shard_id, url.rstrip("/"),
                         ServiceClient(url, timeout=shard_timeout,
                                       retries=shard_retries,
                                       retry_seed=retry_seed))
            for entry, url in zip(manifest.shards, shard_urls)]
        self.metrics = ServiceMetrics()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.backends)),
            thread_name_prefix="repro-router-fanout")
        self._httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self._httpd.daemon_threads = True                 # type: ignore[attr-defined]
        self._httpd.service = self                        # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------
    # lifecycle (same surface as CommunityService)
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RouterService":
        """Serve on a background thread; returns ``self``."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="repro-router-accept")
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the fan-out pool."""
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "RouterService":
        """Context-manager entry (the server need not be started)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: always shut down."""
        self.shutdown()

    # ------------------------------------------------------------------
    # routing (mirrors CommunityService.handle)
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes) -> Response:
        """Serve one request; never raises."""
        start = time.perf_counter()
        parts = tuple(p for p in path.split("?", 1)[0].split("/") if p)
        template = "/" + "/".join(parts[:2]) if parts else "/"
        try:
            template, result, content_type = self._route(
                method, parts, body)
            status, payload = 200, result
        except ServiceError as error:
            status = error.status
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except (QueryError, WorkerError) as error:
            status = 400 if isinstance(error, QueryError) else 503
            payload = json.dumps(
                {"error": str(error), "status": status})
            content_type = JSON_CONTENT_TYPE
        except Exception as error:  # noqa: BLE001 — boundary: any bug
            # becomes a 500 response rather than a dead connection.
            status = 500
            payload = json.dumps({"error": str(error), "status": 500})
            content_type = JSON_CONTENT_TYPE
        self.metrics.observe_request(template, status,
                                     time.perf_counter() - start)
        return status, template, payload, content_type

    def _route(self, method: str, parts: Tuple[str, ...],
               body: bytes) -> Tuple[str, str, str]:
        """Dispatch to a handler; returns (template, body, type)."""
        if method == "GET" and parts == ("metrics",):
            return "/metrics", self.render_metrics(), \
                METRICS_CONTENT_TYPE
        if method == "GET" and parts == ("healthz",):
            return "/healthz", json.dumps(self._health()), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("query",):
            return "/query", json.dumps(self._query(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("batch",):
            return "/batch", json.dumps(self._batch(body)), \
                JSON_CONTENT_TYPE
        if method == "POST" and parts == ("admin", "reload"):
            return "/admin/reload", \
                json.dumps(self._admin_reload(body)), \
                JSON_CONTENT_TYPE
        raise NotFound(f"no route {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _count(self, name: str, value: float = 1.0) -> None:
        """Bump a router counter (rendered with a ``_total`` suffix)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) \
                + value

    def _gauge(self, name: str, value: float) -> None:
        """Set a router gauge."""
        with self._lock:
            self._gauges[name] = value

    def _observe_leg(self, shard_id: int, status: int,
                     seconds: float) -> None:
        """Record one fan-out leg's latency under a per-shard label."""
        self.metrics.observe_request(f"shard:{shard_id:02d}", status,
                                     seconds)

    # ------------------------------------------------------------------
    # fan-out plumbing
    # ------------------------------------------------------------------
    def _fan(self, calls: Dict[int, Callable[[], Any]]
             ) -> Dict[int, Any]:
        """Run per-shard thunks concurrently; exceptions propagate
        per entry as the stored value."""
        if not calls:
            return {}
        futures = {shard_id: self._pool.submit(thunk)
                   for shard_id, thunk in calls.items()}
        results: Dict[int, Any] = {}
        for shard_id, future in futures.items():
            try:
                results[shard_id] = future.result()
            except Exception as error:  # noqa: BLE001 — leg failure
                # is data (partial result), not a router crash.
                results[shard_id] = error
        return results

    def _leg_query(self, shard_id: int,
                   payload: Dict[str, Any]) -> Any:
        """One ``POST /query`` leg; returns the response dict, or the
        error that killed the leg (after client-side retries)."""
        backend = self.backends[shard_id]
        self._count("fanout_legs")
        start = time.perf_counter()
        try:
            response = backend.client.request(
                "POST", "/query", payload, idempotent=True)
            self._observe_leg(shard_id, 200,
                              time.perf_counter() - start)
            return response
        except ServiceError as error:
            self._observe_leg(shard_id,
                              getattr(error, "status", 500),
                              time.perf_counter() - start)
            return error

    @staticmethod
    def _leg_empty(result: Any) -> bool:
        """Whether a failed leg actually means "no answers here".

        A shard 400s an unknown keyword (Bloom false positive routed
        a query the shard cannot resolve); for the fleet that is an
        empty contribution, not an outage.
        """
        return isinstance(result, BadRequest)

    def _spec_of(self, payload: Dict[str, Any]) -> QuerySpec:
        """A validated :class:`QuerySpec` from one query payload."""
        keywords = _keywords_of(payload)
        rmax = _float_of(payload, "rmax")
        k = _int_of(payload, "k")
        mode = payload.get("mode") or ("topk" if k is not None
                                       else "all")
        spec = QuerySpec(
            tuple(keywords), rmax, mode=mode, k=k,
            algorithm=payload.get("algorithm", "pd"),
            aggregate=payload.get("aggregate", "sum"),
            budget_seconds=_float_of(payload, "budget_seconds",
                                     required=False))
        for keyword in spec.keywords:
            if not self.manifest.keyword_known(keyword):
                raise QueryError(
                    f"keyword {keyword!r} does not occur in the "
                    f"database")
        return spec

    @staticmethod
    def _shard_payload(spec: QuerySpec, k: Optional[int],
                       deadline: Optional[float],
                       labels: bool) -> Dict[str, Any]:
        """The ``/query`` body one shard leg carries."""
        payload: Dict[str, Any] = {
            "keywords": list(spec.keywords),
            "rmax": spec.rmax,
            "mode": spec.mode,
            "algorithm": spec.algorithm,
            "aggregate": spec.aggregate,
        }
        if k is not None:
            payload["k"] = k
        if deadline is not None:
            payload["deadline_seconds"] = deadline
        if labels:
            payload["labels"] = True
        return payload

    def _absorb(self, shard_id: int, response: Dict[str, Any],
                labels_out: Optional[Dict[str, str]]
                ) -> List[Community]:
        """Globalize + ownership-filter one leg's communities.

        Collects relabeled node labels into ``labels_out`` when the
        caller asked shards for them.
        """
        entry = self.manifest.shards[shard_id]
        raw = response.get("communities", [])
        if labels_out is not None:
            for community in raw:
                for local, label in community.get("labels",
                                                 {}).items():
                    labels_out[str(entry.node_map[int(local)])] = label
        return filter_owned(
            globalize(communities_from_dicts(raw), entry.node_map),
            self.manifest.owners, shard_id)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _query(self, body: bytes) -> Dict[str, Any]:
        """``POST /query``: scatter, filter, merge, gather."""
        payload = _parse_body(body)
        spec = self._spec_of(payload)
        deadline = _float_of(payload, "deadline_seconds",
                             required=False)
        want_labels = bool(payload.get("labels", False))
        start = time.perf_counter()
        eligible = self.manifest.shards_for(spec.keywords)
        self._count("queries")
        labels: Optional[Dict[str, str]] = {} if want_labels else None

        if spec.mode == "topk":
            outcome = self._merged_top_k(spec, eligible, deadline,
                                         want_labels, labels)
            communities = outcome.communities
            answered, failed = outcome.answered, outcome.failed
            self._count("merge_rounds", outcome.rounds)
            self._count("merge_candidates", outcome.candidates)
            self._gauge("last_merge_depth", float(outcome.candidates))
        else:
            communities, answered, failed = self._merged_all(
                spec, eligible, deadline, want_labels, labels)
        partial = bool(failed)
        if partial:
            self._count("partial_results")
        self._count("shard_failures", len(failed))
        envelope = self._envelope(
            communities, spec, labels,
            answered=len(answered), total=len(eligible),
            elapsed=time.perf_counter() - start)
        return envelope

    def _merged_all(self, spec: QuerySpec, eligible: List[int],
                    deadline: Optional[float], want_labels: bool,
                    labels: Optional[Dict[str, str]]
                    ) -> Tuple[List[Community], List[int], List[int]]:
        """One COMM-all fan-out: union of filtered shard answers."""
        payload = self._shard_payload(spec, None, deadline,
                                      want_labels)
        responses = self._fan({
            shard_id: (lambda s=shard_id:
                       self._leg_query(s, payload))
            for shard_id in eligible})
        answered: List[int] = []
        failed: List[int] = []
        per_shard: List[List[Community]] = []
        for shard_id in eligible:
            result = responses[shard_id]
            if isinstance(result, dict):
                answered.append(shard_id)
                per_shard.append(self._absorb(shard_id, result,
                                              labels))
            elif self._leg_empty(result):
                answered.append(shard_id)
            else:
                failed.append(shard_id)
        return merge_all(per_shard), answered, failed

    def _merged_top_k(self, spec: QuerySpec, eligible: List[int],
                      deadline: Optional[float], want_labels: bool,
                      labels: Optional[Dict[str, str]]
                      ) -> MergeOutcome:
        """One COMM-k merge drive over concurrent shard fetches."""
        def fetch_one(shard_id: int,
                      want: int) -> Optional[FetchResult]:
            """Fetch + filter one shard's first ``want`` answers."""
            payload = self._shard_payload(spec, want, deadline,
                                          want_labels)
            result = self._leg_query(shard_id, payload)
            if self._leg_empty(result):
                return FetchResult(kept=[], raw_count=0,
                                   exhausted=True)
            if not isinstance(result, dict):
                return None
            raw = result.get("communities", [])
            exhausted = len(raw) < want
            frontier = (float(raw[-1]["cost"])
                        if raw and not exhausted else None)
            return FetchResult(
                kept=self._absorb(shard_id, result, labels),
                raw_count=len(raw), exhausted=exhausted,
                frontier=frontier)

        def fetch_many(wants: Dict[int, int]
                       ) -> Dict[int, Optional[FetchResult]]:
            """One concurrent overfetch round."""
            return self._fan({
                shard_id: (lambda s=shard_id, w=want:
                           fetch_one(s, w))
                for shard_id, want in wants.items()})

        return merge_top_k(fetch_many, eligible, spec.k or 0)

    def _envelope(self, communities: List[Community],
                  spec: QuerySpec,
                  labels: Optional[Dict[str, str]],
                  answered: int, total: int,
                  elapsed: Optional[float] = None) -> Dict[str, Any]:
        """The router's ``/query`` response envelope.

        Single-box fields (``count``/``communities``/``query``) plus
        the partial-result contract: ``shards_total`` is how many
        shards the query needed, ``shards_answered`` how many
        delivered; ``partial`` flags any gap. Clients that cannot
        tolerate partial answers must check it — the status stays
        200.
        """
        rendered = []
        for community in communities:
            entry = community_to_dict(community)
            if labels is not None:
                entry["labels"] = {
                    str(u): labels[str(u)] for u in community.nodes
                    if str(u) in labels}
            rendered.append(entry)
        envelope: Dict[str, Any] = {
            "count": len(rendered),
            "communities": rendered,
            "query": spec_to_dict(spec),
            "shards_answered": answered,
            "shards_total": total,
            "partial": answered < total,
        }
        if elapsed is not None:
            envelope["elapsed_seconds"] = float(elapsed)
        return envelope

    def _batch(self, body: bytes) -> Dict[str, Any]:
        """``POST /batch``: shard-aware batched scatter-gather.

        Round 1 sends each shard **one** ``/batch`` containing
        exactly the entries it is eligible for — one HTTP round-trip
        keeps every shard's worker pool busy, which is the point of
        batching. Top-k entries that then fail the exactness check
        (a shard's filtered prefix ran short) refetch individually
        with doubled ``k`` — rare, and still stateless.
        """
        payload = _parse_body(body)
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise BadRequest(
                "'queries' must be a non-empty list of query objects")
        if not all(isinstance(q, dict) for q in queries):
            raise BadRequest("every batch entry must be an object")
        specs = [self._spec_of(query) for query in queries]
        deadline = _float_of(payload, "deadline_seconds",
                             required=False)
        want_labels = bool(payload.get("labels", False))
        start = time.perf_counter()
        plans = [self.manifest.shards_for(spec.keywords)
                 for spec in specs]
        self._count("queries", len(specs))
        self._count("batches")

        # Round 1: one /batch per shard with its eligible entries.
        by_shard: Dict[int, List[int]] = {}
        for entry_index, eligible in enumerate(plans):
            for shard_id in eligible:
                by_shard.setdefault(shard_id, []).append(entry_index)

        def leg_batch(shard_id: int, indexes: List[int]) -> Any:
            """One shard's round-1 /batch leg."""
            bodies = [self._shard_payload(
                specs[i], specs[i].k, deadline, want_labels)
                for i in indexes]
            self._count("fanout_legs")
            leg_start = time.perf_counter()
            try:
                response = self.backends[shard_id].client.request(
                    "POST", "/batch",
                    {"queries": bodies,
                     **({"deadline_seconds": deadline}
                        if deadline is not None else {}),
                     **({"labels": True} if want_labels else {})},
                    idempotent=True)
                self._observe_leg(shard_id, 200,
                                  time.perf_counter() - leg_start)
                return response
            except ServiceError as error:
                self._observe_leg(shard_id,
                                  getattr(error, "status", 500),
                                  time.perf_counter() - leg_start)
                return error

        round_one = self._fan({
            shard_id: (lambda s=shard_id, idx=indexes:
                       leg_batch(s, idx))
            for shard_id, indexes in by_shard.items()})

        # Reassemble: per entry, serve round 1 from the shard batch
        # responses; top-k refetches fall back to single /query legs.
        envelopes = []
        for entry_index, (spec, eligible) in enumerate(
                zip(specs, plans)):
            labels: Optional[Dict[str, str]] = \
                {} if want_labels else None
            first: Dict[int, Any] = {}
            for shard_id in eligible:
                result = round_one.get(shard_id)
                if isinstance(result, dict):
                    position = by_shard[shard_id].index(entry_index)
                    first[shard_id] = \
                        result["results"][position]
                else:
                    first[shard_id] = result
            if spec.mode == "topk":
                outcome = self._batch_top_k(spec, eligible, first,
                                            deadline, want_labels,
                                            labels)
                communities = outcome.communities
                answered, failed = outcome.answered, outcome.failed
                self._count("merge_rounds", outcome.rounds)
            else:
                answered, failed = [], []
                per_shard: List[List[Community]] = []
                for shard_id in eligible:
                    result = first[shard_id]
                    if isinstance(result, dict):
                        answered.append(shard_id)
                        per_shard.append(self._absorb(
                            shard_id, result, labels))
                    elif self._leg_empty(result):
                        answered.append(shard_id)
                    else:
                        failed.append(shard_id)
                communities = merge_all(per_shard)
            if failed:
                self._count("partial_results")
                self._count("shard_failures", len(failed))
            envelopes.append(self._envelope(
                communities, spec, labels,
                answered=len(answered), total=len(eligible)))
        return {
            "queries": len(envelopes),
            "results": envelopes,
            "elapsed_seconds": time.perf_counter() - start,
        }

    def _batch_top_k(self, spec: QuerySpec, eligible: List[int],
                     first: Dict[int, Any],
                     deadline: Optional[float], want_labels: bool,
                     labels: Optional[Dict[str, str]]
                     ) -> MergeOutcome:
        """Merge one batch entry's top-k, reusing round-1 answers."""
        def fetch_one(shard_id: int,
                      want: int) -> Optional[FetchResult]:
            """Round 1 from the cached batch leg; later rounds via
            fresh single-query legs."""
            if want == spec.k and shard_id in first:
                result = first.pop(shard_id)
            else:
                result = self._leg_query(
                    shard_id, self._shard_payload(
                        spec, want, deadline, want_labels))
            if self._leg_empty(result):
                return FetchResult(kept=[], raw_count=0,
                                   exhausted=True)
            if not isinstance(result, dict):
                return None
            raw = result.get("communities", [])
            exhausted = len(raw) < want
            frontier = (float(raw[-1]["cost"])
                        if raw and not exhausted else None)
            return FetchResult(
                kept=self._absorb(shard_id, result, labels),
                raw_count=len(raw), exhausted=exhausted,
                frontier=frontier)

        def fetch_many(wants: Dict[int, int]
                       ) -> Dict[int, Optional[FetchResult]]:
            """One merge round (round 1 is served from cache)."""
            return self._fan({
                shard_id: (lambda s=shard_id, w=want:
                           fetch_one(s, w))
                for shard_id, want in wants.items()})

        return merge_top_k(fetch_many, eligible, spec.k or 0)

    # ------------------------------------------------------------------
    # health + lifecycle
    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        """``GET /healthz``: per-shard rows + rolled-up status.

        ``ok`` only when every shard answered ``ok``; a degraded or
        unreachable shard rolls the fleet up to ``degraded`` (the
        router still answers, partially). Orchestrators alert on the
        top-level field without parsing rows.
        """
        responses = self._fan({
            backend.shard_id:
                (lambda b=backend: b.client.health())
            for backend in self.backends})
        rows = []
        status = "ok"
        reachable = 0
        for backend in self.backends:
            result = responses[backend.shard_id]
            entry = self.manifest.shards[backend.shard_id]
            row: Dict[str, Any] = {
                "shard": backend.shard_id,
                "url": backend.url,
                "expected_snapshot": entry.snapshot_id,
            }
            if isinstance(result, dict):
                reachable += 1
                row["status"] = result.get("status", "ok")
                row["snapshot"] = result.get("snapshot")
                row["generation"] = result.get("generation")
                if row["status"] != "ok":
                    status = "degraded"
            else:
                row["status"] = "unreachable"
                row["error"] = str(result)
                status = "degraded"
            rows.append(row)
        return {
            "status": status,
            "generation": self.manifest.generation,
            "shards_total": len(self.backends),
            "shards_reachable": reachable,
            "shards": rows,
        }

    def _admin_reload(self, body: bytes) -> Dict[str, Any]:
        """``POST /admin/reload``: broadcast a manifest generation
        swap with rollback.

        Re-reads ``routing.json`` (from the configured partition root
        or a ``path`` in the body), then walks the shards in order:
        record what each serves now, ask it to reload from its store
        under the new manifest, and verify it adopted the manifest's
        snapshot id. Any failure rolls every already-switched shard
        back to its recorded snapshot and leaves the router on the
        old manifest — the fleet is never left mixed-generation by a
        failed reload, matching the single-box PR 5 contract.
        """
        payload = _parse_body(body)
        source = payload.get("path") or self.root
        if source is None:
            raise BadRequest(
                "no partition root configured; start the router "
                "with one or supply 'path' in the body")
        root = Path(source)
        new_manifest = RoutingManifest.load(root)
        if len(new_manifest.shards) != len(self.backends):
            raise BadRequest(
                f"new manifest names {len(new_manifest.shards)} "
                f"shards; this router fronts {len(self.backends)}")
        if new_manifest.generation == self.manifest.generation:
            return {"reloaded": False,
                    "generation": self.manifest.generation,
                    "shards": len(self.backends)}
        previous: List[Tuple[int, Optional[str]]] = []
        try:
            for backend in self.backends:
                shard_id = backend.shard_id
                before = backend.client.health().get("snapshot")
                # Recorded before the reload is issued: a shard that
                # adopts the wrong snapshot (and fails verification
                # below) must still be rolled back.
                previous.append((shard_id, before))
                target = str(root /
                             new_manifest.shards[shard_id].store)
                reply = backend.client.admin_reload(path=target)
                adopted = reply.get("snapshot")
                expected = new_manifest.shards[shard_id].snapshot_id
                if adopted != expected:
                    raise ServiceError(
                        f"shard {shard_id} adopted {adopted!r}, "
                        f"manifest expects {expected!r}")
        except Exception as error:  # noqa: BLE001 — any failed leg
            # triggers the fleet-wide rollback.
            self._count("reload_rollbacks")
            self._rollback(previous)
            raise ServiceError(
                f"sharded reload failed and was rolled back: "
                f"{error}")
        with self._lock:
            self.manifest = new_manifest
            if self.root is None:
                self.root = root
        self._count("reloads")
        return {
            "reloaded": True,
            "generation": new_manifest.generation,
            "shards": len(self.backends),
        }

    def _rollback(self, previous: List[Tuple[int, Optional[str]]]
                  ) -> None:
        """Point already-reloaded shards back at their old snapshots.

        Best effort: a shard that cannot be rolled back (crashed
        mid-reload) is left for its own watchdog; the router still
        refuses to adopt the new manifest, so /healthz shows the
        mismatch against the old expectations.
        """
        for shard_id, snapshot_id in previous:
            if snapshot_id is None:
                continue
            store = self.manifest.store_path(
                self.root, shard_id) if self.root is not None \
                else None
            if store is None:
                continue
            try:
                self.backends[shard_id].client.admin_reload(
                    path=str(store / snapshot_id))
            except ServiceError:
                continue

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """One Prometheus scrape of the router.

        ``repro_router_*_total`` counters (fan-out legs, merge rounds
        and candidate depth, partial results, shard failures,
        reloads/rollbacks), fleet gauges, identity rows per shard,
        and per-shard fan-out latency histograms under
        ``path="shard:NN"``.
        """
        with self._lock:
            counters = {
                f"repro_router_{name}_total": value
                for name, value in self._counters.items()}
            gauges = {
                f"repro_router_{name}": value
                for name, value in self._gauges.items()}
        gauges["repro_router_shards"] = float(len(self.backends))
        gauges["repro_router_manifest_nodes"] = float(
            self.manifest.total_nodes)
        infos: Dict[str, Any] = {
            "repro_router_manifest_info": {
                "generation": self.manifest.generation,
                "source_snapshot":
                    self.manifest.source_snapshot or "",
            },
            "repro_router_shard_info": [
                {
                    "shard": str(backend.shard_id),
                    "url": backend.url,
                    "snapshot_id":
                        self.manifest.shards[
                            backend.shard_id].snapshot_id,
                }
                for backend in self.backends],
        }
        return self.metrics.render(counters=counters, gauges=gauges,
                                   infos=infos)
