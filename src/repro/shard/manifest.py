"""The routing manifest: the one document a router needs.

A partition run (:func:`repro.shard.partition.partition_snapshot`)
writes ``routing.json`` next to the per-shard snapshot stores::

    out/
      routing.json          <- this module's document
      shards/
        00/                 <- a SnapshotStore (LATEST + sn-... dirs)
        01/

The manifest carries, for every shard: the published snapshot id
(digest), the relative store path, the ``node_map`` translating the
shard's dense local node ids back to global ``G_D`` ids, counts, and
a :class:`KeywordBloom` over the shard's index vocabulary so the
router can skip shards that cannot contain a query's keywords. One
global ``owners`` array (global node id -> owning shard) backs the
anchor-ownership filter that makes cross-shard unions exact and
duplicate-free (see :mod:`repro.shard`).

Writing is atomic (temp file + ``os.replace``) so a router re-reading
the manifest during a republish never sees a torn document, matching
the :class:`~repro.snapshot.store.SnapshotStore` publish discipline.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import SnapshotFormatError, SnapshotNotFoundError

PathLike = Union[str, Path]

#: File name of the routing manifest inside a partition root.
ROUTING_NAME = "routing.json"

#: Manifest format version; bump on breaking layout changes.
ROUTING_VERSION = 1

#: Bloom sizing: bits per vocabulary entry (~1% false positives at
#: seven hashes).
_BLOOM_BITS_PER_KEY = 10

#: Number of hash probes per key.
_BLOOM_HASHES = 7


class KeywordBloom:
    """A tiny stdlib Bloom filter over one shard's keyword vocabulary.

    No false negatives: a keyword the shard indexed always probes
    positive, so routing never skips a shard that could answer. False
    positives only cost a wasted fan-out leg (the shard answers with
    an empty result). Hashing is ``sha256(salt || key)`` so the bit
    pattern is stable across processes and Python versions — the
    filter round-trips through JSON as a hex string.
    """

    def __init__(self, bits: int, hashes: int,
                 bitmap: bytearray) -> None:
        if bits <= 0 or hashes <= 0:
            raise SnapshotFormatError(
                f"bloom needs positive geometry, got bits={bits} "
                f"hashes={hashes}")
        if len(bitmap) != (bits + 7) // 8:
            raise SnapshotFormatError(
                f"bloom bitmap has {len(bitmap)} bytes for {bits} "
                f"bits")
        self.bits = bits
        self.hashes = hashes
        self.bitmap = bitmap

    @classmethod
    def build(cls, keys: Iterable[str],
              bits_per_key: int = _BLOOM_BITS_PER_KEY,
              hashes: int = _BLOOM_HASHES) -> "KeywordBloom":
        """A filter sized for ``keys`` (minimum 64 bits)."""
        keys = list(keys)
        bits = max(64, bits_per_key * len(keys))
        bloom = cls(bits, hashes, bytearray((bits + 7) // 8))
        for key in keys:
            bloom.add(key)
        return bloom

    def _probes(self, key: str) -> Iterable[int]:
        """The bit positions ``key`` maps to."""
        data = key.encode("utf-8")
        for salt in range(self.hashes):
            digest = hashlib.sha256(bytes([salt]) + data).digest()
            yield int.from_bytes(digest[:8], "big") % self.bits

    def add(self, key: str) -> None:
        """Set the key's bits."""
        for position in self._probes(key):
            self.bitmap[position // 8] |= 1 << (position % 8)

    def might_contain(self, key: str) -> bool:
        """``False`` means definitely absent; ``True`` means maybe."""
        return all(self.bitmap[p // 8] & (1 << (p % 8))
                   for p in self._probes(key))

    # -- JSON round-trip ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (geometry + hex bitmap)."""
        return {"bits": self.bits, "hashes": self.hashes,
                "bitmap": bytes(self.bitmap).hex()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "KeywordBloom":
        """Decode :meth:`to_dict` output."""
        return cls(int(payload["bits"]), int(payload["hashes"]),
                   bytearray(bytes.fromhex(payload["bitmap"])))


@dataclass
class ShardEntry:
    """One shard's row in the routing manifest."""

    #: Dense shard index (0-based; shard ``i`` serves store
    #: ``shards/{i:02d}`` by convention).
    shard_id: int
    #: Content-addressed id of the shard's published snapshot.
    snapshot_id: str
    #: Store path relative to the partition root.
    store: str
    #: Local node id -> global ``G_D`` node id (sorted ascending, so
    #: the list is also the shard's member set).
    node_map: List[int]
    #: How many of the shard's nodes it *owns* (the rest are halo).
    owned_nodes: int
    #: Shard snapshot counts (nodes/edges/vocab as in the snapshot
    #: manifest).
    counts: Dict[str, int]
    #: Whether the shard snapshot can be served in mmap mode.
    mappable: bool
    #: Bloom summary of the shard's indexed keywords.
    bloom: KeywordBloom = field(repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding of the row."""
        return {
            "shard_id": self.shard_id,
            "snapshot_id": self.snapshot_id,
            "store": self.store,
            "node_map": list(self.node_map),
            "owned_nodes": self.owned_nodes,
            "counts": dict(self.counts),
            "mappable": self.mappable,
            "bloom": self.bloom.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardEntry":
        """Decode :meth:`to_dict` output."""
        return cls(
            shard_id=int(payload["shard_id"]),
            snapshot_id=str(payload["snapshot_id"]),
            store=str(payload["store"]),
            node_map=[int(u) for u in payload["node_map"]],
            owned_nodes=int(payload["owned_nodes"]),
            counts={k: int(v)
                    for k, v in payload["counts"].items()},
            mappable=bool(payload["mappable"]),
            bloom=KeywordBloom.from_dict(payload["bloom"]),
        )


class RoutingManifest:
    """The shard table + ownership map + keyword routing summary."""

    def __init__(self, shards: Sequence[ShardEntry],
                 owners: Sequence[int],
                 index_radius: float, halo_radius: float,
                 source_snapshot: Optional[str] = None,
                 created_at: Optional[str] = None) -> None:
        self.shards = list(shards)
        #: ``owners[g]`` is the shard id owning global node ``g``.
        self.owners = list(owners)
        self.index_radius = float(index_radius)
        self.halo_radius = float(halo_radius)
        self.source_snapshot = source_snapshot
        self.created_at = created_at

    # -- identity -------------------------------------------------------
    @property
    def generation(self) -> str:
        """A content-derived token naming this shard configuration.

        Hashes the ordered shard snapshot ids, so republishing
        identical content yields the same generation — the router's
        analogue of the engine adopting a snapshot id as its
        generation.
        """
        digest = hashlib.sha256(
            "|".join(e.snapshot_id for e in self.shards)
            .encode("utf-8")).hexdigest()
        return f"rt-{digest[:12]}"

    @property
    def total_nodes(self) -> int:
        """Global node count (the length of the ownership map)."""
        return len(self.owners)

    def owner_of(self, global_node: int) -> int:
        """The shard id owning ``global_node``."""
        return self.owners[global_node]

    # -- keyword routing ------------------------------------------------
    def keyword_known(self, keyword: str) -> bool:
        """Whether *any* shard may index ``keyword``.

        ``False`` is definitive (Blooms have no false negatives), so
        the router can 400 an unknown keyword without a fan-out, just
        like a single-snapshot server's ``require_keyword``.
        """
        return any(e.bloom.might_contain(keyword) for e in self.shards)

    def shards_for(self, keywords: Sequence[str]) -> List[int]:
        """Shard ids whose Bloom admits *every* query keyword.

        A community's knodes all live within the owning shard's halo,
        so any shard that can answer a non-empty query indexes all of
        its keywords locally — shards missing one keyword are safely
        skipped.
        """
        return [e.shard_id for e in self.shards
                if all(e.bloom.might_contain(kw) for kw in keywords)]

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding of the whole manifest."""
        return {
            "version": ROUTING_VERSION,
            "kind": "routing-manifest",
            "generation": self.generation,
            "created_at": self.created_at,
            "source_snapshot": self.source_snapshot,
            "index_radius": self.index_radius,
            "halo_radius": self.halo_radius,
            "total_nodes": self.total_nodes,
            "owners": list(self.owners),
            "shards": [e.to_dict() for e in self.shards],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RoutingManifest":
        """Decode :meth:`to_dict` output, validating the envelope."""
        if payload.get("kind") != "routing-manifest":
            raise SnapshotFormatError(
                "not a routing manifest (missing kind marker)")
        version = payload.get("version")
        if version != ROUTING_VERSION:
            raise SnapshotFormatError(
                f"routing manifest version {version!r} is not "
                f"supported (expected {ROUTING_VERSION})")
        return cls(
            shards=[ShardEntry.from_dict(e)
                    for e in payload["shards"]],
            owners=[int(s) for s in payload["owners"]],
            index_radius=float(payload["index_radius"]),
            halo_radius=float(payload["halo_radius"]),
            source_snapshot=payload.get("source_snapshot"),
            created_at=payload.get("created_at"),
        )

    def save(self, root: PathLike) -> Path:
        """Atomically write ``routing.json`` under ``root``."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        target = root / ROUTING_NAME
        fd, tmp = tempfile.mkstemp(prefix=".routing-", dir=str(root))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target

    @classmethod
    def load(cls, path: PathLike) -> "RoutingManifest":
        """Read a manifest from a partition root or the file itself."""
        path = Path(path)
        if path.is_dir():
            path = path / ROUTING_NAME
        if not path.is_file():
            raise SnapshotNotFoundError(
                f"{path} is not a routing manifest")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise SnapshotFormatError(
                f"routing manifest {path} is not valid JSON: {error}")
        return cls.from_dict(payload)

    def store_path(self, root: PathLike, shard_id: int) -> Path:
        """Absolute store directory of shard ``shard_id``."""
        return Path(root) / self.shards[shard_id].store

    def __repr__(self) -> str:
        return (f"RoutingManifest(shards={len(self.shards)}, "
                f"nodes={self.total_nodes}, "
                f"generation={self.generation!r})")


def is_routing_root(path: PathLike) -> bool:
    """Whether ``path`` is a partition root (or the manifest file)."""
    path = Path(path)
    if path.is_file():
        return path.name == ROUTING_NAME
    return (path / ROUTING_NAME).is_file()
