"""Algorithm 6 — ``GraphProjection``: per-query subgraph from the index.

For an ``l``-keyword query with ``Rmax <= R`` (the index radius):

1. pull ``W_i`` (keyword nodes) from ``invertedN`` and ``E_i`` (edges
   with both endpoints within ``R`` of ``W_i``) from ``invertedE``;
   ``V_i = W_i ∪ endpoints(E_i)`` is the neighbor set of ``W_i``;
2. union everything into ``G'(V', E')`` and intersect the ``V_i`` into
   the candidate-center set ``V_c``;
3. keep exactly the nodes on some center→knode path of weight
   ``<= Rmax``: a forward Dijkstra from ``V_c`` (virtual source ``s``)
   plus a reverse Dijkstra from ``W' = ∪W_i`` (virtual sink ``t``)
   over ``G'``, then ``V_P = {v : dist(s,v) + dist(v,t) <= Rmax}``
   and ``E_P`` the ``E'`` edges inside ``V_P``.

Every community of the query lives entirely inside ``G_P`` with
unchanged distances, so answering on the projection is exact — with
one caveat the paper leaves unstated: an *induced* community edge
whose endpoints are each near a different keyword only may be missing
from ``E' = ∪E_i``. The facade therefore re-induces the final edge
sets against ``G_D`` (see :mod:`repro.core.search`), which restores
Definition 2.1 exactly; node sets, centers, costs and ranks are
unaffected. The projection-equivalence property tests check full
equality, edges included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra
from repro.text.inverted_index import CommunityIndex

Edge = Tuple[int, int, float]


@dataclass
class ProjectionResult:
    """A projected query graph plus id translation and statistics."""

    subgraph: DatabaseGraph
    mapping: Dict[int, int]        # G_D node id -> projected id
    inverse: List[int]             # projected id -> G_D node id
    node_lists: List[List[int]]    # keyword postings, projected ids
    union_nodes: int               # |V'| before the s/t filter
    union_edges: int               # |E'| before the s/t filter
    _relabel_map: Optional[Dict[int, int]] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def relabel_map(self) -> Dict[int, int]:
        """``{projected id: G_D id}``, built once and memoized.

        Translating a community back to ``G_D`` needs this dict;
        building it per answer used to cost O(|V_P|) for every
        community yielded. It is query-invariant, so it lives here —
        one construction per projection, shared by every consumer
        (including cached-projection reuse across queries).
        """
        if self._relabel_map is None:
            self._relabel_map = {
                new: old for new, old in enumerate(self.inverse)}
        return self._relabel_map

    @property
    def n(self) -> int:
        """Nodes kept in the projection."""
        return self.subgraph.n

    @property
    def m(self) -> int:
        """Edges kept in the projection."""
        return self.subgraph.m

    def fraction_of(self, dbg: DatabaseGraph) -> float:
        """|V_P| / |V(G_D)| — the paper reports max/avg of this."""
        return self.n / dbg.n if dbg.n else 0.0

    def to_original(self, node: int) -> int:
        """Translate a projected node id back to ``G_D``."""
        return self.inverse[node]


def project(index: CommunityIndex, keywords: Sequence[str], rmax: float
            ) -> ProjectionResult:
    """Run Algorithm 6 for one query against a built index."""
    if not keywords:
        raise QueryError("a query needs at least one keyword")
    if rmax < 0:
        raise QueryError(f"Rmax must be >= 0, got {rmax}")
    if rmax > index.radius:
        raise QueryError(
            f"Rmax={rmax} exceeds the index radius R={index.radius}; "
            f"rebuild the index with a larger radius")

    dbg = index.dbg
    keyword_node_sets: List[Set[int]] = []
    union_nodes: Set[int] = set()
    union_edges: Set[Edge] = set()
    centers: Set[int] = set()
    all_keyword_nodes: Set[int] = set()

    for position, keyword in enumerate(keywords):
        w_i = set(index.nodes(keyword))
        e_i = index.edges(keyword)
        v_i = set(w_i)
        for u, v, _ in e_i:
            v_i.add(u)
            v_i.add(v)
        keyword_node_sets.append(w_i)
        all_keyword_nodes |= w_i
        union_nodes |= v_i
        union_edges.update(e_i)
        centers = set(v_i) if position == 0 else centers & v_i

    # G'(V', E') as a dense temporary graph.
    inverse_union = sorted(union_nodes)
    dense = {node: idx for idx, node in enumerate(inverse_union)}
    dense_edges = [
        (dense[u], dense[v], w) for u, v, w in union_edges]
    union_graph = CompiledGraph.from_edges(len(inverse_union), dense_edges)

    dist_s = bounded_dijkstra(
        union_graph.forward, (dense[c] for c in centers), rmax)
    dist_t = bounded_dijkstra(
        union_graph.reverse,
        (dense[v] for v in all_keyword_nodes if v in dense), rmax)

    kept = [
        u for u, ds in dist_s.items()
        if u in dist_t and ds + dist_t[u] <= rmax
    ]
    kept_original = sorted(inverse_union[u] for u in kept)
    kept_set = set(kept_original)

    # Final projected DatabaseGraph over V_P with the E' edges inside.
    mapping = {node: idx for idx, node in enumerate(kept_original)}
    final_edges = [
        (mapping[u], mapping[v], w)
        for u, v, w in union_edges
        if u in kept_set and v in kept_set
    ]
    subgraph = DatabaseGraph(
        CompiledGraph.from_edges(len(kept_original), final_edges),
        [dbg.keywords_of(node) for node in kept_original],
        [dbg.label_of(node) for node in kept_original],
        [dbg.provenance_of(node) for node in kept_original],
    )
    node_lists = [
        sorted(mapping[v] for v in w_i if v in kept_set)
        for w_i in keyword_node_sets
    ]
    return ProjectionResult(
        subgraph=subgraph,
        mapping=mapping,
        inverse=kept_original,
        node_lists=node_lists,
        union_nodes=len(union_nodes),
        union_edges=len(union_edges),
    )
