"""Pluggable community cost functions.

The paper defines ``cost(R) = min over centers u of Σ_i dist(u, c_i)``
but notes "our work does not rely on a specific cost function". The
algorithms only need the per-center cost to be a *monotone* aggregate
of the ``l`` center→knode distances: then the nearest core at a center
(componentwise-nearest keyword nodes, what ``BestCore`` builds from
``src(N_i, u)``) minimizes the aggregate at that center, and the scan
over centers yields the global minimum — so PDall's subspace search
and PDk's ranked order stay exact for every aggregate here.

Two aggregates ship:

* ``"sum"``  — the paper's total weight (default);
* ``"max"``  — the eccentricity-style radius cost (rank by the worst
  center→knode distance instead of the total).

Pass ``aggregate="max"`` (or a :class:`CostAggregate`) to any query
API. Property tests verify PD ≡ naive under both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Union

from repro.exceptions import QueryError


@dataclass(frozen=True)
class CostAggregate:
    """A monotone aggregate of the l center→knode distances."""

    name: str
    combine: Callable[[Iterable[float]], float]

    def __call__(self, distances: Iterable[float]) -> float:
        return self.combine(distances)


SUM = CostAggregate("sum", sum)
MAX = CostAggregate("max", max)

_REGISTRY = {agg.name: agg for agg in (SUM, MAX)}

AggregateSpec = Union[str, CostAggregate]


def resolve_aggregate(spec: AggregateSpec = "sum") -> CostAggregate:
    """Turn ``"sum"`` / ``"max"`` / a custom aggregate into one object."""
    if isinstance(spec, CostAggregate):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise QueryError(
            f"unknown cost aggregate {spec!r}; known: "
            f"{sorted(_REGISTRY)}") from None
