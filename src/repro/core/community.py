"""The community model (paper Definition 2.1).

A *community* for an ``l``-keyword query is the induced subgraph of
``G_D`` over ``V = V_l ∪ V_c ∪ V_p``:

* ``V_l`` — *knodes*: the core ``C = [c_1..c_l]`` where ``c_i``
  contains keyword ``k_i`` (a node may fill several positions);
* ``V_c`` — *cnodes* (centers): nodes ``u`` with
  ``dist(u, c_i) <= Rmax`` for every knode;
* ``V_p`` — *pnodes*: nodes on any center→knode path of total weight
  ``<= Rmax``.

A community is uniquely determined by its core; its cost is
``min over centers u of Σ_i dist(u, c_i)`` and communities rank
ascending by cost (rank 1 = smallest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.graph.database_graph import DatabaseGraph

#: A core: one node id per query keyword, in keyword order.
Core = Tuple[int, ...]

Edge = Tuple[int, int, float]


@dataclass(frozen=True)
class Community:
    """An immutable community result.

    ``core[i]`` is the knode carrying keyword ``i`` of the query;
    ``centers``, ``pnodes`` and ``nodes`` are sorted node-id tuples;
    ``edges`` is the induced edge set (every ``G_D`` edge between
    community nodes, per Definition 2.1).
    """

    core: Core
    cost: float
    centers: Tuple[int, ...]
    pnodes: Tuple[int, ...]
    nodes: Tuple[int, ...]
    edges: Tuple[Edge, ...] = field(default_factory=tuple)

    @property
    def knodes(self) -> FrozenSet[int]:
        """The distinct keyword nodes (``V_l``)."""
        return frozenset(self.core)

    @property
    def size(self) -> int:
        """Number of nodes in the community."""
        return len(self.nodes)

    def is_multi_center(self) -> bool:
        """True when the community has more than one center — the
        structure trees cannot express (paper §I)."""
        return len(self.centers) > 1

    # ------------------------------------------------------------------
    def relabel(self, mapping: Mapping[int, int]) -> "Community":
        """Translate every node id through ``mapping``.

        Used to map results computed on a projected graph back into
        ``G_D``'s id space.
        """
        return Community(
            core=tuple(mapping[u] for u in self.core),
            cost=self.cost,
            centers=tuple(sorted(mapping[u] for u in self.centers)),
            pnodes=tuple(sorted(mapping[u] for u in self.pnodes)),
            nodes=tuple(sorted(mapping[u] for u in self.nodes)),
            edges=tuple(sorted(
                (mapping[u], mapping[v], w) for u, v, w in self.edges)),
        )

    def describe(self, dbg: DatabaseGraph) -> str:
        """Render the community with node labels, paper-figure style."""
        knode_labels = ", ".join(dbg.label_of(u) for u in sorted(self.knodes))
        center_labels = ", ".join(dbg.label_of(u) for u in self.centers)
        pnode_labels = ", ".join(dbg.label_of(u) for u in self.pnodes)
        lines = [
            f"Community(cost={self.cost:g})",
            f"  knodes : {knode_labels}",
            f"  cnodes : {center_labels}",
        ]
        if self.pnodes:
            lines.append(f"  pnodes : {pnode_labels}")
        lines.append(f"  edges  : {len(self.edges)}")
        return "\n".join(lines)


def rank_table(communities) -> Dict[int, Community]:
    """``rank (1-based) -> community`` for an already-sorted sequence."""
    return {rank: comm for rank, comm in enumerate(communities, start=1)}


def community_sort_key(community: Community) -> Tuple[float, Core]:
    """Deterministic ordering: ascending cost, then lexicographic core.

    The paper only requires ascending cost; the core tie-break pins a
    unique total order so tests and benchmarks are reproducible.
    """
    return (community.cost, community.core)
