"""Algorithm 3 — ``BestCore()``: the cheapest core across neighbor sets.

Every node ``u`` in ``⋂ N_i`` can serve as a center: its *nearest core*
is ``[src(N_1,u), …, src(N_l,u)]`` with cost ``Σ_i min(N_i, u)``.
``BestCore`` returns the minimum-cost nearest core over all such ``u``.

The paper scans a per-node table of ``l`` (nearest node, distance)
pairs plus a running sum and count, maintained while computing neighbor
sets; we get the same information from the
:class:`~repro.core.neighbor.NeighborSet` dictionaries and intersect by
iterating the smallest set — ``O(l · min_i |N_i|)`` with hash lookups,
never worse than the paper's ``O(l · n)`` scan.

Ties are broken by (cost, core, center), so enumeration is
deterministic — the paper leaves tie order unspecified.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.community import Core
from repro.core.cost import SUM, CostAggregate
from repro.core.neighbor import NeighborSet


class BestCoreResult(Tuple[Core, float, int]):
    """``(core, cost, center)`` triple returned by :func:`best_core`."""

    __slots__ = ()

    @property
    def core(self) -> Core:
        """The best core found."""
        return self[0]

    @property
    def cost(self) -> float:
        """Its cost at the best center."""
        return self[1]

    @property
    def center(self) -> int:
        """The center achieving that cost."""
        return self[2]


def best_core(neighbor_sets: Sequence[NeighborSet],
              aggregate: CostAggregate = SUM
              ) -> Optional[BestCoreResult]:
    """Find the cheapest core formable from the given neighbor sets.

    ``aggregate`` combines the l per-keyword distances into the
    per-center cost (paper default: sum). Returns ``None`` when no
    node lies in every ``N_i`` — the paper's "BestCore() will return
    an empty C" case that signals an exhausted subspace.
    """
    if not neighbor_sets:
        return None
    smallest = min(neighbor_sets, key=len)
    if not smallest:
        return None

    best: Optional[Tuple[float, Core, int]] = None
    others = [ns for ns in neighbor_sets if ns is not smallest]
    for u in smallest:
        if any(u not in ns for ns in others):
            continue
        cost = aggregate(ns.min_dist(u) for ns in neighbor_sets)
        if best is not None and cost > best[0]:
            continue
        core: Core = tuple(ns.src(u) for ns in neighbor_sets)
        candidate = (cost, core, u)
        if best is None or candidate < best:
            best = candidate
    if best is None:
        return None
    cost, core, center = best
    return BestCoreResult((core, cost, center))
