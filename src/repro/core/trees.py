"""Tree answers — the prior art the paper argues against (§I, Fig. 2).

Classic keyword search (BANKS and successors) returns *minimal rooted
connected trees*: a root node with one directed path to a keyword node
per query keyword. The paper's introduction shows five such trees for
the 2-keyword query {Kate, Smith} on Fig. 1 and argues that a single
community subsumes the information scattered across them.

This module implements that answer model so the comparison is
reproducible:

* a :class:`TreeAnswer` is the union of one simple root→knode path per
  keyword, forming a tree (diverge-and-remerge unions are rejected);
* *minimality*: every leaf carries a query keyword, and a root with a
  single child must carry one too (otherwise the subtree rooted at the
  child is the same answer — the standard reduction);
* answers are deduplicated by edge set and ranked by total edge
  weight.

Enumeration is exponential in general (it enumerates simple paths);
``max_paths`` guards against blow-ups. This is a motivation/comparison
exhibit, not a competitive tree-search engine.

``tests/integration/test_trees_vs_communities.py`` reproduces Fig. 2's
five trees and verifies the paper's claim that community ``R_1``
contains trees T1–T4 whole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.comm_all import resolve_keyword_nodes
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph

Edge = Tuple[int, int, float]
Path = Tuple[int, ...]


@dataclass(frozen=True)
class TreeAnswer:
    """A minimal rooted connected tree for an l-keyword query."""

    root: int
    core: Tuple[int, ...]          # knode per keyword, query order
    nodes: Tuple[int, ...]
    edges: Tuple[Edge, ...]
    weight: float

    @property
    def size(self) -> int:
        """Number of nodes in the tree."""
        return len(self.nodes)

    def describe(self, dbg: DatabaseGraph) -> str:
        """Render with node labels, Fig. 2 style."""
        arrows = ", ".join(
            f"{dbg.label_of(u)} -> {dbg.label_of(v)}"
            for u, v, _ in self.edges)
        return (f"Tree(root={dbg.label_of(self.root)}, "
                f"weight={self.weight:g}: {arrows})")


def _simple_paths(dbg: DatabaseGraph, source: int, targets: FrozenSet[int],
                  max_weight: float, max_paths: int
                  ) -> Dict[int, List[Tuple[Path, float]]]:
    """All simple paths from ``source`` to each target, bounded."""
    graph = dbg.graph
    found: Dict[int, List[Tuple[Path, float]]] = {t: [] for t in targets}
    count = 0

    # Hot loop: iterate the forward CSR slices directly instead of the
    # per-edge ``out_edges``/``neighbors`` generator (which costs a
    # frame resume per edge on a path-enumeration workload).
    indptr = graph.forward.indptr
    succs = graph.forward.targets
    succ_weights = graph.forward.weights
    stack: List[Tuple[int, Tuple[int, ...], float]] = [
        (source, (source,), 0.0)]
    while stack:
        node, path, weight = stack.pop()
        if node in targets and len(path) >= 1:
            found[node].append((path, weight))
            count += 1
            if count > max_paths:
                raise QueryError(
                    f"tree enumeration exceeded {max_paths} paths; "
                    f"tighten max_weight or raise max_paths")
        for idx in range(indptr[node], indptr[node + 1]):
            succ = int(succs[idx])
            if succ in path:
                continue
            step = float(succ_weights[idx])
            if weight + step <= max_weight:
                stack.append((succ, path + (succ,), weight + step))
    return found


def _assemble(root: int, paths: Sequence[Path], dbg: DatabaseGraph
              ) -> Optional[Tuple[Tuple[int, ...], Tuple[Edge, ...], float]]:
    """Union the paths; return (nodes, edges, weight) if a tree."""
    graph = dbg.graph
    edges = {}
    parent: Dict[int, int] = {}
    for path in paths:
        for u, v in zip(path, path[1:]):
            if parent.get(v, u) != u:
                return None  # two parents -> not a tree
            parent[v] = u
            edges[(u, v)] = graph.edge_weight(u, v)
    nodes = {root}
    for path in paths:
        nodes.update(path)
    if len(edges) != len(nodes) - 1:
        return None  # remerge/cycle
    edge_tuple = tuple(sorted(
        (u, v, w) for (u, v), w in edges.items()))
    weight = sum(w for _, _, w in edge_tuple)
    return tuple(sorted(nodes)), edge_tuple, weight


def _is_minimal(root: int, nodes: Sequence[int], edges: Sequence[Edge],
                keyword_sets: Sequence[FrozenSet[int]]) -> bool:
    """Standard reductions: keyword leaves; rooted at a branch point
    or a keyword node."""
    hits = set()
    for node_set in keyword_sets:
        hits |= node_set
    children: Dict[int, int] = {}
    for u, v, _ in edges:
        children[u] = children.get(u, 0) + 1
    for node in nodes:
        if children.get(node, 0) == 0 and node not in hits:
            return False  # non-keyword leaf
    if children.get(root, 0) <= 1 and root not in hits:
        return False  # reducible root
    return True


def enumerate_trees(dbg: DatabaseGraph, keywords: Sequence[str],
                    max_weight: float,
                    node_lists: Optional[Sequence[Sequence[int]]] = None,
                    max_paths: int = 50_000) -> List[TreeAnswer]:
    """All minimal rooted tree answers of total weight <= max_weight,
    ranked ascending by (weight, root, core)."""
    if max_weight < 0:
        raise QueryError(f"max_weight must be >= 0, got {max_weight}")
    keyword_sets = [
        frozenset(nodes)
        for nodes in resolve_keyword_nodes(dbg, keywords, node_lists)]
    all_targets = frozenset().union(*keyword_sets) if keyword_sets \
        else frozenset()

    answers: Dict[FrozenSet[Edge], TreeAnswer] = {}
    for root in range(dbg.n):
        paths_by_target = _simple_paths(dbg, root, all_targets,
                                        max_weight, max_paths)
        per_keyword: List[List[Tuple[int, Path, float]]] = []
        for node_set in keyword_sets:
            options = [
                (target, path, weight)
                for target in sorted(node_set)
                for path, weight in paths_by_target.get(target, [])]
            if not options:
                per_keyword = []
                break
            per_keyword.append(options)
        if not per_keyword:
            continue
        for combo in _combinations(per_keyword):
            assembled = _assemble(root, [path for _, path, _ in combo],
                                  dbg)
            if assembled is None:
                continue
            nodes, edges, weight = assembled
            if weight > max_weight:
                continue
            if not _is_minimal(root, nodes, edges, keyword_sets):
                continue
            key = frozenset(edges)
            core = tuple(target for target, _, _ in combo)
            candidate = TreeAnswer(root, core, nodes, edges, weight)
            existing = answers.get(key)
            if existing is None or (candidate.weight, candidate.root,
                                    candidate.core) \
                    < (existing.weight, existing.root, existing.core):
                answers[key] = candidate
    ranked = sorted(answers.values(),
                    key=lambda t: (t.weight, t.root, t.core))
    return ranked


def _combinations(per_keyword):
    """itertools.product, written out to keep tuples small."""
    from itertools import product
    return product(*per_keyword)


def top_k_trees(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
                max_weight: float,
                node_lists: Optional[Sequence[Sequence[int]]] = None
                ) -> List[TreeAnswer]:
    """The k lightest tree answers."""
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    return enumerate_trees(dbg, keywords, max_weight, node_lists)[:k]
