"""The naive ``O(n^l)`` reference enumerator (paper Section III).

For every node ``u`` (as a candidate center) a bounded forward Dijkstra
discovers which keyword nodes ``u`` reaches within ``Rmax``; the cross
product of those per-keyword sets yields every core centered at ``u``.
Accumulating ``core -> min total distance`` over all centers gives the
complete, duplication-free core set with exact costs.

This is deliberately simple and obviously correct — it is the ground
truth that the property-based tests hold PDall, PDk, BUall/BUk and
TDall/TDk against. Never run it on more than a few hundred nodes.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence

from repro.core.comm_all import resolve_keyword_nodes
from repro.core.community import Community, Core, community_sort_key
from repro.core.cost import AggregateSpec, resolve_aggregate
from repro.core.getcommunity import get_community
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra

#: Product sizes beyond this explode; refuse rather than hang the tests.
_MAX_CORES_PER_CENTER = 2_000_000


def naive_cores(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
                node_lists: Optional[Sequence[Sequence[int]]] = None,
                aggregate: AggregateSpec = "sum") -> Dict[Core, float]:
    """All cores with their exact community costs."""
    if rmax < 0:
        raise QueryError(f"Rmax must be >= 0, got {rmax}")
    combine = resolve_aggregate(aggregate)
    keyword_nodes = [
        set(nodes)
        for nodes in resolve_keyword_nodes(dbg, keywords, node_lists)]
    graph = dbg.graph

    cores: Dict[Core, float] = {}
    for center in range(graph.n):
        reach = bounded_dijkstra(graph.forward, [center], rmax).distances()
        per_keyword: List[List[int]] = []
        for nodes in keyword_nodes:
            hits = [v for v in nodes if v in reach]
            if not hits:
                per_keyword = []
                break
            per_keyword.append(hits)
        if not per_keyword:
            continue
        count = 1
        for hits in per_keyword:
            count *= len(hits)
        if count > _MAX_CORES_PER_CENTER:
            raise QueryError(
                f"naive enumeration would generate {count} cores for "
                f"center {center}; use the real algorithms")
        for combo in product(*per_keyword):
            cost = combine(reach[v] for v in combo)
            core: Core = tuple(combo)
            previous = cores.get(core)
            if previous is None or cost < previous:
                cores[core] = cost
    return cores


def naive_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
              node_lists: Optional[Sequence[Sequence[int]]] = None,
              aggregate: AggregateSpec = "sum") -> List[Community]:
    """All communities, sorted by (cost, core) — the test ground truth."""
    combine = resolve_aggregate(aggregate)
    cores = naive_cores(dbg, keywords, rmax, node_lists, combine)
    communities = [
        get_community(dbg.graph, core, rmax, combine) for core in cores]
    communities.sort(key=community_sort_key)
    return communities


def naive_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
                rmax: float,
                node_lists: Optional[Sequence[Sequence[int]]] = None,
                aggregate: AggregateSpec = "sum") -> List[Community]:
    """Top-k by the same deterministic order."""
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    return naive_all(dbg, keywords, rmax, node_lists, aggregate)[:k]
