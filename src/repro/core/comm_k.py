"""Algorithm 5 — ``COMM-k`` (PDk): top-k communities in ranked order,
with free interactive enlargement of ``k``.

Lawler-style enumeration: a *can-tuple* ``(C, cost, pos, prev)``
represents the best core of one subspace. Deheaping the globally
cheapest can-tuple ``g`` outputs its community, then splits ``g``'s
subspace (minus ``g.C``) into ``l − pos + 1`` child subspaces, finds
the best core of each with ``Neighbor()`` + ``BestCore()``, and enheaps
them. ``prev`` pointers keep deheaped can-tuples on the *can-list* so a
child can replay its ancestors' exclusions (Alg. 5 lines 20–23).

Because only the best core per subspace sits in the heap, answers pop
in exact ascending cost order; and because the stream object retains
the heap and can-list, asking for 50 more answers after the first k
costs exactly 50 more iterations — the paper's Exp-3 "interactive
top-k" property. The BU/TD baselines must re-run from scratch instead.

The heap is a binary heap rather than the paper's Fibonacci heap:
enheap becomes ``O(log)`` instead of amortized ``O(1)``, which is
irrelevant next to the ``O(l (n log n + m))`` Dijkstra work per answer.
Per answer, space grows by ``O(l)`` can-tuples of size ``O(l)``, giving
the paper's ``O(l² k + l n + m)`` bound.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.bestcore import best_core
from repro.core.comm_all import resolve_keyword_nodes
from repro.core.community import Community, Core
from repro.core.cost import AggregateSpec, resolve_aggregate
from repro.core.getcommunity import get_community
from repro.core.neighbor import neighbor
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph


class CanTuple:
    """One candidate: best core of a subspace (paper's can-tuple).

    ``pos`` is the 0-based coordinate at which this subspace split off
    its parent; ``prev`` points to the parent can-tuple on the
    can-list (``None`` for the root, whose subspace is everything).
    """

    __slots__ = ("core", "cost", "pos", "prev")

    def __init__(self, core: Core, cost: float, pos: int,
                 prev: Optional["CanTuple"]) -> None:
        self.core = core
        self.cost = cost
        self.pos = pos
        self.prev = prev

    def __repr__(self) -> str:
        return f"CanTuple(core={self.core}, cost={self.cost:g}, " \
               f"pos={self.pos})"


class TopKStream:
    """Ranked community stream over one query.

    Iterate it, or call :meth:`take` / :meth:`more` for batches. The
    stream never recomputes: 250 answers after 200 cost 50 extra
    ``Next()`` calls, which is exactly the interactive behaviour the
    paper's Exp-3 measures.
    """

    def __init__(self, dbg: DatabaseGraph, keywords: Sequence[str],
                 rmax: float,
                 node_lists: Optional[Sequence[Sequence[int]]] = None,
                 aggregate: AggregateSpec = "sum") -> None:
        if rmax < 0:
            raise QueryError(f"Rmax must be >= 0, got {rmax}")
        self.dbg = dbg
        self.graph = dbg.graph
        self.keywords = list(keywords)
        self.rmax = rmax
        self.aggregate = resolve_aggregate(aggregate)
        self.emitted = 0

        self._V: List[Set[int]] = [
            set(nodes)
            for nodes in resolve_keyword_nodes(dbg, keywords, node_lists)]
        # Heap entries are (cost, core, can-tuple): the core tuple makes
        # tie order deterministic. The can-list is implicit in the prev
        # pointers (deheaped tuples stay referenced by their children).
        self._heap: List[Tuple[float, Core, CanTuple]] = []

        first = best_core(
            [neighbor(self.graph, v, rmax) for v in self._V],
            self.aggregate)
        if first is not None:
            root = CanTuple(first.core, first.cost, 0, None)
            heapq.heappush(self._heap, (root.cost, root.core, root))

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Community]:
        while True:
            community = self.next_community()
            if community is None:
                return
            yield community

    def next_community(self) -> Optional[Community]:
        """The next community in ascending cost order, or ``None``."""
        if not self._heap:
            return None
        _, _, g = heapq.heappop(self._heap)
        community = get_community(self.graph, g.core, self.rmax,
                                  self.aggregate)
        self.emitted += 1
        self._spawn_children(g)
        return community

    def take(self, k: int) -> List[Community]:
        """Up to ``k`` further communities (first call: the top-k)."""
        if k < 0:
            raise QueryError(f"k must be >= 0, got {k}")
        result: List[Community] = []
        for _ in range(k):
            community = self.next_community()
            if community is None:
                break
            result.append(community)
        return result

    #: Asking for "the next 50" reads better as ``stream.more(50)``.
    more = take

    @property
    def exhausted(self) -> bool:
        """True when every community has been emitted."""
        return not self._heap

    # ------------------------------------------------------------------
    # Lawler splitting (paper's Next(), Alg. 5 lines 15-31)
    # ------------------------------------------------------------------
    def _spawn_children(self, g: CanTuple) -> None:
        graph, rmax = self.graph, self.rmax
        l = len(g.core)
        pinned = [neighbor(graph, [c], rmax) for c in g.core]

        # Rebuild g's subspace: start from the full V_i and replay every
        # ancestor split's exclusion (lines 18-23). A can-tuple with
        # pos = i split off its parent's subspace by excluding the
        # *parent's* coordinate-i value, so the replay removes
        # ``h.prev.C[h.pos]``; ``g.C[i]`` itself is excluded per split
        # inside the loop below (line 25). (The paper's pseudocode
        # prints ``h.C[h.pos]`` here, which re-admits the parent's core
        # and emits duplicates — see DESIGN.md §5.)
        S: List[Set[int]] = [set(v) for v in self._V]
        h: Optional[CanTuple] = g
        while h is not None and h.prev is not None:
            S[h.pos].discard(h.prev.core[h.pos])
            h = h.prev

        # open_N[j] caches Neighbor(S_j) for coordinates already
        # restored (j > current i), per lines 30-31.
        open_N = {}
        for i in range(l - 1, g.pos - 1, -1):
            S[i].discard(g.core[i])
            n_i = neighbor(graph, S[i], rmax)
            sets = pinned[:i] + [n_i] \
                + [open_N[j] for j in range(i + 1, l)]
            found = best_core(sets, self.aggregate)
            if found is not None:
                child = CanTuple(found.core, found.cost, i, g)
                heapq.heappush(self._heap,
                               (child.cost, child.core, child))
            S[i].add(g.core[i])
            open_N[i] = neighbor(graph, S[i], rmax)


def top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int, rmax: float,
          node_lists: Optional[Sequence[Sequence[int]]] = None,
          aggregate: AggregateSpec = "sum") -> List[Community]:
    """The top-k communities in ascending cost order (convenience)."""
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    return TopKStream(dbg, keywords, rmax, node_lists, aggregate).take(k)
