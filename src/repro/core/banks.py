"""BANKS-style backward expanding tree search (related work [2]).

The tree-search systems the paper compares its community model against
do not enumerate trees exhaustively (that is exponential — see
:mod:`repro.core.trees`); BANKS runs one *backward* Dijkstra frontier
per keyword and emits a rooted answer whenever some node has been
reached by every frontier:

* for each keyword ``k_i`` a single multi-source Dijkstra expands
  backwards from all nodes containing ``k_i`` (so reaching ``u`` means
  ``u`` can reach a ``k_i`` node forward);
* when a node ``u`` is settled by all ``l`` frontiers, the union of
  the ``l`` forward shortest paths from ``u`` to each frontier's
  nearest keyword node forms a rooted answer tree with score
  ``Σ_i dist(u, v_i)``;
* answers stream out roughly by score (frontiers interleave by
  distance, so the emission order is heuristic — BANKS' documented
  approximation, in contrast to PDk's exact ranking).

This gives the scalable tree-search comparator for benchmarks: the
same graphs and queries the community algorithms run on, answered in
the prior art's model. Note the correspondence the paper exploits:
BANKS roots are exactly community *centers*, and the emitted tree is
one shortest-path skeleton of the community centered there.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.comm_all import resolve_keyword_nodes
from repro.core.trees import TreeAnswer
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph

Edge = Tuple[int, int, float]


class _Frontier:
    """One keyword's backward Dijkstra, expandable step by step."""

    __slots__ = ("dist", "origin", "parent", "_heap", "_adjacency")

    def __init__(self, dbg: DatabaseGraph, sources: Sequence[int]) -> None:
        self.dist: Dict[int, float] = {}
        self.origin: Dict[int, int] = {}
        # parent[u] = next hop on the *forward* path u -> keyword node
        self.parent: Dict[int, Optional[int]] = {}
        self._heap: List[Tuple[float, int, int, Optional[int]]] = []
        self._adjacency = dbg.graph.reverse
        for source in sorted(set(sources)):
            heapq.heappush(self._heap, (0.0, source, source, None))

    def next_distance(self) -> Optional[float]:
        """Distance of the next node this frontier would settle."""
        while self._heap and self._heap[0][1] in self.dist:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def settle_one(self) -> Optional[int]:
        """Settle and return the next node (or ``None`` if done)."""
        while self._heap:
            d, u, origin, via = heapq.heappop(self._heap)
            if u in self.dist:
                continue
            self.dist[u] = d
            self.origin[u] = origin
            self.parent[u] = via
            indptr = self._adjacency.indptr
            targets = self._adjacency.targets
            weights = self._adjacency.weights
            for idx in range(indptr[u], indptr[u + 1]):
                v = int(targets[idx])
                if v not in self.dist:
                    heapq.heappush(
                        self._heap,
                        (d + float(weights[idx]), v, origin, u))
            return u
        return None

    def forward_path(self, node: int) -> List[int]:
        """The forward path node -> … -> keyword node."""
        path = [node]
        current = self.parent[node]
        while current is not None:
            path.append(current)
            current = self.parent[current]
        return path


def backward_search(dbg: DatabaseGraph, keywords: Sequence[str],
                    max_score: float = float("inf"),
                    node_lists: Optional[Sequence[Sequence[int]]] = None
                    ) -> Iterator[TreeAnswer]:
    """Stream BANKS answer trees, approximately score-ascending.

    ``max_score`` bounds the per-keyword distance (a root further than
    that from some keyword stops being considered, which also bounds
    the search). Each root yields exactly one tree (its shortest-path
    skeleton); roots whose path union degenerates (shared intermediate
    nodes with conflicting parents) are skipped, as BANKS does.
    """
    keyword_nodes = resolve_keyword_nodes(dbg, keywords, node_lists)
    if any(not nodes for nodes in keyword_nodes):
        return
    frontiers = [_Frontier(dbg, nodes) for nodes in keyword_nodes]
    emitted: Set[int] = set()

    while True:
        # expand the frontier with the smallest next distance (the
        # BANKS interleaving heuristic)
        best_idx = None
        best_distance = None
        for idx, frontier in enumerate(frontiers):
            distance = frontier.next_distance()
            if distance is None or distance > max_score:
                continue
            if best_distance is None or distance < best_distance:
                best_idx = idx
                best_distance = distance
        if best_idx is None:
            return
        node = frontiers[best_idx].settle_one()
        if node is None or node in emitted:
            continue
        if all(node in frontier.dist for frontier in frontiers):
            emitted.add(node)
            answer = _assemble_tree(dbg, node, frontiers)
            if answer is not None:
                yield answer


def _assemble_tree(dbg: DatabaseGraph, root: int,
                   frontiers: Sequence[_Frontier]
                   ) -> Optional[TreeAnswer]:
    graph = dbg.graph
    predecessor: Dict[int, int] = {}
    edges: Dict[Tuple[int, int], float] = {}
    core = []
    nodes = {root}
    for frontier in frontiers:
        core.append(frontier.origin[root])
        path = frontier.forward_path(root)
        nodes.update(path)
        for u, v in zip(path, path[1:]):
            # tree property: every non-root node has one predecessor
            # (branching out of a node is fine — roots branch)
            if predecessor.get(v, u) != u:
                return None  # paths remerge: not a tree
            predecessor[v] = u
            if (u, v) not in edges:
                edges[(u, v)] = graph.edge_weight(u, v)
    edge_tuple = tuple(sorted(
        (u, v, w) for (u, v), w in edges.items()))
    if len(edge_tuple) != len(nodes) - 1:
        return None
    score = sum(frontier.dist[root] for frontier in frontiers)
    return TreeAnswer(root=root, core=tuple(core),
                      nodes=tuple(sorted(nodes)), edges=edge_tuple,
                      weight=score)


def banks_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
                max_score: float = float("inf"),
                node_lists: Optional[Sequence[Sequence[int]]] = None
                ) -> List[TreeAnswer]:
    """The first k BANKS answers, re-sorted by exact score."""
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    answers = []
    for answer in backward_search(dbg, keywords, max_score, node_lists):
        answers.append(answer)
        # over-collect a little, then sort: BANKS emission order is
        # only approximately score-ascending
        if len(answers) >= 2 * k:
            break
    answers.sort(key=lambda t: (t.weight, t.root, t.core))
    return answers[:k]
