"""Algorithm 2 — ``Neighbor()``: bounded neighbor sets.

``Neighbor(G_D, S_i, Rmax)`` returns the set ``N_i`` of nodes ``u``
having some ``v ∈ S_i`` with ``dist(u, v) <= Rmax``, together with, for
every ``u ∈ N_i``, the nearest such ``v`` (``src(N_i, u)``) and its
distance (``min(N_i, u)``).

The paper realizes this by adding a virtual sink ``t`` with 0-weight
edges ``v -> t`` for ``v ∈ S_i`` and running Dijkstra on the reversed
graph from ``t``. Seeding a multi-source Dijkstra on the reverse
adjacency with every ``v ∈ S_i`` at distance 0 is the same computation
without graph mutation; the complexity is the Dijkstra bound
``O(n log n + m)``, and in practice far less because the search stops
at ``Rmax``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Tuple

from repro.graph.csr import CompiledGraph
from repro.graph.dijkstra import DistanceMap, bounded_dijkstra


class NeighborSet:
    """``N_i`` with per-node nearest source and distance.

    Supports ``u in n_i``, ``len(n_i)``, iteration over members, and
    the paper's two accessors :meth:`src` and :meth:`min_dist`.
    """

    __slots__ = ("_dmap",)

    def __init__(self, dmap: DistanceMap) -> None:
        self._dmap = dmap

    def __contains__(self, node: int) -> bool:
        return node in self._dmap

    def __len__(self) -> int:
        return len(self._dmap)

    def __iter__(self) -> Iterator[int]:
        return iter(self._dmap)

    def src(self, node: int) -> int:
        """``src(N_i, u)``: the nearest keyword node ``u`` reaches."""
        return self._dmap.source(node)

    def min_dist(self, node: int) -> float:
        """``min(N_i, u)``: distance from ``u`` to ``src(N_i, u)``."""
        return self._dmap[node]

    def get(self, node: int, default: float = math.inf) -> float:
        """Distance, or ``default`` when ``node`` is not in the set."""
        return self._dmap.get(node, default)

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate ``(node, distance)`` pairs."""
        return self._dmap.items()

    def pairs(self) -> Dict[int, Tuple[float, int]]:
        """``node -> (distance, src)`` view (materializes a dict)."""
        dist = self._dmap.distances()
        src = self._dmap.sources()
        return {u: (d, src[u]) for u, d in dist.items()}


def neighbor(graph: CompiledGraph, sources: Iterable[int],
             rmax: float) -> NeighborSet:
    """Algorithm 2: the neighbor set of ``sources`` within ``rmax``.

    ``sources`` is the paper's ``S_i`` (or a single pinned node
    ``{C[i]}`` inside ``Next()``). An empty source set yields an empty
    neighbor set, which is how exhausted subspaces manifest.
    """
    return NeighborSet(bounded_dijkstra(graph.reverse, sources, rmax))
