"""Algorithm 1 — ``COMM-all`` (PDall): enumerate all communities with
polynomial delay.

The enumerator partitions the core search space
``V_1 × V_2 × … × V_l`` around the current core
``C = [c_1..c_l]`` into ``l + 1`` disjoint subspaces

* ``{c_1} × … × {c_l}`` (the core just output),
* for each ``i``: ``{c_1}×…×{c_{i-1}} × (S_i − {c_i}) × S_{i+1}×…×S_l``

and traverses the resulting virtual tree depth-first. State lives in
the ``S_i`` sets (the paper's "global variables"): a successful descent
at level ``i`` keeps ``c_i`` removed from ``S_i``; an exhausted branch
resets ``S_i ← V_i`` and retries one level up. Every ``Next()`` call
performs ``O(l)`` bounded Dijkstras and ``BestCore()`` scans, giving
the paper's ``O(l · (n log n + m))`` delay with ``O(l·n + m)`` space —
no pool of already-output results is ever consulted (that is what
separates PDall from the BU/TD baselines).

Completeness and (weak) duplication-freeness: the ``l + 1`` subspaces
cover the current space and are pairwise disjoint, so a depth-first
walk visits every core exactly once. This is property-tested against
the naive ``O(n^l)`` enumerator.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set

from repro.core.bestcore import BestCoreResult, best_core
from repro.core.community import Community, Core
from repro.core.cost import AggregateSpec, resolve_aggregate
from repro.core.getcommunity import get_community
from repro.core.neighbor import NeighborSet, neighbor
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph


def resolve_keyword_nodes(dbg: DatabaseGraph, keywords: Sequence[str],
                          node_lists: Optional[Sequence[Sequence[int]]]
                          ) -> List[List[int]]:
    """The ``V_i`` lists for a query: from the caller (e.g. an inverted
    index) or by scanning the graph."""
    if not keywords:
        raise QueryError("a query needs at least one keyword")
    if node_lists is not None:
        if len(node_lists) != len(keywords):
            raise QueryError(
                f"{len(node_lists)} node lists for {len(keywords)} "
                f"keywords")
        return [list(nodes) for nodes in node_lists]
    return [dbg.nodes_with_keyword(kw) for kw in keywords]


class AllCommunitiesEnumerator:
    """Stateful PDall enumerator; iterate it to stream communities.

    The object owns the ``V_i`` / ``S_i`` / ``N_i`` state of
    Algorithm 1 so that each community is emitted with polynomial
    delay; :attr:`emitted` counts answers so far.
    """

    def __init__(self, dbg: DatabaseGraph, keywords: Sequence[str],
                 rmax: float,
                 node_lists: Optional[Sequence[Sequence[int]]] = None,
                 aggregate: AggregateSpec = "sum") -> None:
        if rmax < 0:
            raise QueryError(f"Rmax must be >= 0, got {rmax}")
        self.dbg = dbg
        self.graph = dbg.graph
        self.keywords = list(keywords)
        self.rmax = rmax
        self.aggregate = resolve_aggregate(aggregate)
        self.emitted = 0

        self._V: List[Set[int]] = [
            set(nodes)
            for nodes in resolve_keyword_nodes(dbg, keywords, node_lists)]
        self._S: List[Set[int]] = [set(v) for v in self._V]
        self._N: List[NeighborSet] = [
            neighbor(self.graph, s, rmax) for s in self._S]

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Community]:
        found = best_core(self._N, self.aggregate)
        while found is not None:
            community = get_community(self.graph, found.core, self.rmax,
                                      self.aggregate)
            self.emitted += 1
            yield community
            found = self._next(found.core)

    # ------------------------------------------------------------------
    def _next(self, core: Core) -> Optional[BestCoreResult]:
        """The paper's ``Next()``: best core of the next subspace.

        Lines 11–12 pin every coordinate to the current core; the
        descending loop opens coordinate ``i`` (minus ``c_i``) while
        keeping ``j > i`` fully open (their ``S_j`` were reset when
        their branches exhausted) — exactly Algorithm 1 lines 13–20.
        """
        graph, rmax = self.graph, self.rmax
        pinned = [neighbor(graph, [c], rmax) for c in core]
        l = len(core)
        for i in range(l - 1, -1, -1):
            self._S[i].discard(core[i])
            self._N[i] = neighbor(graph, self._S[i], rmax)
            sets = pinned[:i] + self._N[i:]
            found = best_core(sets, self.aggregate)
            if found is not None:
                return found
            self._S[i] = set(self._V[i])
            self._N[i] = neighbor(graph, self._S[i], rmax)
        return None


def enumerate_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
                  node_lists: Optional[Sequence[Sequence[int]]] = None,
                  aggregate: AggregateSpec = "sum"
                  ) -> Iterator[Community]:
    """Stream every community of the query, PDall order (depth-first,
    cheapest-first within each subspace)."""
    return iter(AllCommunitiesEnumerator(dbg, keywords, rmax, node_lists,
                                         aggregate))


def all_communities(dbg: DatabaseGraph, keywords: Sequence[str],
                    rmax: float,
                    node_lists: Optional[Sequence[Sequence[int]]] = None,
                    aggregate: AggregateSpec = "sum") -> List[Community]:
    """Materialize the full result list (convenience wrapper)."""
    return list(enumerate_all(dbg, keywords, rmax, node_lists, aggregate))
