"""Algorithm 4 — ``GetCommunity()``: materialize a core's community.

Given a core ``C`` (which uniquely determines the community):

1. *centers* ``V_c``: one bounded reverse Dijkstra per distinct knode
   gives ``dist(u, c)`` for every ``u``; a node is a center when it
   reaches **every** knode within ``Rmax``. The community's cost is the
   minimum, over centers, of ``Σ_i dist(u, C[i])``.
2. *community nodes* ``V``: a forward multi-source Dijkstra seeded at
   the centers (the paper's virtual source ``s``) and a reverse
   multi-source Dijkstra seeded at the knodes (virtual sink ``t``)
   yield ``dist(s, u)`` and ``dist(u, t)``; ``V`` keeps the nodes with
   ``dist(s, u) + dist(u, t) <= Rmax`` — exactly the nodes lying on
   some center→knode path of total weight ``<= Rmax``.
3. the community is the subgraph of ``G_D`` induced by ``V``.

Total cost: ``l + 2`` bounded Dijkstras, i.e. ``O(l (n log n + m))``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.community import Community, Core
from repro.core.cost import SUM, CostAggregate
from repro.exceptions import QueryError
from repro.graph.csr import CompiledGraph
from repro.graph.dijkstra import bounded_dijkstra


def find_centers(graph: CompiledGraph, core: Core, rmax: float,
                 aggregate: CostAggregate = SUM) -> Dict[int, float]:
    """Centers of ``core`` and their aggregated distance to all knodes.

    Returns ``u -> aggregate_i dist(u, C[i])`` for every node ``u``
    that reaches each distinct knode within ``rmax``. Duplicate core
    positions (one node carrying several query keywords) contribute
    once per *position*, matching the paper's ``Σ_{i=1}^{l}``.
    """
    distinct = sorted(set(core))
    per_knode = {
        c: bounded_dijkstra(graph.reverse, [c], rmax).distances()
        for c in distinct
    }
    candidates = min(per_knode.values(), key=len)
    centers: Dict[int, float] = {}
    for u in candidates:
        distances: List[float] = []
        for c in core:  # per position, so duplicates count twice
            dist_map = per_knode[c]
            if u not in dist_map:
                distances = []
                break
            distances.append(dist_map[u])
        if distances:
            centers[u] = aggregate(distances)
    return centers


def get_community(graph: CompiledGraph, core: Core, rmax: float,
                  aggregate: CostAggregate = SUM) -> Community:
    """Materialize the unique community determined by ``core``."""
    if not core:
        raise QueryError("empty core")
    if rmax < 0:
        raise QueryError(f"Rmax must be >= 0, got {rmax}")

    centers = find_centers(graph, core, rmax, aggregate)
    if not centers:
        raise QueryError(
            f"core {core!r} has no center within Rmax={rmax}; it does "
            f"not determine a community")
    cost = min(centers.values())

    dist_s = bounded_dijkstra(graph.forward, centers.keys(), rmax)
    dist_t = bounded_dijkstra(graph.reverse, set(core), rmax)

    members: List[int] = [
        u for u, ds in dist_s.items()
        if u in dist_t and ds + dist_t[u] <= rmax
    ]
    members.sort()

    knodes = frozenset(core)
    center_set = frozenset(centers)
    pnodes = tuple(
        u for u in members if u not in knodes and u not in center_set)
    edges = tuple(graph.induced_edges(members))

    return Community(
        core=tuple(core),
        cost=cost,
        centers=tuple(sorted(center_set)),
        pnodes=pnodes,
        nodes=tuple(members),
        edges=edges,
    )
