"""TDall / TDk — the top-down expanding baseline (Section III).

Expansion runs *forward* from every node ``u`` of the graph, up to
``Rmax``: the keyword nodes u reaches form its ``u.V_i`` sets, cores
are the cross product, and the pool rejects duplicates. Unlike BU, the
expansion state for ``u`` is freed as soon as ``u`` is processed —
which is why the paper measures TDall below BUall on memory — but the
pool of output cores still grows with the result size, so TD is also
only incremental-polynomial. TDk prunes like BUk and cannot resume.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.baselines.pool import BaselineStats, Deadline, \
    DedupPool, TopKPool
from repro.core.comm_all import resolve_keyword_nodes
from repro.core.community import Community, Core, community_sort_key
from repro.core.cost import SUM, AggregateSpec, CostAggregate, \
    resolve_aggregate
from repro.core.getcommunity import get_community
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra

_MAX_CANDIDATES_PER_CENTER = 2_000_000


def _cores_at(center: int, keyword_sets: List[Set[int]],
              reach: Dict[int, float],
              aggregate: CostAggregate = SUM,
              deadline: Optional[Deadline] = None
              ) -> Iterator[Tuple[Core, float]]:
    """Candidate cores centered at one node, with per-center costs."""
    per_keyword: List[List[Tuple[int, float]]] = []
    for nodes in keyword_sets:
        hits = sorted((v, reach[v]) for v in nodes if v in reach)
        if not hits:
            return
        per_keyword.append(hits)
    count = 1
    for hits in per_keyword:
        count *= len(hits)
    if count > _MAX_CANDIDATES_PER_CENTER:
        raise QueryError(
            f"top-down expansion would enumerate {count} candidate "
            f"cores at center {center}; narrow the query")
    for combo in product(*per_keyword):
        if deadline is not None and deadline.check():
            return
        yield (tuple(v for v, _ in combo),
               aggregate(d for _, d in combo))


def _expansions(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
                node_lists: Optional[Sequence[Sequence[int]]],
                stats: BaselineStats
                ) -> Iterator[Tuple[int, Dict[int, float], List[Set[int]]]]:
    if rmax < 0:
        raise QueryError(f"Rmax must be >= 0, got {rmax}")
    keyword_sets = [
        set(nodes)
        for nodes in resolve_keyword_nodes(dbg, keywords, node_lists)]
    graph = dbg.graph
    for u in range(graph.n):
        stats.expansions += 1
        reach = bounded_dijkstra(graph.forward, [u], rmax).distances()
        yield u, reach, keyword_sets


def td_iter(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
            node_lists: Optional[Sequence[Sequence[int]]] = None,
            stats: Optional[BaselineStats] = None,
            aggregate: AggregateSpec = "sum",
            budget_seconds: Optional[float] = None
            ) -> Iterator[Community]:
    """Streaming TDall: communities in discovery order (center id,
    then core); each node's expansion memory is freed before the next
    node is visited. ``budget_seconds`` censors the run (see
    :func:`repro.core.baselines.bottom_up.bu_iter`)."""
    stats = stats if stats is not None else BaselineStats()
    combine = resolve_aggregate(aggregate)
    deadline = Deadline(budget_seconds)
    pool = DedupPool(stats)
    for u, reach, keyword_sets in _expansions(dbg, keywords, rmax,
                                              node_lists, stats):
        if deadline.check_now():
            break
        for core, _ in _cores_at(u, keyword_sets, reach, combine,
                                 deadline):
            if pool.admit(core):
                yield get_community(dbg.graph, core, rmax, combine)
    if deadline.expired:
        stats.extra["timed_out"] = 1.0


def td_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
           node_lists: Optional[Sequence[Sequence[int]]] = None,
           stats: Optional[BaselineStats] = None,
           aggregate: AggregateSpec = "sum",
           budget_seconds: Optional[float] = None) -> List[Community]:
    """TDall: all communities, materialized (see :func:`td_iter`)."""
    return list(td_iter(dbg, keywords, rmax, node_lists, stats,
                        aggregate, budget_seconds))


def td_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
             rmax: float,
             node_lists: Optional[Sequence[Sequence[int]]] = None,
             stats: Optional[BaselineStats] = None,
             aggregate: AggregateSpec = "sum",
             budget_seconds: Optional[float] = None
             ) -> List[Community]:
    """TDk: top-k by cost via a pruned pool; no resume (see BUk)."""
    stats = stats if stats is not None else BaselineStats()
    combine = resolve_aggregate(aggregate)
    deadline = Deadline(budget_seconds)
    pool = TopKPool(k, stats)
    for u, reach, keyword_sets in _expansions(dbg, keywords, rmax,
                                              node_lists, stats):
        if deadline.check_now():
            break
        for core, cost in _cores_at(u, keyword_sets, reach, combine,
                                    deadline):
            pool.offer(core, cost)
    if deadline.expired:
        stats.extra["timed_out"] = 1.0
    communities = [
        get_community(dbg.graph, core, rmax, combine)
        for core, _ in pool.results()]
    communities.sort(key=community_sort_key)
    return communities
