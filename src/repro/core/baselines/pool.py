"""Shared pool machinery for the BU/TD baselines.

The *pool* is exactly what the paper holds against these algorithms:
to stay duplication-free they must remember every core already seen
(:class:`DedupPool`), and the top-k variants must remember the best k
costs seen so far to prune (:class:`TopKPool`). Pool size is the
baselines' memory story, so both classes track their peak occupancy for
the benchmark harness.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.community import Core
from repro.exceptions import QueryError


class Deadline:
    """A cheap cooperative time budget for baseline candidate loops.

    BU/TD candidate enumeration is combinatorial (that is the point of
    the comparison), so production use and benchmarks need a way to
    censor runaway cells instead of hanging. ``check()`` consults the
    clock only every ``stride`` calls; once expired it stays expired,
    and the caller reports the run as timed out.
    """

    __slots__ = ("_deadline", "expired", "_counter", "_stride")

    def __init__(self, seconds: Optional[float],
                 stride: int = 2048) -> None:
        self._deadline = (
            None if seconds is None else time.perf_counter() + seconds)
        self.expired = seconds is not None and seconds <= 0
        self._counter = 0
        self._stride = stride

    def check(self) -> bool:
        """True when the budget is exhausted (clock read only every
        ``stride`` calls — for per-candidate hot loops)."""
        if self._deadline is None or self.expired:
            return self.expired
        self._counter += 1
        if self._counter >= self._stride:
            self._counter = 0
            if time.perf_counter() >= self._deadline:
                self.expired = True
        return self.expired

    def check_now(self) -> bool:
        """True when exhausted, reading the clock immediately — for
        per-center loops where each iteration does real work."""
        if self._deadline is None or self.expired:
            return self.expired
        if time.perf_counter() >= self._deadline:
            self.expired = True
        return self.expired


@dataclass
class BaselineStats:
    """Bookkeeping the benchmarks report for BU/TD runs.

    ``candidates`` counts every (center, core) combination generated;
    ``duplicates`` counts the ones rejected by the pool — the wasted
    work PDall never performs; ``pool_peak`` is the largest number of
    cores the pool held.
    """

    candidates: int = 0
    duplicates: int = 0
    pool_peak: int = 0
    expansions: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class DedupPool:
    """The already-output core pool of BUall/TDall."""

    def __init__(self, stats: Optional[BaselineStats] = None) -> None:
        self._seen: Set[Core] = set()
        self.stats = stats if stats is not None else BaselineStats()

    def admit(self, core: Core) -> bool:
        """True when ``core`` is new (and record it); False on duplicate."""
        self.stats.candidates += 1
        if core in self._seen:
            self.stats.duplicates += 1
            return False
        self._seen.add(core)
        self.stats.pool_peak = max(self.stats.pool_peak, len(self._seen))
        return True

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, core: Core) -> bool:
        return core in self._seen


class TopKPool:
    """Bounded best-k pool for BUk/TDk.

    Keeps ``core -> min cost seen`` but prunes candidates that cannot
    rank in the top k. Pruning against the running k-th best is safe:
    per-center costs only over-estimate a core's true cost, and the
    core's optimal center contributes its exact cost as a separate
    candidate, so the final k smallest are exact. What pruning destroys
    is *resumability* — ranks beyond k are gone, which is why these
    baselines must recompute from scratch when the user enlarges k
    (paper Exp-3).
    """

    def __init__(self, k: int, stats: Optional[BaselineStats] = None) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        self.k = k
        self._best: Dict[Core, float] = {}
        self._threshold: float = float("inf")
        self.stats = stats if stats is not None else BaselineStats()

    def offer(self, core: Core, cost: float) -> None:
        """Consider one (core, per-center cost) candidate."""
        self.stats.candidates += 1
        if cost > self._threshold:
            return
        previous = self._best.get(core)
        if previous is not None:
            self.stats.duplicates += 1
            if cost < previous:
                self._best[core] = cost
            return
        self._best[core] = cost
        self.stats.pool_peak = max(self.stats.pool_peak, len(self._best))
        if len(self._best) > 2 * self.k:
            self._compact()
        elif len(self._best) >= self.k:
            self._threshold = self._kth_cost()

    def results(self) -> List[Tuple[Core, float]]:
        """The final top-k as ``(core, cost)``, ascending (cost, core)."""
        ordered = sorted(self._best.items(), key=lambda kv: (kv[1], kv[0]))
        return ordered[: self.k]

    def __len__(self) -> int:
        return len(self._best)

    # ------------------------------------------------------------------
    def _kth_cost(self) -> float:
        costs = heapq.nsmallest(self.k, self._best.values())
        return costs[-1] if len(costs) >= self.k else float("inf")

    def _compact(self) -> None:
        keep = sorted(self._best.items(), key=lambda kv: (kv[1], kv[0]))
        self._best = dict(keep[: self.k])
        self._threshold = self._kth_cost()
