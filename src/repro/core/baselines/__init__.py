"""The expanding baselines of Section III.

Both find the same complete, duplication-free community set as PDall —
but only by checking every candidate core against a *pool* of cores
already output, which makes them incremental-polynomial rather than
polynomial-delay, and makes their memory grow with the output size.
The top-k variants prune the pool to k entries and therefore cannot
resume when the user enlarges k (the paper's Exp-3 contrast with PDk).

* :mod:`repro.core.baselines.bottom_up` — BUall / BUk: expand
  backwards from every keyword node, accumulating per-node reachable
  keyword-node sets (``u.V_i``) for the whole graph at once;
* :mod:`repro.core.baselines.top_down` — TDall / TDk: expand forward
  from each candidate center in turn, freeing the expansion after each
  node (less memory than BU, same pool).
"""

from repro.core.baselines.bottom_up import bu_all, bu_iter, bu_top_k
from repro.core.baselines.pool import BaselineStats, TopKPool
from repro.core.baselines.top_down import td_all, td_iter, td_top_k

__all__ = [
    "BaselineStats",
    "TopKPool",
    "bu_all",
    "bu_iter",
    "bu_top_k",
    "td_all",
    "td_iter",
    "td_top_k",
]
