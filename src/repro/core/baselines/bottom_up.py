"""BUall / BUk — the bottom-up expanding baseline (Section III).

Expansion runs backwards from every keyword node ``v ∈ V_i`` up to
``Rmax``; every reached node ``u`` records ``v`` (and the distance) in
its per-keyword set ``u.V_i``. A node whose ``l`` sets are all
non-empty is a center, and the cross product of its sets yields
candidate cores, each checked against the pool.

The defining costs of this approach, which the paper's experiments
surface and ours reproduce:

* it holds the full ``u.V_i`` structure for *every* node at once —
  the highest memory of the three algorithms (Fig. 9(b));
* every candidate core must be deduplicated against the pool of cores
  already found, so the delay of the o-th answer grows with o —
  incremental polynomial, not polynomial delay;
* BUk prunes the pool to k entries, so enlarging k means starting
  over (Exp-3).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.baselines.pool import BaselineStats, Deadline, \
    DedupPool, TopKPool
from repro.core.comm_all import resolve_keyword_nodes
from repro.core.community import Community, Core, community_sort_key
from repro.core.cost import SUM, AggregateSpec, CostAggregate, \
    resolve_aggregate
from repro.core.getcommunity import get_community
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra

#: ``u.V_i`` for all u: node -> list (per keyword) of {knode: distance}.
ReachTable = Dict[int, List[Dict[int, float]]]

#: Refuse pathological cross products rather than hang (same guard the
#: naive enumerator uses; PDall/PDk never enumerate products at all).
_MAX_CANDIDATES_PER_CENTER = 2_000_000


def expand_from_keywords(dbg: DatabaseGraph, keywords: Sequence[str],
                         rmax: float,
                         node_lists: Optional[Sequence[Sequence[int]]] = None,
                         stats: Optional[BaselineStats] = None
                         ) -> ReachTable:
    """The bottom-up expansion: build ``u.V_i`` for every node ``u``.

    One bounded reverse Dijkstra per keyword *node* (not per keyword):
    the per-source sets must stay separate because every reached
    keyword node is a distinct core coordinate.
    """
    if rmax < 0:
        raise QueryError(f"Rmax must be >= 0, got {rmax}")
    keyword_nodes = resolve_keyword_nodes(dbg, keywords, node_lists)
    l = len(keyword_nodes)
    graph = dbg.graph
    reach: ReachTable = {}
    for i, nodes in enumerate(keyword_nodes):
        for v in sorted(nodes):
            if stats is not None:
                stats.expansions += 1
            dmap = bounded_dijkstra(graph.reverse, [v], rmax)
            for u, dist in dmap.items():
                entry = reach.get(u)
                if entry is None:
                    entry = [dict() for _ in range(l)]
                    reach[u] = entry
                entry[i][v] = dist
    return reach


def _center_cores(entry: List[Dict[int, float]],
                  aggregate: CostAggregate = SUM,
                  deadline: Optional[Deadline] = None
                  ) -> Iterator[Tuple[Core, float]]:
    """All cores formable at one center, with their per-center costs.

    Stops early (leaving ``deadline.expired`` set) when the time
    budget runs out mid-product.
    """
    per_keyword = [sorted(d.items()) for d in entry]
    count = 1
    for pairs in per_keyword:
        count *= len(pairs)
    if count > _MAX_CANDIDATES_PER_CENTER:
        raise QueryError(
            f"bottom-up expansion would enumerate {count} candidate "
            f"cores at one center; narrow the query")
    for combo in product(*per_keyword):
        if deadline is not None and deadline.check():
            return
        core: Core = tuple(v for v, _ in combo)
        cost = aggregate(dist for _, dist in combo)
        yield core, cost


def bu_iter(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
            node_lists: Optional[Sequence[Sequence[int]]] = None,
            stats: Optional[BaselineStats] = None,
            aggregate: AggregateSpec = "sum",
            budget_seconds: Optional[float] = None
            ) -> Iterator[Community]:
    """Streaming BUall: communities in discovery order (center id,
    then core). The full expansion happens up front (that is the BU
    design); cores then stream out as the pool admits them.

    With ``budget_seconds`` the candidate enumeration is censored when
    the budget expires (``stats.extra["timed_out"]`` is set) — results
    up to that point are still complete prefixes of discovery order.
    """
    stats = stats if stats is not None else BaselineStats()
    combine = resolve_aggregate(aggregate)
    deadline = Deadline(budget_seconds)
    reach = expand_from_keywords(dbg, keywords, rmax, node_lists, stats)
    pool = DedupPool(stats)
    for u in sorted(reach):
        if deadline.check_now():
            break
        entry = reach[u]
        if any(not d for d in entry):
            continue
        for core, _ in _center_cores(entry, combine, deadline):
            if pool.admit(core):
                yield get_community(dbg.graph, core, rmax, combine)
    if deadline.expired:
        stats.extra["timed_out"] = 1.0


def bu_all(dbg: DatabaseGraph, keywords: Sequence[str], rmax: float,
           node_lists: Optional[Sequence[Sequence[int]]] = None,
           stats: Optional[BaselineStats] = None,
           aggregate: AggregateSpec = "sum",
           budget_seconds: Optional[float] = None) -> List[Community]:
    """BUall: all communities, materialized (see :func:`bu_iter`)."""
    return list(bu_iter(dbg, keywords, rmax, node_lists, stats,
                        aggregate, budget_seconds))


def bu_top_k(dbg: DatabaseGraph, keywords: Sequence[str], k: int,
             rmax: float,
             node_lists: Optional[Sequence[Sequence[int]]] = None,
             stats: Optional[BaselineStats] = None,
             aggregate: AggregateSpec = "sum",
             budget_seconds: Optional[float] = None
             ) -> List[Community]:
    """BUk: the top-k communities by cost, via a pruned pool.

    Unlike :class:`~repro.core.comm_k.TopKStream`, nothing survives
    this call: asking for k + 50 answers afterwards re-runs the whole
    expansion (the paper's Exp-3 measures exactly that penalty).
    """
    stats = stats if stats is not None else BaselineStats()
    combine = resolve_aggregate(aggregate)
    deadline = Deadline(budget_seconds)
    reach = expand_from_keywords(dbg, keywords, rmax, node_lists, stats)
    pool = TopKPool(k, stats)
    for u in sorted(reach):
        if deadline.check_now():
            stats.extra["timed_out"] = 1.0
            break
        entry = reach[u]
        if any(not d for d in entry):
            continue
        for core, cost in _center_cores(entry, combine, deadline):
            pool.offer(core, cost)
    if deadline.expired:
        stats.extra["timed_out"] = 1.0
    communities = [
        get_community(dbg.graph, core, rmax, combine)
        for core, _ in pool.results()]
    communities.sort(key=community_sort_key)
    return communities
