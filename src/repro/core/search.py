"""High-level facade: index once, project per query, run any algorithm.

:class:`CommunitySearch` is the API a downstream user touches::

    search = CommunitySearch(dbg)          # or .from_database(db)
    search.build_index(radius=8)
    for community in search.all_communities(["kate", "smith"], rmax=6):
        print(community.describe(dbg))

    stream = search.top_k_stream(["kate", "smith"], rmax=6)
    first = stream.take(10)
    fifty_more = stream.more(50)           # no recomputation (PDk)

Queries run on the Algorithm-6 projection whenever an index exists
(exactly how the paper benchmarks every algorithm); results are
translated back to ``G_D`` ids, and their edge sets re-induced against
``G_D`` so Definition 2.1 holds verbatim (see
:mod:`repro.core.projection` for why).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.baselines.bottom_up import bu_iter, bu_top_k
from repro.core.baselines.pool import BaselineStats
from repro.core.baselines.top_down import td_iter, td_top_k
from repro.core.comm_all import enumerate_all
from repro.core.comm_k import TopKStream
from repro.core.community import Community
from repro.core.cost import AggregateSpec
from repro.core.naive import naive_all, naive_top_k
from repro.core.projection import ProjectionResult, project
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.text.inverted_index import CommunityIndex

#: Algorithms accepted by :meth:`CommunitySearch.all_communities`.
ALL_ALGORITHMS = ("pd", "bu", "td", "naive")

#: Algorithms accepted by :meth:`CommunitySearch.top_k`.
TOPK_ALGORITHMS = ("pd", "bu", "td", "naive")


class ProjectedTopKStream:
    """A :class:`TopKStream` over a projection, translated to ``G_D``."""

    def __init__(self, inner: TopKStream, projection: ProjectionResult,
                 dbg: DatabaseGraph) -> None:
        self._inner = inner
        self._projection = projection
        self._dbg = dbg

    def next_community(self) -> Optional[Community]:
        """Next ranked community in ``G_D`` id space, or ``None``."""
        community = self._inner.next_community()
        if community is None:
            return None
        return _translate(community, self._projection, self._dbg)

    def take(self, k: int) -> List[Community]:
        """Up to ``k`` further communities."""
        result = []
        for _ in range(k):
            community = self.next_community()
            if community is None:
                break
            result.append(community)
        return result

    more = take

    @property
    def emitted(self) -> int:
        """How many communities this stream has produced."""
        return self._inner.emitted

    @property
    def exhausted(self) -> bool:
        """True when the stream has no more communities."""
        return self._inner.exhausted

    def __iter__(self) -> Iterator[Community]:
        while True:
            community = self.next_community()
            if community is None:
                return
            yield community


def _translate(community: Community, projection: ProjectionResult,
               dbg: DatabaseGraph) -> Community:
    """Projected ids -> G_D ids, re-inducing edges against G_D."""
    relabeled = community.relabel(
        {new: old for new, old in enumerate(projection.inverse)})
    return Community(
        core=relabeled.core,
        cost=relabeled.cost,
        centers=relabeled.centers,
        pnodes=relabeled.pnodes,
        nodes=relabeled.nodes,
        edges=tuple(dbg.graph.induced_edges(relabeled.nodes)),
    )


class CommunitySearch:
    """Community search over one database graph."""

    def __init__(self, dbg: DatabaseGraph,
                 index: Optional[CommunityIndex] = None) -> None:
        self.dbg = dbg
        self.index = index

    @classmethod
    def from_database(cls, db, **graph_kwargs) -> "CommunitySearch":
        """Materialize a relational database and search it."""
        from repro.rdb.graph_builder import build_database_graph
        return cls(build_database_graph(db, **graph_kwargs))

    # ------------------------------------------------------------------
    # indexing / projection
    # ------------------------------------------------------------------
    def build_index(self, radius: float,
                    keywords: Optional[Sequence[str]] = None
                    ) -> CommunityIndex:
        """Build (and attach) the two inverted indexes for radius R."""
        self.index = CommunityIndex.build(self.dbg, radius, keywords)
        return self.index

    def project(self, keywords: Sequence[str], rmax: float
                ) -> ProjectionResult:
        """Algorithm 6 projection for one query (requires an index)."""
        if self.index is None:
            raise QueryError(
                "no index built; call build_index(radius=...) first or "
                "query with use_projection=False")
        for keyword in keywords:
            self.index.require_keyword(keyword)
        return project(self.index, keywords, rmax)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def all_communities(self, keywords: Sequence[str], rmax: float,
                        algorithm: str = "pd",
                        use_projection: Optional[bool] = None,
                        aggregate: AggregateSpec = "sum",
                        budget_seconds: Optional[float] = None,
                        stats: Optional[BaselineStats] = None
                        ) -> List[Community]:
        """COMM-all: every community, duplication-free.

        ``algorithm`` is one of ``"pd"`` (Algorithm 1), ``"bu"``,
        ``"td"`` or ``"naive"``. With ``use_projection`` unset, the
        projection is used whenever an index exists. ``aggregate``
        picks the cost function ("sum" — the paper's — or "max").
        """
        return list(self.iter_all(keywords, rmax, algorithm,
                                  use_projection, aggregate,
                                  budget_seconds, stats))

    def iter_all(self, keywords: Sequence[str], rmax: float,
                 algorithm: str = "pd",
                 use_projection: Optional[bool] = None,
                 aggregate: AggregateSpec = "sum",
                 budget_seconds: Optional[float] = None,
                 stats: Optional[BaselineStats] = None
                 ) -> Iterator[Community]:
        """Streaming COMM-all (PDall streams with polynomial delay;
        the baselines materialize before yielding)."""
        if algorithm not in ALL_ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{ALL_ALGORITHMS}")
        runner: Dict[str, Callable] = {
            "pd": enumerate_all,
            "bu": bu_iter,
            "td": td_iter,
            "naive": naive_all,
        }
        dbg, node_lists, projection = self._query_graph(
            keywords, rmax, use_projection)
        kwargs = {"node_lists": node_lists, "aggregate": aggregate}
        if algorithm in ("bu", "td"):
            # budget/stats only apply to the pool-based baselines
            kwargs["budget_seconds"] = budget_seconds
            if stats is not None:
                kwargs["stats"] = stats
        results = runner[algorithm](dbg, list(keywords), rmax, **kwargs)
        for community in results:
            if projection is not None:
                community = _translate(community, projection, self.dbg)
            yield community

    def top_k(self, keywords: Sequence[str], k: int, rmax: float,
              algorithm: str = "pd",
              use_projection: Optional[bool] = None,
              aggregate: AggregateSpec = "sum",
              budget_seconds: Optional[float] = None,
              stats: Optional[BaselineStats] = None
              ) -> List[Community]:
        """COMM-k: the top-k communities in ascending cost order."""
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if algorithm == "pd":
            return self.top_k_stream(keywords, rmax, use_projection,
                                     aggregate).take(k)
        if algorithm not in TOPK_ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{TOPK_ALGORITHMS}")
        runner: Dict[str, Callable] = {
            "bu": bu_top_k,
            "td": td_top_k,
            "naive": naive_top_k,
        }
        dbg, node_lists, projection = self._query_graph(
            keywords, rmax, use_projection)
        kwargs = {"node_lists": node_lists, "aggregate": aggregate}
        if algorithm in ("bu", "td"):
            kwargs["budget_seconds"] = budget_seconds
            if stats is not None:
                kwargs["stats"] = stats
        results = runner[algorithm](dbg, list(keywords), k, rmax,
                                    **kwargs)
        if projection is not None:
            results = [
                _translate(c, projection, self.dbg) for c in results]
        return results

    def top_k_stream(self, keywords: Sequence[str], rmax: float,
                     use_projection: Optional[bool] = None,
                     aggregate: AggregateSpec = "sum"):
        """A PDk stream: iterate, or ``take(k)`` then ``more(n)``
        interactively with no recomputation."""
        dbg, node_lists, projection = self._query_graph(
            keywords, rmax, use_projection)
        inner = TopKStream(dbg, list(keywords), rmax,
                           node_lists=node_lists, aggregate=aggregate)
        if projection is None:
            return inner
        return ProjectedTopKStream(inner, projection, self.dbg)

    # ------------------------------------------------------------------
    def _query_graph(self, keywords: Sequence[str], rmax: float,
                     use_projection: Optional[bool]):
        if not keywords:
            raise QueryError("a query needs at least one keyword")
        if use_projection is None:
            use_projection = self.index is not None
        if use_projection:
            projection = self.project(keywords, rmax)
            return projection.subgraph, projection.node_lists, projection
        node_lists = None
        if self.index is not None:
            for keyword in keywords:
                self.index.require_keyword(keyword)
            node_lists = [self.index.nodes(kw) for kw in keywords]
        return self.dbg, node_lists, None
