"""High-level facade: index once, project per query, run any algorithm.

:class:`CommunitySearch` is the API a downstream user touches::

    search = CommunitySearch(dbg)          # or .from_database(db)
    search.build_index(radius=8)
    for community in search.all_communities(["kate", "smith"], rmax=6):
        print(community.describe(dbg))

    stream = search.top_k_stream(["kate", "smith"], rmax=6)
    first = stream.take(10)
    fifty_more = stream.more(50)           # no recomputation (PDk)

Since the engine refactor this class is a thin wrapper over
:class:`repro.engine.QueryEngine`: it normalizes arguments into
:class:`~repro.engine.spec.QuerySpec` s and delegates. That buys every
caller the engine's algorithm registry (no per-backend kwargs
plumbing), its LRU projection cache (repeated ``(keywords, rmax)``
queries skip Algorithm 6 — see :mod:`repro.engine.cache`), and its
per-stage instrumentation (pass ``context=QueryContext()`` to any
query method and read back stage timings and counters).

Queries run on the Algorithm-6 projection whenever an index exists
(exactly how the paper benchmarks every algorithm); results are
translated back to ``G_D`` ids, and their edge sets re-induced against
``G_D`` so Definition 2.1 holds verbatim (see
:mod:`repro.core.projection` for why).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.baselines.pool import BaselineStats
from repro.core.community import Community
from repro.core.cost import AggregateSpec
from repro.core.projection import ProjectionResult
from repro.engine.cache import DEFAULT_CAPACITY
from repro.engine.context import QueryContext
from repro.engine.engine import QueryEngine
from repro.engine.registry import REGISTRY, AlgorithmRegistry
from repro.engine.spec import QuerySpec
from repro.engine.stream import ProjectedTopKStream
from repro.graph.database_graph import DatabaseGraph
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import GraphDelta

#: Algorithms accepted by :meth:`CommunitySearch.all_communities`
#: (the default registry's backends; a custom registry may add more).
ALL_ALGORITHMS = ("pd", "bu", "td", "naive")

#: Algorithms accepted by :meth:`CommunitySearch.top_k`.
TOPK_ALGORITHMS = ("pd", "bu", "td", "naive")

__all__ = [
    "ALL_ALGORITHMS",
    "TOPK_ALGORITHMS",
    "CommunitySearch",
    "ProjectedTopKStream",
]


class CommunitySearch:
    """Community search over one database graph."""

    def __init__(self, dbg: DatabaseGraph,
                 index: Optional[CommunityIndex] = None,
                 registry: Optional[AlgorithmRegistry] = None,
                 cache_capacity: int = DEFAULT_CAPACITY) -> None:
        self.engine = QueryEngine(
            dbg, index=index,
            registry=registry if registry is not None else REGISTRY,
            cache_capacity=cache_capacity)

    @classmethod
    def from_database(cls, db, **graph_kwargs) -> "CommunitySearch":
        """Materialize a relational database and search it."""
        from repro.rdb.graph_builder import build_database_graph
        return cls(build_database_graph(db, **graph_kwargs))

    # ------------------------------------------------------------------
    # delegated state
    # ------------------------------------------------------------------
    @property
    def dbg(self) -> DatabaseGraph:
        """The database graph queries run against."""
        return self.engine.dbg

    @property
    def index(self) -> Optional[CommunityIndex]:
        """The attached index; assigning one evicts cached projections."""
        return self.engine.index

    @index.setter
    def index(self, index: Optional[CommunityIndex]) -> None:
        """Attach/replace the index through the engine (generation
        bump + cache invalidation)."""
        self.engine.index = index

    # ------------------------------------------------------------------
    # indexing / projection / maintenance
    # ------------------------------------------------------------------
    def build_index(self, radius: float,
                    keywords: Optional[Sequence[str]] = None
                    ) -> CommunityIndex:
        """Build (and attach) the two inverted indexes for radius R."""
        return self.engine.build_index(radius, keywords)

    def project(self, keywords: Sequence[str], rmax: float,
                context: Optional[QueryContext] = None
                ) -> ProjectionResult:
        """Algorithm 6 projection for one query (requires an index).

        Served from the engine's LRU cache when the same
        ``(keyword set, rmax)`` was projected since the last index
        change."""
        return self.engine.project(keywords, rmax, context)

    def apply_delta(self, delta: GraphDelta,
                    banks_reweight: bool = False
                    ) -> Tuple[DatabaseGraph, CommunityIndex]:
        """Grow the graph + index in place and evict stale projections.

        Convenience wrapper over
        :func:`repro.text.maintenance.apply_delta` that keeps this
        facade (and its projection cache) consistent afterwards."""
        return self.engine.apply_delta(delta, banks_reweight)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def all_communities(self, keywords: Sequence[str], rmax: float,
                        algorithm: str = "pd",
                        use_projection: Optional[bool] = None,
                        aggregate: AggregateSpec = "sum",
                        budget_seconds: Optional[float] = None,
                        stats: Optional[BaselineStats] = None,
                        context: Optional[QueryContext] = None
                        ) -> List[Community]:
        """COMM-all: every community, duplication-free.

        ``algorithm`` names any registered backend (``"pd"`` —
        Algorithm 1 —, ``"bu"``, ``"td"``, ``"naive"`` by default).
        With ``use_projection`` unset, the projection is used whenever
        an index exists. ``aggregate`` picks the cost function ("sum"
        — the paper's — or "max").
        """
        return list(self.iter_all(keywords, rmax, algorithm,
                                  use_projection, aggregate,
                                  budget_seconds, stats, context))

    def iter_all(self, keywords: Sequence[str], rmax: float,
                 algorithm: str = "pd",
                 use_projection: Optional[bool] = None,
                 aggregate: AggregateSpec = "sum",
                 budget_seconds: Optional[float] = None,
                 stats: Optional[BaselineStats] = None,
                 context: Optional[QueryContext] = None
                 ) -> Iterator[Community]:
        """Streaming COMM-all (PDall streams with polynomial delay;
        the baselines materialize before yielding)."""
        spec = QuerySpec.comm_all(
            keywords, rmax, algorithm=algorithm,
            use_projection=use_projection, aggregate=aggregate,
            budget_seconds=budget_seconds)
        return self.engine.iter_all(
            spec, self._context(context, stats))

    def top_k(self, keywords: Sequence[str], k: int, rmax: float,
              algorithm: str = "pd",
              use_projection: Optional[bool] = None,
              aggregate: AggregateSpec = "sum",
              budget_seconds: Optional[float] = None,
              stats: Optional[BaselineStats] = None,
              context: Optional[QueryContext] = None
              ) -> List[Community]:
        """COMM-k: the top-k communities in ascending cost order."""
        spec = QuerySpec.comm_k(
            keywords, k, rmax, algorithm=algorithm,
            use_projection=use_projection, aggregate=aggregate,
            budget_seconds=budget_seconds)
        return self.engine.top_k(spec, self._context(context, stats))

    def top_k_stream(self, keywords: Sequence[str], rmax: float,
                     use_projection: Optional[bool] = None,
                     aggregate: AggregateSpec = "sum",
                     context: Optional[QueryContext] = None):
        """A PDk stream: iterate, or ``take(k)`` then ``more(n)``
        interactively with no recomputation."""
        return self.engine.top_k_stream(keywords, rmax, use_projection,
                                        aggregate, context)

    # ------------------------------------------------------------------
    @staticmethod
    def _context(context: Optional[QueryContext],
                 stats: Optional[BaselineStats]) -> QueryContext:
        """Merge the legacy ``stats`` argument into one context."""
        ctx = context if context is not None else QueryContext()
        if stats is not None:
            ctx.baseline = stats
        return ctx
