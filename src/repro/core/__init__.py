"""The paper's core contribution: community search algorithms.

* :mod:`repro.core.community` — the community model (Definition 2.1);
* :mod:`repro.core.neighbor` / :mod:`repro.core.bestcore` /
  :mod:`repro.core.getcommunity` — Algorithms 2, 3, 4;
* :mod:`repro.core.comm_all` — PDall (Algorithm 1), polynomial-delay
  enumeration of all communities;
* :mod:`repro.core.comm_k` — PDk (Algorithm 5), exact ranked top-k with
  interactive enlargement;
* :mod:`repro.core.naive` — the ``O(n^l)`` reference enumerator;
* :mod:`repro.core.baselines` — the BU/TD expanding baselines of
  Section III;
* :mod:`repro.core.projection` — Algorithm 6 graph projection;
* :mod:`repro.core.search` — the high-level :class:`CommunitySearch`
  facade tying indexing, projection and the algorithms together.
"""

from repro.core.banks import backward_search, banks_top_k
from repro.core.bestcore import BestCoreResult, best_core
from repro.core.comm_all import (
    AllCommunitiesEnumerator,
    all_communities,
    enumerate_all,
)
from repro.core.comm_k import CanTuple, TopKStream, top_k
from repro.core.community import Community, Core, community_sort_key
from repro.core.cost import MAX, SUM, CostAggregate, resolve_aggregate
from repro.core.getcommunity import find_centers, get_community
from repro.core.naive import naive_all, naive_cores, naive_top_k
from repro.core.neighbor import NeighborSet, neighbor
from repro.core.trees import TreeAnswer, enumerate_trees, top_k_trees

__all__ = [
    "AllCommunitiesEnumerator",
    "BestCoreResult",
    "CanTuple",
    "Community",
    "Core",
    "CostAggregate",
    "MAX",
    "SUM",
    "resolve_aggregate",
    "NeighborSet",
    "TopKStream",
    "TreeAnswer",
    "enumerate_trees",
    "top_k_trees",
    "all_communities",
    "backward_search",
    "banks_top_k",
    "best_core",
    "community_sort_key",
    "enumerate_all",
    "find_centers",
    "get_community",
    "naive_all",
    "naive_cores",
    "naive_top_k",
    "neighbor",
    "top_k",
]
