"""Multi-core query execution over shared snapshots.

CPython's GIL means the service's thread pool overlaps I/O but never
computation — one process enumerates communities on one core no
matter how many admission threads it has. This subpackage adds the
process tier:

* :class:`~repro.parallel.pool.WorkerPool` — N worker processes, each
  loading its own engine from the *same immutable snapshot*, served
  tasks over per-worker queues with crash detection and respawn;
* :class:`~repro.parallel.engine.ParallelQueryEngine` — a
  ``QueryEngine``-shaped facade the service plugs in unchanged:
  ``execute`` ships to the pool, sessions/projections/identity stay
  on a parent-side local engine, ``swap_snapshot`` broadcasts reloads
  to every worker without dropping in-flight queries.

``repro serve --snapshot S --workers N`` wires this in; ``POST
/batch`` fans a list of queries across the pool from one request.
"""

from repro.parallel.engine import (
    DEFAULT_POOL_WORKERS,
    ParallelQueryEngine,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.worker import worker_main

__all__ = [
    "DEFAULT_POOL_WORKERS",
    "ParallelQueryEngine",
    "WorkerPool",
    "worker_main",
]
