"""Worker-process entry point for the parallel query pool.

Each worker is a separate OS process that loads its own
:class:`~repro.engine.QueryEngine` from the *same published snapshot*
the parent serves, then answers tasks from its private task queue
until it receives the ``None`` shutdown sentinel. Because snapshots
are immutable content-addressed artifacts, N workers loading the same
snapshot id are guaranteed to agree on every answer — the pool never
ships graphs over the queues, only :class:`~repro.engine.spec.QuerySpec`
objects in and :class:`~repro.core.community.Community` tuples out.

Task protocol (all tuples, all picklable):

* in:  ``(request_id, op, payload)`` where ``op`` is one of
  ``query`` / ``reload`` / ``stats`` / ``ping`` / ``warm`` (a list
  of specs executed into the worker's private result cache — only
  the warmed count returns, never the communities);
* out: ``(request_id, worker_id, "started", None)`` the moment the
  task is picked off the queue — the pool's watchdog starts the
  request lease here, so queue wait behind earlier tasks never
  counts against it — then ``(request_id, worker_id, "ok", result)``,
  ``(request_id, worker_id, "query_error", message)`` for a
  :class:`~repro.exceptions.QueryError` (a bad query, not a broken
  worker — the parent re-raises it as ``QueryError`` so the service
  still answers 400, exactly as in-process execution would), or
  ``(request_id, worker_id, "error", "ExcType: message")`` for
  anything else (re-raised as
  :class:`~repro.exceptions.WorkerError`).

A ``query`` returns ``(communities, timings, counters)`` so the
parent can merge the worker's per-stage wall-clock and cache counters
into its own :class:`~repro.engine.context.QueryContext` — that is
how ``/metrics`` keeps aggregating stage timings when execution moves
out of process. ``stats`` reports the worker's identity (pid,
snapshot id, generation) plus its private projection-cache and
Dijkstra-memo counters; ``reload`` re-points the worker at a snapshot
path and returns the adopted snapshot id.

Any exception inside a task is caught and reported as an ``error``
result — a worker only exits on the sentinel or a hard crash (which
the pool's monitor detects and repairs).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Tuple

from repro import faults
from repro.engine.context import QueryContext
from repro.engine.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError
from repro.graph.dijkstra import _thread_memo


def _run_query(engine: QueryEngine, spec: QuerySpec) -> Tuple:
    """Execute one spec; returns (communities, timings, counters)."""
    context = QueryContext()
    communities = engine.execute(spec, context)
    return (communities, dict(context.timings),
            dict(context.counters))


def _stats(worker_id: int, engine: QueryEngine) -> Dict[str, Any]:
    """This worker's identity and private counters."""
    memo = _thread_memo()
    payload: Dict[str, Any] = {
        "worker": worker_id,
        "pid": os.getpid(),
        "snapshot_id": engine.snapshot_id,
        "snapshot_mode": engine.snapshot_mode,
        "generation": engine.generation,
        "dijkstra_memo_hits": memo.hits,
        "dijkstra_memo_misses": memo.misses,
    }
    payload.update(engine.cache.stats.as_dict())
    payload.update(engine.results.as_dict())
    return payload


def _reload(worker_id: int, engine: QueryEngine,
            path: str) -> Dict[str, Any]:
    """Swap this worker onto the snapshot at ``path``."""
    faults.hit("worker.reload")
    faults.hit(f"worker.{worker_id}.reload")
    snapshot = engine.load_snapshot(path)
    return {"snapshot_id": snapshot.id,
            "generation": engine.generation}


def worker_main(worker_id: int, snapshot_path: str, task_queue: Any,
                result_queue: Any,
                snapshot_mode: str = "copy",
                result_cache_bytes: Any = None) -> None:
    """Process target: load the snapshot, serve tasks until sentinel.

    ``snapshot_mode`` is how this worker materializes the artifact —
    ``"mmap"``/``"auto"`` let every worker share one page-cache copy
    of the uncompressed sections, making spawn (and watchdog respawn,
    and reload) skip the full deserialization. The engine remembers
    the mode, so ``reload`` tasks stay in it.
    """
    # A spawned (not forked) worker starts with a fresh interpreter:
    # re-read REPRO_FAILPOINTS so chaos scenarios reach it too.
    faults.reload_env()
    faults.hit("worker.start")
    faults.hit(f"worker.{worker_id}.start")
    engine = QueryEngine.from_snapshot(
        snapshot_path, mode=snapshot_mode,
        result_cache_bytes=result_cache_bytes)
    while True:
        task = task_queue.get()
        if task is None:
            break
        request_id, op, payload = task
        result_queue.put((request_id, worker_id, "started", None))
        try:
            if op == "query":
                faults.hit("worker.exec")
                faults.hit(f"worker.{worker_id}.exec")
                result: Any = _run_query(engine, payload)
            elif op == "stats":
                result = _stats(worker_id, engine)
            elif op == "reload":
                result = _reload(worker_id, engine, payload)
            elif op == "warm":
                # Pre-warm this worker's private result cache; no
                # communities cross the queue, just the count.
                result = {"warmed": engine.warm(payload)}
            elif op == "ping":
                result = {"worker": worker_id, "pid": os.getpid()}
            else:
                raise ValueError(f"unknown pool op {op!r}")
            result_queue.put((request_id, worker_id, "ok", result))
        except QueryError as error:
            # A bad query, not a broken worker — keep the error's
            # identity so the parent answers 400, not 500.
            result_queue.put(
                (request_id, worker_id, "query_error", str(error)))
        except Exception as error:  # noqa: BLE001 — boundary: report
            # the failure to the parent instead of dying.
            result_queue.put(
                (request_id, worker_id, "error",
                 f"{type(error).__name__}: {error}"))
