"""Worker-process entry point for the parallel query pool.

Each worker is a separate OS process that loads its own
:class:`~repro.engine.QueryEngine` from the *same published snapshot*
the parent serves, then answers tasks from its private task queue
until it receives the ``None`` shutdown sentinel. Because snapshots
are immutable content-addressed artifacts, N workers loading the same
snapshot id are guaranteed to agree on every answer — the pool never
ships graphs over the queues, only :class:`~repro.engine.spec.QuerySpec`
objects in and :class:`~repro.core.community.Community` tuples out.

Task protocol (all tuples, all picklable):

* in:  ``(request_id, op, payload)`` where ``op`` is one of
  ``query`` / ``reload`` / ``stats`` / ``ping`` / ``warm`` (a list
  of specs executed into the worker's private result cache — only
  the warmed count returns, never the communities) / ``delta`` (an
  ``(lsn, wire_delta, banks_reweight)`` triple applied through the
  worker engine's idempotent-per-LSN ``apply_delta``);
* out: ``(request_id, worker_id, "started", None)`` the moment the
  task is picked off the queue — the pool's watchdog starts the
  request lease here, so queue wait behind earlier tasks never
  counts against it — then ``(request_id, worker_id, "ok", result)``,
  ``(request_id, worker_id, "query_error", message)`` for a
  :class:`~repro.exceptions.QueryError` (a bad query, not a broken
  worker — the parent re-raises it as ``QueryError`` so the service
  still answers 400, exactly as in-process execution would), or
  ``(request_id, worker_id, "error", "ExcType: message")`` for
  anything else (re-raised as
  :class:`~repro.exceptions.WorkerError`).

A ``query`` returns ``(communities, timings, counters)`` so the
parent can merge the worker's per-stage wall-clock and cache counters
into its own :class:`~repro.engine.context.QueryContext` — that is
how ``/metrics`` keeps aggregating stage timings when execution moves
out of process. ``stats`` reports the worker's identity (pid,
snapshot id, generation) plus its private projection-cache and
Dijkstra-memo counters; ``reload`` re-points the worker at a snapshot
path and returns the adopted snapshot id.

When the pool carries a WAL path, every worker incarnation replays
the log's pending deltas right after loading its snapshot — at first
spawn, at watchdog respawn, and after every ``reload`` — so a fresh
process converges with the parent's delta state before it answers
anything. Replay and broadcast can race (a respawn replaying while
the parent broadcasts the next delta); the per-LSN idempotency in
:meth:`~repro.engine.engine.QueryEngine.apply_delta` makes the order
irrelevant.

Any exception inside a task is caught and reported as an ``error``
result — a worker only exits on the sentinel, a hard crash (which
the pool's monitor detects and repairs), or on noticing it has been
orphaned: the task loop polls with a timeout and exits when its
parent pid changes, so a hard-killed (``kill -9``) server never
leaks worker processes that block on the queue forever.
"""

from __future__ import annotations

import os
import queue as queue_mod
from typing import Any, Dict, Tuple

from repro import faults
from repro.engine.context import QueryContext
from repro.engine.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError
from repro.graph.dijkstra import _thread_memo


def _run_query(engine: QueryEngine, spec: QuerySpec) -> Tuple:
    """Execute one spec; returns (communities, timings, counters)."""
    context = QueryContext()
    communities = engine.execute(spec, context)
    return (communities, dict(context.timings),
            dict(context.counters))


def _stats(worker_id: int, engine: QueryEngine) -> Dict[str, Any]:
    """This worker's identity and private counters."""
    memo = _thread_memo()
    payload: Dict[str, Any] = {
        "worker": worker_id,
        "pid": os.getpid(),
        "snapshot_id": engine.snapshot_id,
        "snapshot_mode": engine.snapshot_mode,
        "generation": engine.generation,
        "dijkstra_memo_hits": memo.hits,
        "dijkstra_memo_misses": memo.misses,
    }
    payload.update(engine.cache.stats.as_dict())
    payload.update(engine.results.as_dict())
    return payload


def _reload(worker_id: int, engine: QueryEngine, path: str,
            wal_path: Any = None) -> Dict[str, Any]:
    """Swap this worker onto the snapshot at ``path``."""
    faults.hit("worker.reload")
    faults.hit(f"worker.{worker_id}.reload")
    snapshot = engine.load_snapshot(path)
    if wal_path is not None:
        from repro.wal.log import replay
        replay(engine, wal_path)
    return {"snapshot_id": snapshot.id,
            "generation": engine.generation}


def _apply_delta(worker_id: int, engine: QueryEngine,
                 payload: Tuple) -> Dict[str, Any]:
    """Apply one broadcast delta (idempotent per LSN)."""
    from repro.wal.records import delta_from_wire
    faults.hit("worker.delta")
    faults.hit(f"worker.{worker_id}.delta")
    lsn, wire, banks_reweight = payload
    engine.apply_delta(delta_from_wire(wire), bool(banks_reweight),
                       lsn=lsn)
    return {"applied_lsn": engine.applied_lsn,
            "generation": engine.generation}


def worker_main(worker_id: int, snapshot_path: str, task_queue: Any,
                result_queue: Any,
                snapshot_mode: str = "copy",
                result_cache_bytes: Any = None,
                wal_path: Any = None) -> None:
    """Process target: load the snapshot, serve tasks until sentinel.

    ``snapshot_mode`` is how this worker materializes the artifact —
    ``"mmap"``/``"auto"`` let every worker share one page-cache copy
    of the uncompressed sections, making spawn (and watchdog respawn,
    and reload) skip the full deserialization. The engine remembers
    the mode, so ``reload`` tasks stay in it.
    """
    # A spawned (not forked) worker starts with a fresh interpreter:
    # re-read REPRO_FAILPOINTS so chaos scenarios reach it too.
    faults.reload_env()
    faults.hit("worker.start")
    faults.hit(f"worker.{worker_id}.start")
    engine = QueryEngine.from_snapshot(
        snapshot_path, mode=snapshot_mode,
        result_cache_bytes=result_cache_bytes,
        wal_path=wal_path)
    parent = os.getppid()
    while True:
        try:
            task = task_queue.get(timeout=5.0)
        except queue_mod.Empty:
            # A hard-killed parent (kill -9, a fired ``exit``
            # failpoint) can never send the shutdown sentinel; the
            # reparented orphan would otherwise block here forever,
            # holding the server's inherited pipes and fds open.
            if os.getppid() != parent:
                break
            continue
        if task is None:
            break
        request_id, op, payload = task
        result_queue.put((request_id, worker_id, "started", None))
        try:
            if op == "query":
                faults.hit("worker.exec")
                faults.hit(f"worker.{worker_id}.exec")
                result: Any = _run_query(engine, payload)
            elif op == "stats":
                result = _stats(worker_id, engine)
            elif op == "reload":
                result = _reload(worker_id, engine, payload,
                                 wal_path)
            elif op == "delta":
                result = _apply_delta(worker_id, engine, payload)
            elif op == "warm":
                # Pre-warm this worker's private result cache; no
                # communities cross the queue, just the count.
                result = {"warmed": engine.warm(payload)}
            elif op == "ping":
                result = {"worker": worker_id, "pid": os.getpid()}
            else:
                raise ValueError(f"unknown pool op {op!r}")
            result_queue.put((request_id, worker_id, "ok", result))
        except QueryError as error:
            # A bad query, not a broken worker — keep the error's
            # identity so the parent answers 400, not 500.
            result_queue.put(
                (request_id, worker_id, "query_error", str(error)))
        except Exception as error:  # noqa: BLE001 — boundary: report
            # the failure to the parent instead of dying.
            result_queue.put(
                (request_id, worker_id, "error",
                 f"{type(error).__name__}: {error}"))
