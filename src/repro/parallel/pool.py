"""Process worker pool over one shared snapshot.

:class:`WorkerPool` owns N worker processes (see
:mod:`repro.parallel.worker`), each serving the same published
snapshot. The plumbing is deliberately simple and lock-light:

* **dispatch** — every worker has a private task queue; tasks are
  round-robined across live workers (or targeted, for broadcasts).
  Each task gets a :class:`concurrent.futures.Future` the caller
  blocks on, so any number of parent threads can submit concurrently;
* **router** — one parent thread drains the single shared result
  queue and resolves futures by request id;
* **monitor** — one parent thread polls worker liveness. A dead
  worker (crash, kill, OOM) fails every future assigned to it with
  :class:`~repro.exceptions.WorkerCrashedError`, then a replacement
  process is spawned from the same snapshot with a fresh task queue —
  callers see one errored request, never a hung one;
* **shutdown** — a ``None`` sentinel per task queue, bounded joins,
  ``terminate()`` for stragglers.

The pool prefers the ``fork`` start method when the platform offers
it (workers then share the parent's page-cache view of the snapshot
files and start in milliseconds); pass ``mp_method="spawn"`` for a
fully isolated cold start.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import uuid
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import (
    QueryError,
    WorkerCrashedError,
    WorkerError,
)
from repro.parallel.worker import worker_main

#: Seconds between liveness polls of the monitor thread.
MONITOR_INTERVAL = 0.2

#: Seconds a worker gets to exit after its shutdown sentinel.
JOIN_TIMEOUT = 5.0


class _WorkerHandle:
    """One worker slot: the live process and its private task queue."""

    __slots__ = ("worker_id", "process", "queue")

    def __init__(self, worker_id: int, process: Any,
                 queue: Any) -> None:
        self.worker_id = worker_id
        self.process = process
        self.queue = queue


class WorkerPool:
    """N processes serving the snapshot at ``snapshot_path``."""

    def __init__(self, snapshot_path: Union[str, Path],
                 workers: int = 2,
                 mp_method: Optional[str] = None) -> None:
        if workers <= 0:
            raise ValueError(
                f"worker count must be positive, got {workers}")
        self.snapshot_path = str(snapshot_path)
        self.workers = workers
        methods = multiprocessing.get_all_start_methods()
        if mp_method is None:
            mp_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_method)
        self._handles: Dict[int, _WorkerHandle] = {}
        self._pending: Dict[str, Tuple[Future, int]] = {}
        self._lock = threading.Lock()
        self._rr = itertools.count()
        self._result_queue: Any = None
        self._router: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.respawns = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = True,
              timeout: float = 60.0) -> "WorkerPool":
        """Spawn the workers and the router/monitor threads.

        With ``wait_ready`` (the default) the call blocks until every
        worker answered a ``ping`` — i.e. finished loading the
        snapshot — so the first real query never pays cold-start.
        """
        if self._result_queue is not None:
            return self
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        self._router = threading.Thread(
            target=self._route_results, daemon=True,
            name="repro-pool-router")
        self._router.start()
        self._monitor = threading.Thread(
            target=self._watch_workers, daemon=True,
            name="repro-pool-monitor")
        self._monitor.start()
        if wait_ready:
            for future in self.broadcast("ping", None).values():
                future.result(timeout=timeout)
        return self

    def _spawn(self, worker_id: int) -> None:
        """Start (or restart) the worker in slot ``worker_id``."""
        queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.snapshot_path, queue,
                  self._result_queue),
            daemon=True, name=f"repro-worker-{worker_id}")
        process.start()
        self._handles[worker_id] = _WorkerHandle(
            worker_id, process, queue)

    def shutdown(self) -> None:
        """Sentinel every worker, join, terminate stragglers."""
        if self._result_queue is None:
            return
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=JOIN_TIMEOUT)
        for handle in self._handles.values():
            try:
                handle.queue.put(None)
            except (ValueError, OSError):
                pass                      # queue already closed
        for handle in self._handles.values():
            handle.process.join(timeout=JOIN_TIMEOUT)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._result_queue.put(None)
        if self._router is not None:
            self._router.join(timeout=JOIN_TIMEOUT)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(
                    WorkerError("pool shut down with request pending"))

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def alive(self) -> int:
        """How many worker processes are currently running."""
        return sum(1 for handle in self._handles.values()
                   if handle.process.is_alive())

    def pids(self) -> Dict[int, int]:
        """``worker_id -> pid`` of the current processes."""
        return {wid: handle.process.pid
                for wid, handle in self._handles.items()}

    def submit(self, op: str, payload: Any,
               worker_id: Optional[int] = None) -> Future:
        """Queue one task; returns the future for its result.

        Without ``worker_id`` the task round-robins across live
        workers; a targeted submit goes to that slot regardless (used
        by broadcasts, which must reach every worker).
        """
        if self._result_queue is None:
            raise WorkerError("pool is not started")
        if worker_id is None:
            worker_id = self._pick_worker()
        handle = self._handles[worker_id]
        request_id = uuid.uuid4().hex
        future: Future = Future()
        with self._lock:
            self._pending[request_id] = (future, worker_id)
        try:
            handle.queue.put((request_id, op, payload))
        except Exception as error:  # noqa: BLE001 — queue failure
            with self._lock:
                self._pending.pop(request_id, None)
            future.set_exception(WorkerError(str(error)))
        return future

    def request(self, op: str, payload: Any,
                timeout: Optional[float] = None) -> Any:
        """Submit and block for the result."""
        return self.submit(op, payload).result(timeout=timeout)

    def broadcast(self, op: str,
                  payload: Any) -> Dict[int, Future]:
        """One targeted task per worker slot; ``worker_id -> future``.

        Control messages (reload, stats, ping) ride the same queues
        as queries, so a broadcast lands *behind* whatever each worker
        already has in flight — a reload never preempts or drops a
        running query.
        """
        return {worker_id: self.submit(op, payload, worker_id)
                for worker_id in sorted(self._handles)}

    def _pick_worker(self) -> int:
        """Round-robin over live workers (any slot if none look live)."""
        slots = sorted(self._handles)
        for _ in range(len(slots)):
            worker_id = slots[next(self._rr) % len(slots)]
            if self._handles[worker_id].process.is_alive():
                return worker_id
        return slots[next(self._rr) % len(slots)]

    # ------------------------------------------------------------------
    # router / monitor threads
    # ------------------------------------------------------------------
    def _route_results(self) -> None:
        """Drain the shared result queue, resolving futures."""
        while True:
            item = self._result_queue.get()
            if item is None:
                return
            request_id, _worker_id, status, payload = item
            with self._lock:
                entry = self._pending.pop(request_id, None)
            if entry is None:
                continue              # crashed-and-failed, late reply
            future, _ = entry
            if future.done():
                continue
            if status == "ok":
                future.set_result(payload)
            elif status == "query_error":
                # Bad query, healthy worker: surface the same
                # exception type in-process execution raises.
                future.set_exception(QueryError(payload))
            else:
                future.set_exception(WorkerError(payload))

    def _watch_workers(self) -> None:
        """Fail futures of dead workers and respawn replacements."""
        while not self._stop.wait(MONITOR_INTERVAL):
            for worker_id in sorted(self._handles):
                handle = self._handles[worker_id]
                if handle.process.is_alive():
                    continue
                if self._stop.is_set():
                    return
                self._fail_pending(
                    worker_id,
                    f"worker {worker_id} (pid {handle.process.pid}) "
                    f"died with exit code "
                    f"{handle.process.exitcode}")
                self._spawn(worker_id)
                self.respawns += 1

    def _fail_pending(self, worker_id: int, message: str) -> None:
        """Error out every future assigned to ``worker_id``."""
        with self._lock:
            doomed = [rid for rid, (_, wid) in self._pending.items()
                      if wid == worker_id]
            futures = [self._pending.pop(rid)[0] for rid in doomed]
        for future in futures:
            if not future.done():
                future.set_exception(WorkerCrashedError(message))

    # ------------------------------------------------------------------
    def stats(self, timeout: Optional[float] = 30.0
              ) -> List[Dict[str, Any]]:
        """Per-worker identity/counter dicts, ordered by worker id.

        A worker that cannot answer (mid-respawn) is reported as a
        stub with ``"alive": False`` instead of failing the scrape.
        """
        results: List[Dict[str, Any]] = []
        for worker_id, future in self.broadcast("stats", None).items():
            try:
                payload = future.result(timeout=timeout)
                payload["alive"] = True
            except (WorkerError, FutureTimeout) as error:
                payload = {"worker": worker_id, "alive": False,
                           "error": str(error)}
            results.append(payload)
        return results
